"""CPU profiles for the cycle model.

:data:`HASWELL_I7_4770K` mirrors the paper's testbed (Section 4): Intel
Core i7-4770K, 3.9 GHz, 32 KiB L1d (8-way), 256 KiB L2 (8-way), 8 MiB L3
(16-way), with the published latencies of 4, 12 and 36 cycles.  The DRAM
figure is "36 cycles plus CAS latency"; with DDR3-1866 (CL10 ≈ 10.7 ns)
plus row access on a 3.9 GHz core this lands around 150–200 cycles for a
cold access — we use 180 and note that Figure 10's SAIL tail (≈ 280–300
cycles for lookups with one DRAM-bound access plus cached work) is
consistent with that choice.

:data:`XEON_X3430` reproduces the Section 5 cross-check on an older
Lynnfield Xeon X3430 (2.4 GHz, 8 MiB L3): same structure, slightly cheaper
DRAM in core cycles because the core clock is slower, and a lower
sustained IPC.
"""

from repro.cachesim.hierarchy import HierarchyConfig, LevelConfig, TlbConfig

KIB = 1024
MIB = 1024 * 1024

HASWELL_I7_4770K = HierarchyConfig(
    name="Intel Core i7-4770K (Haswell, 3.9 GHz)",
    levels=(
        LevelConfig("L1d", 32 * KIB, 8, 4),
        LevelConfig("L2", 256 * KIB, 8, 12),
        LevelConfig("L3", 8 * MIB, 16, 36),
    ),
    dram_latency=180,
    instructions_per_cycle=2.0,
    tlb=TlbConfig(l1_entries=64, l2_entries=1024, l2_latency=8,
                  walk_penalty=26),
)

XEON_X3430 = HierarchyConfig(
    name="Intel Xeon X3430 (Lynnfield, 2.4 GHz)",
    levels=(
        LevelConfig("L1d", 32 * KIB, 8, 4),
        LevelConfig("L2", 256 * KIB, 8, 11),
        LevelConfig("L3", 8 * MIB, 16, 40),
    ),
    dram_latency=130,
    instructions_per_cycle=1.5,
    tlb=TlbConfig(l1_entries=64, l2_entries=512, l2_latency=7,
                  walk_penalty=24),
)
