"""A set-associative LRU cache over 64-byte lines."""

from __future__ import annotations

from typing import Dict, List


class Cache:
    """One cache level.

    ``access(line)`` returns True on a hit and installs the line on a miss
    (LRU replacement within the set).  Line numbers — not byte addresses —
    are passed in; the hierarchy does the address-to-line conversion once.

    >>> c = Cache(size_bytes=128, ways=2, line_bytes=64)
    >>> c.access(0), c.access(0)
    (False, True)
    """

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64) -> None:
        if size_bytes % (ways * line_bytes):
            raise ValueError("cache size must be a multiple of way * line size")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.set_count = size_bytes // (ways * line_bytes)
        # One insertion-ordered dict per set: oldest entry = LRU victim.
        self._sets: List[Dict[int, None]] = [dict() for _ in range(self.set_count)]
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Touch ``line``; True on hit.  Misses install the line."""
        cache_set = self._sets[line % self.set_count]
        if line in cache_set:
            # Refresh recency: move to the most-recently-used position.
            del cache_set[line]
            cache_set[line] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(cache_set) >= self.ways:
            cache_set.pop(next(iter(cache_set)))
        cache_set[line] = None
        return False

    def contains(self, line: int) -> bool:
        """Presence probe without touching recency or counters."""
        return line in self._sets[line % self.set_count]

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
