"""Cache-hierarchy and CPU-cycle simulation.

Section 4.6 of the paper measures per-lookup CPU cycles with hardware
performance counters on a single-task OS, then explains every feature of
the distributions (Figures 10/11, Table 4) in terms of which cache level
each algorithm's memory accesses hit.  A Python interpreter cannot run
those counters meaningfully, so this package replays each algorithm's
*actual* memory-access traces (recorded by ``lookup_traced``) through a
set-associative LRU cache hierarchy configured with the paper's published
sizes and latencies, and converts instruction estimates plus access
latencies into per-lookup cycle counts.

The model is deterministic, which is a feature: the paper itself built a
single-task OS to remove measurement noise.
"""

from repro.cachesim.cache import Cache
from repro.cachesim.hierarchy import CacheHierarchy, HierarchyConfig, LevelConfig, TlbConfig
from repro.cachesim.cycles import CycleModel, CycleSummary, percentile_summary
from repro.cachesim.profiles import HASWELL_I7_4770K, XEON_X3430

__all__ = [
    "Cache",
    "CacheHierarchy",
    "HierarchyConfig",
    "LevelConfig",
    "TlbConfig",
    "CycleModel",
    "CycleSummary",
    "percentile_summary",
    "HASWELL_I7_4770K",
    "XEON_X3430",
]
