"""The per-lookup cycle model and the Section 4.6 analyses.

:class:`CycleModel` drives a lookup structure's ``lookup_traced`` path for
a stream of keys, replays the accesses through a :class:`CacheHierarchy`
and returns one cycle count per lookup:

    cycles = ceil(instructions / IPC) + Σ access latency
             + expected mispredictions × penalty

The paper excludes the 83-cycle PMC read overhead from its numbers; our
model has no such overhead to exclude.  A warm-up pass (not measured)
brings the caches to steady state, like the paper's measurement loop does
implicitly after the first few million lookups.

Helpers at module level compute the published statistics: the CDF of
Figure 10, the mean/50/75/95/99th percentiles of Table 4, and the
per-binary-radix-depth quartiles of Figure 11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cachesim.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cachesim.profiles import HASWELL_I7_4770K
from repro.lookup.base import LookupStructure
from repro.mem.layout import AccessTrace
from repro.net.rib import Rib


@dataclass
class CycleSummary:
    """Table 4's row: mean and percentiles of per-lookup cycles."""

    mean: float
    p50: float
    p75: float
    p95: float
    p99: float

    def row(self) -> Tuple[float, float, float, float, float]:
        return (self.mean, self.p50, self.p75, self.p95, self.p99)


def percentile_summary(cycles: np.ndarray) -> CycleSummary:
    return CycleSummary(
        mean=float(cycles.mean()),
        p50=float(np.percentile(cycles, 50)),
        p75=float(np.percentile(cycles, 75)),
        p95=float(np.percentile(cycles, 95)),
        p99=float(np.percentile(cycles, 99)),
    )


class CycleModel:
    """Measures simulated per-lookup CPU cycles for one structure."""

    def __init__(self, config: HierarchyConfig = HASWELL_I7_4770K) -> None:
        self.config = config
        self.hierarchy = CacheHierarchy(config)

    def measure(
        self,
        structure: LookupStructure,
        keys: Sequence[int],
        warmup: int = 4096,
    ) -> np.ndarray:
        """Cycle counts for looking up ``keys``, after a warm-up pass.

        Warm-up uses the leading ``warmup`` keys (cycling if fewer are
        given) and is not included in the result.
        """
        trace = AccessTrace()
        hierarchy = self.hierarchy
        ipc = self.config.instructions_per_cycle
        traced = structure.lookup_traced
        for i in range(min(warmup, len(keys))):
            trace.reset()
            traced(keys[i], trace)
            hierarchy.replay(trace.accesses)
        penalty = self.config.mispredict_penalty
        cycles = np.empty(len(keys), dtype=np.int64)
        for i, key in enumerate(keys):
            trace.reset()
            traced(key, trace)
            memory = hierarchy.replay(trace.accesses)
            cycles[i] = (
                math.ceil(trace.instructions / ipc)
                + memory
                + round(trace.mispredicts * penalty)
            )
        return cycles

    def flush(self) -> None:
        self.hierarchy.flush()


def cdf_points(cycles: np.ndarray, max_cycles: int = 350) -> List[Tuple[int, float]]:
    """Figure 10: ``(cycle value, cumulative fraction)`` points."""
    values = np.sort(cycles)
    points: List[Tuple[int, float]] = []
    n = len(values)
    for threshold in range(0, max_cycles + 1, 5):
        fraction = float(np.searchsorted(values, threshold, side="right")) / n
        points.append((threshold, fraction))
    return points


def cycles_by_radix_depth(
    cycles: np.ndarray, keys: Sequence[int], rib: Rib
) -> Dict[int, np.ndarray]:
    """Figure 11: bucket per-lookup cycles by the binary radix depth of the
    queried key (computed against the RIB that built the structures)."""
    buckets: Dict[int, List[int]] = {}
    for cycle_count, key in zip(cycles, keys):
        _, _, depth = rib.lookup_with_depth(key)
        buckets.setdefault(depth, []).append(int(cycle_count))
    return {depth: np.array(vals) for depth, vals in sorted(buckets.items())}


def depth_quartiles(
    buckets: Dict[int, np.ndarray]
) -> List[Tuple[int, float, float, float, float, float]]:
    """Figure 11's candlesticks: per depth, the 5th/25th/50th/75th/95th
    percentiles of per-lookup cycles."""
    rows = []
    for depth, values in buckets.items():
        rows.append(
            (
                depth,
                float(np.percentile(values, 5)),
                float(np.percentile(values, 25)),
                float(np.percentile(values, 50)),
                float(np.percentile(values, 75)),
                float(np.percentile(values, 95)),
            )
        )
    return rows
