"""A multi-level cache hierarchy with per-level latencies.

Latencies follow the paper's Section 4: "The latencies of L1, L2, L3
cache, and DRAM access are 4-5 cycles, 12 cycles, 36 cycles, and 36 cycles
plus Column Address Strobe latency, respectively."  The concrete DRAM
figure (the 36 cycles plus CAS and row activation) is a profile parameter;
see :mod:`repro.cachesim.profiles` for the values we use and why.

The hierarchy is inclusive: a miss at level N installs the line at every
level from N up, and the access costs the latency of the level that hit
(DRAM when none did).  Accesses that straddle a line boundary touch both
lines and cost the slower of the two — rare for the 2–24-byte aligned
elements these structures use, but the structures do not all align their
records to lines (DXR deliberately packs ranges 16 per line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cachesim.cache import Cache


class _Tlb:
    """Fully-associative LRU TLB level over page numbers."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._pages: Dict[int, None] = {}
        self.hits = 0
        self.misses = 0

    def access(self, page: int) -> bool:
        if page in self._pages:
            del self._pages[page]
            self._pages[page] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.pop(next(iter(self._pages)))
        self._pages[page] = None
        return False

    def flush(self) -> None:
        self._pages.clear()
        self.hits = 0
        self.misses = 0


@dataclass(frozen=True)
class LevelConfig:
    name: str
    size_bytes: int
    ways: int
    latency: int


@dataclass(frozen=True)
class TlbConfig:
    """Two-level data TLB.

    Random accesses over multi-megabyte structures (SAIL's level-24
    arrays, the 2^s direct array) miss the first-level TLB routinely; the
    page walk adds a real, size-dependent cost the pure cache model
    understates.  Entries are 4 KiB pages; the walk penalty models a
    mostly-cached page-table walk.
    """

    l1_entries: int = 64
    l2_entries: int = 1024
    l2_latency: int = 8
    walk_penalty: int = 30
    page_bytes: int = 4096


@dataclass(frozen=True)
class HierarchyConfig:
    """Everything the cycle model needs to know about a CPU."""

    name: str
    levels: Tuple[LevelConfig, ...]
    dram_latency: int
    #: Instructions retired per cycle for the non-memory work; superscalar
    #: x86 sustains ~2 on these pointer-light integer kernels.
    instructions_per_cycle: float
    #: Pipeline-flush cost of one branch misprediction (Haswell ≈ 15–20).
    mispredict_penalty: int = 15
    line_bytes: int = 64
    #: Data TLB model; None disables address-translation costs.
    tlb: Optional[TlbConfig] = None


class CacheHierarchy:
    """Replays memory accesses, returning the cycle cost of each."""

    def __init__(self, config: HierarchyConfig) -> None:
        self.config = config
        self.caches: List[Cache] = [
            Cache(level.size_bytes, level.ways, config.line_bytes)
            for level in config.levels
        ]
        self._latencies = [level.latency for level in config.levels]
        self._line_shift = config.line_bytes.bit_length() - 1
        self.dram_accesses = 0
        self._tlb_l1: Optional[_Tlb] = None
        self._tlb_l2: Optional[_Tlb] = None
        if config.tlb is not None:
            self._tlb_l1 = _Tlb(config.tlb.l1_entries)
            self._tlb_l2 = _Tlb(config.tlb.l2_entries)
            self._page_shift = config.tlb.page_bytes.bit_length() - 1

    def access(self, address: int, size: int = 4) -> int:
        """Access ``size`` bytes at ``address``; returns the cycle cost."""
        first_line = address >> self._line_shift
        last_line = (address + size - 1) >> self._line_shift
        cost = self._access_line(first_line)
        for line in range(first_line + 1, last_line + 1):
            cost = max(cost, self._access_line(line))
        if self._tlb_l1 is not None:
            cost += self._translate(address)
        return cost

    def _translate(self, address: int) -> int:
        page = address >> self._page_shift
        if self._tlb_l1.access(page):
            return 0
        tlb = self.config.tlb
        if self._tlb_l2.access(page):
            return tlb.l2_latency
        return tlb.l2_latency + tlb.walk_penalty

    def _access_line(self, line: int) -> int:
        hit_level = -1
        for i, cache in enumerate(self.caches):
            if cache.access(line):
                hit_level = i
                break
        # Levels above the hit level (or all levels, on a DRAM access) have
        # already installed the line on their miss path inside access().
        if hit_level == -1:
            self.dram_accesses += 1
            return self.config.dram_latency
        return self._latencies[hit_level]

    def replay(self, accesses: Sequence[Tuple[int, int]]) -> int:
        """Total cycle cost of an ordered access sequence."""
        return sum(self.access(addr, size) for addr, size in accesses)

    def flush(self) -> None:
        for cache in self.caches:
            cache.flush()
        self.dram_accesses = 0
        if self._tlb_l1 is not None:
            self._tlb_l1.flush()
            self._tlb_l2.flush()

    def stats(self) -> List[Tuple[str, int, int]]:
        """Per-level ``(name, hits, misses)``."""
        return [
            (level.name, cache.hits, cache.misses)
            for level, cache in zip(self.config.levels, self.caches)
        ]
