"""GeoIP workload synthesis: a country-code RIB over a ``"cc"`` value table.

The first non-next-hop workload for the generalized value plane
(docs/VALUES.md): prefixes map to ISO 3166 alpha-2 country codes, as in
the swoiow poptrie's GeoIP table (SNIPPETS.md).  What makes GeoIP
structurally different from a BGP FIB is its value entropy: address
space is delegated to registries in large contiguous allocations, so
huge runs of neighbouring prefixes share one value — exactly the regime
where same-value subtree aggregation
(:func:`repro.core.aggregate.aggregate_uniform`) collapses the table.

The generator models that delegation process directly:

- *allocation blocks*: short covering prefixes (/8–/12), each assigned
  to a country drawn from a skewed real-world weight table;
- *announcements*: more-specific prefixes (typically /16–/24) inside a
  block.  With probability ``locality`` an announcement keeps its
  block's country (geo-locality — redundant routes that aggregation
  removes); otherwise it is an exception (a foreign assignment that
  correctly survives aggregation).

Seeded and deterministic, like every generator in :mod:`repro.data`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.net.values import NO_ROUTE, ValueTable

#: Rough relative shares of allocated IPv4 space per country (top
#: holders; the long tail is truncated).  Only the *skew* matters: a few
#: countries own most blocks, so most same-value merges are large.
COUNTRY_WEIGHTS: Tuple[Tuple[str, int], ...] = (
    ("US", 300), ("CN", 140), ("JP", 90), ("DE", 55), ("GB", 50),
    ("KR", 50), ("FR", 42), ("BR", 40), ("CA", 35), ("IT", 30),
    ("AU", 25), ("RU", 25), ("IN", 24), ("NL", 22), ("ES", 18),
    ("MX", 16), ("SE", 14), ("TW", 14), ("CH", 10), ("PL", 10),
    ("TR", 9), ("ID", 9), ("AR", 8), ("ZA", 7), ("CO", 6),
    ("VN", 6), ("TH", 5), ("EG", 5), ("SA", 5), ("NO", 4),
    ("FI", 4), ("DK", 4), ("BE", 4), ("AT", 4), ("CZ", 4),
    ("PT", 3), ("GR", 3), ("RO", 3), ("HU", 3), ("CL", 3),
    ("NZ", 3), ("IE", 3), ("IL", 3), ("MY", 3), ("PH", 2),
    ("PK", 2), ("NG", 2), ("KE", 2),
)

#: Announcement prefix-length mix inside an allocation block, relative
#: to the block length (BGP-flavoured: /24-ish announcements dominate).
_EXTRA_BITS_WEIGHTS: Tuple[Tuple[int, int], ...] = (
    (4, 10), (6, 15), (8, 30), (10, 15), (12, 25), (14, 8), (16, 4),
)


def generate_geoip_table(
    n_prefixes: int = 10_000,
    n_countries: Optional[int] = None,
    seed: int = 1,
    locality: float = 0.85,
    block_fraction: float = 0.15,
    width: int = 32,
) -> Tuple[Rib, ValueTable]:
    """Synthesise a GeoIP routing table; returns ``(rib, values)``.

    ``rib.values`` is already attached, so registry builds
    (``entry.from_rib(rib)``) carry the table into the structure and
    images automatically.  ``n_countries`` truncates the weight table
    (default: all of :data:`COUNTRY_WEIGHTS`); ``locality`` is the
    probability that a more-specific announcement keeps its allocation
    block's country; ``block_fraction`` is the share of routes that are
    fresh allocation blocks rather than announcements inside one.
    """
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    pool = (
        COUNTRY_WEIGHTS if n_countries is None
        else COUNTRY_WEIGHTS[:n_countries]
    )
    if not pool:
        raise ValueError("n_countries must leave at least one country")
    codes = [code for code, _ in pool]
    weights = [weight for _, weight in pool]
    rng = random.Random(seed)
    values = ValueTable("cc")
    rib = Rib(width=width, values=values)
    blocks: List[Tuple[int, int, str]] = []

    def pick_country() -> str:
        return rng.choices(codes, weights)[0]

    while len(rib) < n_prefixes:
        if not blocks or rng.random() < block_fraction:
            length = rng.randint(8, 12)
            value = rng.getrandbits(length) << (width - length)
            country = pick_country()
            prefix = Prefix(value, length, width)
            if rib.get(prefix) != NO_ROUTE:
                continue
            rib.insert(prefix, values.intern(country))
            blocks.append((value, length, country))
        else:
            base_value, base_length, country = rng.choice(blocks)
            extra = rng.choices(
                [bits for bits, _ in _EXTRA_BITS_WEIGHTS],
                [weight for _, weight in _EXTRA_BITS_WEIGHTS],
            )[0]
            length = min(base_length + extra, width - 4)
            suffix = rng.getrandbits(length - base_length)
            value = base_value | (suffix << (width - length))
            prefix = Prefix(value, length, width)
            if rib.get(prefix) != NO_ROUTE:
                continue
            if rng.random() >= locality:
                country = pick_country()
            rib.insert(prefix, values.intern(country))
    return rib, values
