"""Routing-table snapshot I/O.

A plain text format, one route per line::

    # repro-table v1 width=32
    192.0.2.0/24 7
    10.0.0.0/8 3

The integer after the prefix is the FIB index.  Comments (``#``) and blank
lines are ignored; the header pins the address family.  The format exists
so experiments can be frozen to disk and reloaded (the paper works from
RouteViews MRT archives; a full MRT parser would add nothing to the
algorithms under study, so snapshots use this transparent format instead).
"""

from __future__ import annotations

import io
from typing import TextIO, Union

from repro.errors import TableFormatError
from repro.net.prefix import Prefix
from repro.net.rib import Rib

_HEADER = "# repro-table v1 width="

#: FIB indices must fit the widest supported leaf encoding (32-bit);
#: index 0 is the NO_ROUTE sentinel and never appears in a table.
_MAX_FIB_INDEX = (1 << 32) - 1


def save_table(rib: Rib, destination: Union[str, TextIO]) -> int:
    """Write ``rib`` as text; returns the number of routes written."""
    owned = isinstance(destination, str)
    stream = open(destination, "w") if owned else destination
    try:
        stream.write(f"{_HEADER}{rib.width}\n")
        count = 0
        for prefix, fib_index in rib.routes():
            stream.write(f"{prefix.text} {fib_index}\n")
            count += 1
        return count
    finally:
        if owned:
            stream.close()


def load_table(source: Union[str, TextIO]) -> Rib:
    """Read a table written by :func:`save_table`.

    Every malformed input — missing or bad header, unparseable route line,
    out-of-range FIB index, prefix from the wrong address family — raises
    :class:`~repro.errors.TableFormatError` carrying the 1-based line
    number of the offending input, so a bad feed is diagnosable instead of
    surfacing as a bare ``ValueError``/``IndexError`` from the internals.
    """
    owned = isinstance(source, str)
    stream = open(source, "r") if owned else source
    try:
        first = stream.readline()
        if not first.startswith(_HEADER):
            raise TableFormatError(
                "not a repro-table snapshot (missing header)", line=1
            )
        try:
            width = int(first[len(_HEADER):].strip())
        except ValueError as exc:
            raise TableFormatError(
                f"bad width in header {first.strip()!r}", line=1
            ) from exc
        if width not in (32, 128):
            raise TableFormatError(
                f"unsupported address width {width} (expected 32 or 128)", line=1
            )
        rib = Rib(width=width)
        for line_no, line in enumerate(stream, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 2:
                raise TableFormatError(
                    f"expected 'prefix fib-index', got {line!r}", line=line_no
                )
            prefix_text, fib_text = fields
            try:
                prefix = Prefix.parse(prefix_text)
            except ValueError as exc:
                raise TableFormatError(
                    f"bad prefix {prefix_text!r}: {exc}", line=line_no
                ) from exc
            if prefix.width != width:
                raise TableFormatError(
                    f"prefix {prefix_text!r} is /{prefix.width} in a "
                    f"width={width} table",
                    line=line_no,
                )
            try:
                fib_index = int(fib_text)
            except ValueError as exc:
                raise TableFormatError(
                    f"bad FIB index {fib_text!r}", line=line_no
                ) from exc
            if not 1 <= fib_index <= _MAX_FIB_INDEX:
                raise TableFormatError(
                    f"FIB index {fib_index} outside 1..{_MAX_FIB_INDEX}",
                    line=line_no,
                )
            rib.insert(prefix, fib_index)
        return rib
    finally:
        if owned:
            stream.close()


def dumps_table(rib: Rib) -> str:
    """Snapshot to a string (round-trips through :func:`loads_table`)."""
    buffer = io.StringIO()
    save_table(rib, buffer)
    return buffer.getvalue()


def loads_table(text: str) -> Rib:
    """Load a snapshot from a string."""
    return load_table(io.StringIO(text))
