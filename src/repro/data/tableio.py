"""Routing-table snapshot I/O.

A plain text format, one route per line::

    # repro-table v1 width=32
    192.0.2.0/24 7
    10.0.0.0/8 3

The integer after the prefix is the FIB index.  Comments (``#``) and blank
lines are ignored; the header pins the address family.  The format exists
so experiments can be frozen to disk and reloaded (the paper works from
RouteViews MRT archives; a full MRT parser would add nothing to the
algorithms under study, so snapshots use this transparent format instead).
"""

from __future__ import annotations

import io
from typing import TextIO, Union

from repro.net.prefix import Prefix
from repro.net.rib import Rib

_HEADER = "# repro-table v1 width="


def save_table(rib: Rib, destination: Union[str, TextIO]) -> int:
    """Write ``rib`` as text; returns the number of routes written."""
    owned = isinstance(destination, str)
    stream = open(destination, "w") if owned else destination
    try:
        stream.write(f"{_HEADER}{rib.width}\n")
        count = 0
        for prefix, fib_index in rib.routes():
            stream.write(f"{prefix.text} {fib_index}\n")
            count += 1
        return count
    finally:
        if owned:
            stream.close()


def load_table(source: Union[str, TextIO]) -> Rib:
    """Read a table written by :func:`save_table`."""
    owned = isinstance(source, str)
    stream = open(source, "r") if owned else source
    try:
        first = stream.readline()
        if not first.startswith(_HEADER):
            raise ValueError("not a repro-table snapshot (missing header)")
        width = int(first[len(_HEADER):].strip())
        rib = Rib(width=width)
        for line_no, line in enumerate(stream, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                prefix_text, fib_text = line.split()
                rib.insert(Prefix.parse(prefix_text), int(fib_text))
            except (ValueError, KeyError) as exc:
                raise ValueError(f"line {line_no}: bad route {line!r}") from exc
        return rib
    finally:
        if owned:
            stream.close()


def dumps_table(rib: Rib) -> str:
    """Snapshot to a string (round-trips through :func:`loads_table`)."""
    buffer = io.StringIO()
    save_table(rib, buffer)
    return buffer.getvalue()


def loads_table(text: str) -> Rib:
    """Load a snapshot from a string."""
    return load_table(io.StringIO(text))
