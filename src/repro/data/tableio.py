"""Routing-table snapshot I/O.

Two on-disk representations of a RIB:

- A plain text format, one route per line::

      # repro-table v1 width=32
      192.0.2.0/24 7
      10.0.0.0/8 3

  The integer after the prefix is the FIB index.  Comments (``#``) and
  blank lines are ignored; the header pins the address family.  The
  format exists so experiments can be frozen to disk and reloaded (the
  paper works from RouteViews MRT archives; a full MRT parser would add
  nothing to the algorithms under study, so snapshots use this
  transparent format instead).

  A RIB with an attached :class:`~repro.net.values.ValueTable` writes it
  as comment directives right after the header::

      # repro-values kind=cc count=2
      # v 1 CN
      # v 2 US

  Deliberately comment-shaped: pre-value-plane parsers skip ``#`` lines,
  so valued snapshots stay loadable everywhere (the values are simply
  dropped there), while this parser rebuilds the table and attaches it
  to the returned RIB.

- The binary ``RPIMG001`` image format of :mod:`repro.parallel.image`
  (:func:`rib_to_image` / :func:`rib_from_image` /
  :func:`save_table_image`) — the blessed persistence surface shared
  with compiled lookup structures.  Journal checkpoints use it; it is
  checksummed and typically an order of magnitude faster to parse.

:func:`load_table` accepts either: given a path it sniffs the image
magic and dispatches, so readers never need to know which format a
snapshot was written in.
"""

from __future__ import annotations

import io
import warnings
from typing import BinaryIO, TextIO, Union

import numpy as np

from repro.errors import SnapshotFormatError, TableFormatError
from repro.net.prefix import Prefix
from repro.net.rib import Rib

_HEADER = "# repro-table v1 width="
_VALUES_HEADER = "# repro-values "
_VALUE_LINE = "# v "

#: FIB indices must fit the widest supported leaf encoding (32-bit);
#: index 0 is the NO_ROUTE sentinel and never appears in a table.
_MAX_FIB_INDEX = (1 << 32) - 1

_MASK64 = (1 << 64) - 1


def save_table(rib: Rib, destination: Union[str, TextIO]) -> int:
    """Write ``rib`` as text; returns the number of routes written."""
    owned = isinstance(destination, str)
    stream = open(destination, "w") if owned else destination
    try:
        stream.write(f"{_HEADER}{rib.width}\n")
        if rib.values is not None:
            values = rib.values
            codec = values.codec
            stream.write(
                f"{_VALUES_HEADER}kind={values.kind} count={len(values)}\n"
            )
            for index, value in enumerate(values, start=1):
                stream.write(f"{_VALUE_LINE}{index} {codec.format(value)}\n")
        count = 0
        for prefix, fib_index in rib.routes():
            stream.write(f"{prefix.text} {fib_index}\n")
            count += 1
        return count
    finally:
        if owned:
            stream.close()


def load_table(source: Union[str, TextIO]) -> Rib:
    """Read a table written by :func:`save_table` or :func:`save_table_image`.

    Given a path, the binary ``RPIMG001`` image magic is sniffed first and
    the snapshot dispatched to :func:`rib_from_image`; anything else is
    parsed as the text format (stream inputs are always text).  Every
    malformed input — missing or bad header, unparseable route line,
    out-of-range FIB index, prefix from the wrong address family — raises
    :class:`~repro.errors.TableFormatError`; for text inputs it carries
    the 1-based line number of the offending input, so a bad feed is
    diagnosable instead of surfacing as a bare ``ValueError`` /
    ``IndexError`` from the internals.
    """
    if isinstance(source, str):
        from repro.parallel.image import MAGIC

        with open(source, "rb") as probe:
            head = probe.read(len(MAGIC))
        if head == MAGIC:
            return _load_table_image(source)
        with open(source, "r") as stream:
            try:
                return _parse_table(stream)
            except UnicodeDecodeError as exc:
                raise TableFormatError(
                    f"binary data in text snapshot: {exc}"
                ) from exc
    return _parse_table(source)


def _parse_table(stream: TextIO) -> Rib:
    first = stream.readline()
    if not first.startswith(_HEADER):
        raise TableFormatError(
            "not a repro-table snapshot (missing header)", line=1
        )
    try:
        width = int(first[len(_HEADER):].strip())
    except ValueError as exc:
        raise TableFormatError(
            f"bad width in header {first.strip()!r}", line=1
        ) from exc
    if width not in (32, 128):
        raise TableFormatError(
            f"unsupported address width {width} (expected 32 or 128)", line=1
        )
    rib = Rib(width=width)
    for line_no, line in enumerate(stream, start=2):
        line = line.strip()
        if line.startswith(_VALUES_HEADER) or line.startswith(_VALUE_LINE):
            _parse_value_line(rib, line, line_no)
            continue
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 2:
            raise TableFormatError(
                f"expected 'prefix fib-index', got {line!r}", line=line_no
            )
        prefix_text, fib_text = fields
        try:
            prefix = Prefix.parse(prefix_text)
        except ValueError as exc:
            raise TableFormatError(
                f"bad prefix {prefix_text!r}: {exc}", line=line_no
            ) from exc
        if prefix.width != width:
            raise TableFormatError(
                f"prefix {prefix_text!r} is /{prefix.width} in a "
                f"width={width} table",
                line=line_no,
            )
        try:
            fib_index = int(fib_text)
        except ValueError as exc:
            raise TableFormatError(
                f"bad FIB index {fib_text!r}", line=line_no
            ) from exc
        if not 1 <= fib_index <= _MAX_FIB_INDEX:
            raise TableFormatError(
                f"FIB index {fib_index} outside 1..{_MAX_FIB_INDEX}",
                line=line_no,
            )
        rib.insert(prefix, fib_index)
    return rib


def _parse_value_line(rib: Rib, line: str, line_no: int) -> None:
    """One ``# repro-values`` / ``# v`` directive (see the module doc)."""
    from repro.net.values import ValueTable

    if line.startswith(_VALUES_HEADER):
        if rib.values is not None:
            raise TableFormatError(
                "duplicate repro-values directive", line=line_no
            )
        fields = dict(
            part.split("=", 1)
            for part in line[len(_VALUES_HEADER):].split()
            if "=" in part
        )
        try:
            rib.values = ValueTable(kind=fields["kind"])
        except (KeyError, ValueError) as exc:
            raise TableFormatError(
                f"bad repro-values directive {line!r}: {exc}", line=line_no
            ) from exc
        return
    if rib.values is None:
        raise TableFormatError(
            "value line before the repro-values directive", line=line_no
        )
    fields = line[len(_VALUE_LINE):].split(maxsplit=1)
    if len(fields) != 2:
        raise TableFormatError(
            f"expected '# v <id> <value>', got {line!r}", line=line_no
        )
    try:
        declared = int(fields[0])
        assigned = rib.values.intern(rib.values.codec.parse(fields[1]))
    except (ValueError, TypeError, OverflowError) as exc:
        raise TableFormatError(
            f"bad value line {line!r}: {exc}", line=line_no
        ) from exc
    if assigned != declared:
        raise TableFormatError(
            f"value id {declared} does not match interning order "
            f"(got {assigned}); ids must be dense and ascending from 1",
            line=line_no,
        )


# ---------------------------------------------------------------------------
# the binary image surface (RPIMG001 — shared with repro.parallel.image)
# ---------------------------------------------------------------------------


def rib_to_image(rib: Rib):
    """Freeze ``rib`` as a ``kind="rib"`` :class:`~repro.parallel.image.TableImage`.

    Routes are stored as four parallel segments — the prefix value split
    into 64-bit halves (IPv6-capable), the prefix length, and the FIB
    index — in the RIB's lexicographic iteration order, which makes the
    image (and therefore its fingerprint) a deterministic function of the
    table's contents.
    """
    from repro.parallel.image import TableImage

    routes = list(rib.routes())
    count = len(routes)
    meta = {"routes": count}
    segments = {
        "value_hi": np.fromiter(
            (p.value >> 64 for p, _ in routes), np.uint64, count
        ),
        "value_lo": np.fromiter(
            (p.value & _MASK64 for p, _ in routes), np.uint64, count
        ),
        "length": np.fromiter(
            (p.length for p, _ in routes), np.uint8, count
        ),
        "fib": np.fromiter(
            (index for _, index in routes), np.uint32, count
        ),
    }
    if rib.values is not None:
        # Same convention as structure images (repro.lookup.base): the
        # side-table travels under the "values/" segment prefix plus one
        # meta key; pre-value-plane readers select segments by name and
        # never see it.
        vmeta, vsegs = rib.values.to_segments()
        meta["values"] = vmeta
        for name, arr in vsegs.items():
            segments[f"values/{name}"] = arr
    return TableImage.build(
        kind="rib",
        algorithm="rib",
        width=rib.width,
        meta=meta,
        segments=segments,
    )


def rib_from_image(image) -> Rib:
    """Rebuild a :class:`~repro.net.rib.Rib` from a ``kind="rib"`` image.

    Malformed images — wrong kind, unsupported width, inconsistent or
    missing segments, out-of-range routes — raise
    :class:`~repro.errors.TableFormatError` (the table-snapshot error
    contract), never a bare exception from the internals.
    """
    if image.kind != "rib":
        raise TableFormatError(
            f"image holds a {image.kind!r}, not a routing table"
        )
    width = image.width
    if width not in (32, 128):
        raise TableFormatError(
            f"unsupported address width {width} (expected 32 or 128)"
        )
    try:
        value_hi = image.segment("value_hi")
        value_lo = image.segment("value_lo")
        length = image.segment("length")
        fib = image.segment("fib")
    except SnapshotFormatError as exc:
        raise TableFormatError(str(exc)) from exc
    if not len(value_hi) == len(value_lo) == len(length) == len(fib):
        raise TableFormatError("rib image segments have mismatched lengths")
    values = None
    vmeta = image.meta.get("values")
    if vmeta is not None:
        from repro.net.values import ValueTable

        vsegs = {
            name[len("values/"):]: image.segment(name)
            for name in image.segment_names()
            if name.startswith("values/")
        }
        try:
            values = ValueTable.from_segments(vmeta, vsegs)
        except SnapshotFormatError as exc:
            raise TableFormatError(str(exc)) from exc
    rib = Rib(width=width, values=values)
    rows = zip(
        value_hi.tolist(), value_lo.tolist(), length.tolist(), fib.tolist()
    )
    for hi, lo, plen, fib_index in rows:
        if not 1 <= fib_index <= _MAX_FIB_INDEX:
            raise TableFormatError(
                f"FIB index {fib_index} outside 1..{_MAX_FIB_INDEX}"
            )
        try:
            rib.insert(Prefix((hi << 64) | lo, plen, width), fib_index)
        except ValueError as exc:
            raise TableFormatError(f"bad route in rib image: {exc}") from exc
    return rib


def save_table_image(rib: Rib, destination: Union[str, BinaryIO]) -> int:
    """Write ``rib`` in the binary image format; returns bytes written.

    The binary sibling of :func:`save_table` — checksummed, an order of
    magnitude faster to reload, and readable through plain
    :func:`load_table` (which sniffs the magic).  Journal checkpoints
    (:meth:`repro.robust.journal.Journal.checkpoint`) are written this
    way.
    """
    blob = rib_to_image(rib).to_bytes()
    owned = isinstance(destination, str)
    stream = open(destination, "wb") if owned else destination
    try:
        stream.write(blob)
    finally:
        if owned:
            stream.close()
    return len(blob)


def _load_table_image(path: str) -> Rib:
    from repro.parallel.image import TableImage

    with open(path, "rb") as stream:
        blob = stream.read()
    try:
        image = TableImage.open(blob)
    except SnapshotFormatError as exc:
        raise TableFormatError(f"bad table image: {exc}") from exc
    return rib_from_image(image)


# ---------------------------------------------------------------------------
# deprecated string helpers (PEP 562 shims)
# ---------------------------------------------------------------------------


def _dumps_table(rib: Rib) -> str:
    buffer = io.StringIO()
    save_table(rib, buffer)
    return buffer.getvalue()


def _loads_table(text: str) -> Rib:
    return load_table(io.StringIO(text))


#: Deprecated module attributes: name -> (implementation, migration advice).
_DEPRECATED = {
    "dumps_table": (
        _dumps_table,
        "save_table(rib, io.StringIO()) — or save_table_image for the "
        "binary image format",
    ),
    "loads_table": (_loads_table, "load_table(io.StringIO(text))"),
}


def __getattr__(name: str):
    try:
        impl, advice = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"repro.data.tableio.{name} is deprecated; use {advice}",
        DeprecationWarning,
        stacklevel=2,
    )
    return impl


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED))
