"""Datasets, traffic patterns and update streams.

The paper evaluates on 35 BGP routing tables (RouteViews archives plus
three operational ISP tables), four traffic patterns, and real BGP update
archives.  None of those inputs ship with this reproduction (no network
access; the ISP tables were never public), so this package synthesises
statistically faithful equivalents — seeded and deterministic — per the
substitution table in DESIGN.md:

- :mod:`repro.data.xorshift` — Marsaglia's xorshift RNGs, which the paper
  itself uses to generate its random query stream (Section 4.2).
- :mod:`repro.data.synth` — synthetic RIB generation with an empirical
  BGP prefix-length mix, clustered address allocation (for realistic
  hole punching) and skewed next-hop popularity.
- :mod:`repro.data.datasets` — the named registry reproducing Table 1.
- :mod:`repro.data.expand` — the SYN1/SYN2 table expansions (Section 4.1).
- :mod:`repro.data.traffic` — random / sequential / repeated / real-trace
  query streams (Section 4.2).
- :mod:`repro.data.updates` — BGP update-stream synthesis (Section 4.9).
- :mod:`repro.data.geoip` — country-code RIBs over a ``"cc"`` value
  table (the generalized-value-plane workload, docs/VALUES.md).
- :mod:`repro.data.tableio` — snapshot save/load in a plain text format.
"""

from repro.data.datasets import DATASETS, Dataset, load_dataset
from repro.data.geoip import COUNTRY_WEIGHTS, generate_geoip_table
from repro.data.synth import generate_table, generate_table_v6
from repro.data.traffic import (
    random_addresses,
    random_addresses_v6,
    real_trace,
    repeated_addresses,
    sequential_addresses,
)

__all__ = [
    "DATASETS",
    "Dataset",
    "load_dataset",
    "COUNTRY_WEIGHTS",
    "generate_geoip_table",
    "generate_table",
    "generate_table_v6",
    "random_addresses",
    "random_addresses_v6",
    "real_trace",
    "repeated_addresses",
    "sequential_addresses",
]
