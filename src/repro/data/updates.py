"""BGP update-stream synthesis and replay (Section 4.9).

The paper replays one hour of RouteViews update archives for RV-linx-p52:
23,446 route updates — 18,141 announcements and 5,305 withdrawals — in
7,824 messages.  This module synthesises a stream with the same mix
against any dataset: withdrawals remove existing routes, announcements
either add new prefixes (drawn from the same length mix as the table) or
re-announce existing prefixes with a different next hop, which is what
most BGP churn looks like.

Stream generation is configured through the frozen :class:`UpdateStream`
dataclass (same convention as the registry's ``StructureConfig``: typed
fields, ``resolve()`` merging, ``TypeError`` on unknown keys).  Besides
the composition knobs it carries an *arrival regime* — ``"steady"``
(Poisson arrivals at ``rate``) or ``"bursty"`` (back-to-back flap storms
separated by idle gaps) — which :func:`arrival_offsets` turns into a
deterministic wall-clock schedule for the churn harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.update import UpdatablePoptrie
from repro.errors import UpdateRejectedError
from repro.lookup.base import StructureConfig
from repro.net.prefix import Prefix
from repro.net.rib import Rib

#: The published stream composition.
PAPER_UPDATE_COUNT = 23446
PAPER_ANNOUNCE_FRACTION = 18141 / 23446

#: Arrival regimes understood by :func:`arrival_offsets`.
STREAM_REGIMES = ("steady", "bursty")


@dataclass(frozen=True)
class UpdateStream(StructureConfig):
    """Typed, frozen configuration of one synthetic update stream.

    Replaces the ad-hoc keyword surface of the original
    ``generate_update_stream`` signature; unknown keys raise
    ``TypeError`` through :meth:`StructureConfig.resolve`, exactly like
    a structure build config.

    Composition knobs (``count``, ``seed``, ``announce_fraction``,
    ``max_nexthop``, ``churn_depth_bias``) select *which* updates are
    generated; the regime knobs (``regime``, ``rate``, ``burst_length``,
    ``burst_idle_s``) select *when* they arrive (see
    :func:`arrival_offsets`).
    """

    #: Updates in the stream (the paper's replay is 23,446).
    count: int = PAPER_UPDATE_COUNT
    seed: int = 52
    #: Fraction of announce messages (the rest withdraw); the paper's
    #: replay is 18,141 / 23,446 ≈ 77 %.
    announce_fraction: float = PAPER_ANNOUNCE_FRACTION
    #: Largest next-hop index announcements may use (None = the table's
    #: current maximum).
    max_nexthop: Optional[int] = None
    #: Acceptance probability for short (≤ /18) prefixes when a live
    #: route must be chosen; 1.0 disables the long-prefix bias.
    churn_depth_bias: float = 0.12
    #: ``"steady"`` — Poisson arrivals at ``rate`` — or ``"bursty"`` —
    #: flap storms of ``burst_length`` back-to-back updates at ``rate``,
    #: separated by ``burst_idle_s`` of silence.
    regime: str = "steady"
    #: Target update arrivals per second (within a burst, for bursty).
    rate: float = 1000.0
    #: Updates per burst (bursty regime only).
    burst_length: int = 64
    #: Idle seconds between bursts (bursty regime only).
    burst_idle_s: float = 0.25

    def __post_init__(self) -> None:
        if self.regime not in STREAM_REGIMES:
            raise ValueError(
                f"unknown regime {self.regime!r} "
                f"(expected one of {STREAM_REGIMES})"
            )
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        if not 0.0 <= self.announce_fraction <= 1.0:
            raise ValueError(
                f"announce_fraction must be in [0, 1], "
                f"got {self.announce_fraction}"
            )
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst_length < 1:
            raise ValueError(
                f"burst_length must be >= 1, got {self.burst_length}"
            )
        if self.burst_idle_s < 0:
            raise ValueError(
                f"burst_idle_s must be >= 0, got {self.burst_idle_s}"
            )

    def duration_estimate(self) -> float:
        """Expected seconds the schedule spans (mean, not a bound)."""
        if self.count == 0:
            return 0.0
        if self.regime == "bursty":
            bursts = (self.count + self.burst_length - 1) // self.burst_length
            return (
                self.count / self.rate
                + max(0, bursts - 1) * self.burst_idle_s
            )
        return self.count / self.rate


@dataclass(frozen=True)
class Update:
    """One route update: ``kind`` is "A" (announce) or "W" (withdraw)."""

    kind: str
    prefix: Prefix
    nexthop: int = 0


def validate_update(update: Update) -> None:
    """Message-level wellformedness check, before any state is consulted.

    Raises :class:`~repro.errors.UpdateRejectedError` for an unknown
    message kind, a payload that is not a :class:`Prefix`, or an announce
    whose next hop is not a positive integer.  State-dependent checks
    (withdrawing an absent prefix, a next hop wider than the leaf
    encoding) belong to the update target, not the message.
    """
    if update.kind not in ("A", "W"):
        raise UpdateRejectedError(f"unknown update kind {update.kind!r}")
    if not isinstance(update.prefix, Prefix):
        raise UpdateRejectedError(f"not a prefix: {update.prefix!r}")
    if update.kind == "A":
        nexthop = update.nexthop
        if isinstance(nexthop, bool) or not isinstance(nexthop, int):
            raise UpdateRejectedError(
                f"next-hop index must be an integer, got {nexthop!r}"
            )
        if nexthop < 1:
            raise UpdateRejectedError(
                f"next-hop index {nexthop} must be positive"
            )


def generate_stream(
    rib: Rib, config: Optional[UpdateStream] = None, **options
) -> List[Update]:
    """Synthesise a stream of updates applicable in order to ``rib``.

    ``config`` is an :class:`UpdateStream`; the same fields may be given
    as keywords instead, and unknown names raise ``TypeError``.

    The generator tracks the evolving route set so every withdrawal
    targets a live prefix and announcements of new prefixes do not
    collide.  Real BGP churn is dominated by long prefixes — flapping
    customer /24s, not stable /8 aggregates (the paper's replay touches
    the top-level direct array on only 4.1 % of updates) —
    ``churn_depth_bias`` is the acceptance probability for selecting a
    short (≤ /18) prefix when a live route must be chosen.
    """
    stream = UpdateStream.resolve(config, options)
    count = stream.count
    announce_fraction = stream.announce_fraction
    max_nexthop = stream.max_nexthop
    churn_depth_bias = stream.churn_depth_bias
    rng = random.Random(stream.seed)
    live: List[Tuple[Prefix, int]] = list(rib.routes())
    live_index = {prefix: i for i, (prefix, _) in enumerate(live)}
    if max_nexthop is None:
        max_nexthop = max((hop for _, hop in live), default=1)
    lengths = [
        prefix.length
        for prefix, _ in live[: min(len(live), 10000)]
        if prefix.length > 18 or rng.random() < churn_depth_bias
    ] or [24]
    width = rib.width

    def pick_live_index() -> int:
        for _ in range(8):  # rejection-sample toward long prefixes
            i = rng.randrange(len(live))
            if live[i][0].length > 18 or rng.random() < churn_depth_bias:
                return i
        return rng.randrange(len(live))

    updates: List[Update] = []
    while len(updates) < count:
        if rng.random() < announce_fraction or not live:
            if live and rng.random() < 0.6:
                # Re-announce an existing prefix with a new next hop —
                # path changes dominate real BGP churn.
                i = pick_live_index()
                prefix, old_hop = live[i]
                new_hop = rng.randint(1, max_nexthop)
                if new_hop == old_hop:
                    continue
                live[i] = (prefix, new_hop)
                updates.append(Update("A", prefix, new_hop))
            else:
                length = rng.choice(lengths) if lengths else rng.randint(8, 24)
                value = rng.getrandbits(length) << (width - length) if length else 0
                prefix = Prefix(value, length, width)
                if prefix in live_index:
                    continue
                hop = rng.randint(1, max_nexthop)
                live_index[prefix] = len(live)
                live.append((prefix, hop))
                updates.append(Update("A", prefix, hop))
        else:
            i = pick_live_index()
            prefix, _ = live[i]
            last = live.pop()
            if i < len(live):
                live[i] = last
                live_index[last[0]] = i
            del live_index[prefix]
            updates.append(Update("W", prefix))
    return updates


def generate_update_stream(
    rib: Rib,
    count: int,
    seed: int = 52,
    announce_fraction: float = PAPER_ANNOUNCE_FRACTION,
    max_nexthop: Optional[int] = None,
    churn_depth_bias: float = 0.12,
) -> List[Update]:
    """Compatibility wrapper over :func:`generate_stream`.

    The historical positional signature; new callers should build an
    :class:`UpdateStream` and call :func:`generate_stream`.
    """
    return generate_stream(
        rib,
        UpdateStream(
            count=count,
            seed=seed,
            announce_fraction=announce_fraction,
            max_nexthop=max_nexthop,
            churn_depth_bias=churn_depth_bias,
        ),
    )


def arrival_offsets(
    config: Optional[UpdateStream] = None, **options
) -> List[float]:
    """Deterministic wall-clock arrival schedule for a stream.

    Returns ``count`` non-decreasing offsets in seconds from the start
    of the run; the churn harness fires update ``i`` at ``start +
    offsets[i]``.

    - ``"steady"``: Poisson arrivals (exponential gaps) at ``rate`` —
      the open-loop shape the load generator also uses.
    - ``"bursty"``: flap storms — ``burst_length`` updates separated by
      exponential gaps at ``rate``, then ``burst_idle_s`` of silence
      (jittered ±50 %) before the next storm.  This is the shape of real
      BGP session resets: long quiet, then a correlated wave.
    """
    stream = UpdateStream.resolve(config, options)
    rng = random.Random(stream.seed ^ 0xA331)
    offsets: List[float] = []
    t = 0.0
    for i in range(stream.count):
        if (
            stream.regime == "bursty"
            and i
            and i % stream.burst_length == 0
        ):
            t += stream.burst_idle_s * rng.uniform(0.5, 1.5)
        else:
            t += rng.expovariate(stream.rate)
        offsets.append(t)
    return offsets


def replay_updates(
    target: UpdatablePoptrie, updates: Iterable[Update]
) -> int:
    """Replay a stream against an update engine; returns the count.

    Works against anything exposing ``announce``/``withdraw``
    (:class:`UpdatablePoptrie` and subclasses).  For the uniform
    registry-wide surface use
    :meth:`repro.lookup.base.LookupStructure.apply_updates` instead.
    """
    n = 0
    for update in updates:
        validate_update(update)
        if update.kind == "A":
            target.announce(update.prefix, update.nexthop)
        else:
            target.withdraw(update.prefix)
        n += 1
    return n


#: Renamed in PR 10: the module-level helper is now ``replay_updates``,
#: freeing the ``apply_updates`` name for the registry-wide structure
#: method.  The old spelling resolves with a DeprecationWarning.
_RENAMED = {"apply_updates": "replay_updates"}


def __getattr__(name: str):
    if name in _RENAMED:
        import warnings

        new = _RENAMED[name]
        warnings.warn(
            f"repro.data.updates.{name} is deprecated; "
            f"use repro.data.updates.{new}",
            DeprecationWarning,
            stacklevel=2,
        )
        return globals()[new]
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
