"""BGP update-stream synthesis and replay (Section 4.9).

The paper replays one hour of RouteViews update archives for RV-linx-p52:
23,446 route updates — 18,141 announcements and 5,305 withdrawals — in
7,824 messages.  This module synthesises a stream with the same mix
against any dataset: withdrawals remove existing routes, announcements
either add new prefixes (drawn from the same length mix as the table) or
re-announce existing prefixes with a different next hop, which is what
most BGP churn looks like.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.update import UpdatablePoptrie
from repro.errors import UpdateRejectedError
from repro.net.prefix import Prefix
from repro.net.rib import Rib

#: The published stream composition.
PAPER_UPDATE_COUNT = 23446
PAPER_ANNOUNCE_FRACTION = 18141 / 23446


@dataclass(frozen=True)
class Update:
    """One route update: ``kind`` is "A" (announce) or "W" (withdraw)."""

    kind: str
    prefix: Prefix
    nexthop: int = 0


def validate_update(update: Update) -> None:
    """Message-level wellformedness check, before any state is consulted.

    Raises :class:`~repro.errors.UpdateRejectedError` for an unknown
    message kind, a payload that is not a :class:`Prefix`, or an announce
    whose next hop is not a positive integer.  State-dependent checks
    (withdrawing an absent prefix, a next hop wider than the leaf
    encoding) belong to the update target, not the message.
    """
    if update.kind not in ("A", "W"):
        raise UpdateRejectedError(f"unknown update kind {update.kind!r}")
    if not isinstance(update.prefix, Prefix):
        raise UpdateRejectedError(f"not a prefix: {update.prefix!r}")
    if update.kind == "A":
        nexthop = update.nexthop
        if isinstance(nexthop, bool) or not isinstance(nexthop, int):
            raise UpdateRejectedError(
                f"next-hop index must be an integer, got {nexthop!r}"
            )
        if nexthop < 1:
            raise UpdateRejectedError(
                f"next-hop index {nexthop} must be positive"
            )


def generate_update_stream(
    rib: Rib,
    count: int,
    seed: int = 52,
    announce_fraction: float = PAPER_ANNOUNCE_FRACTION,
    max_nexthop: Optional[int] = None,
    churn_depth_bias: float = 0.12,
) -> List[Update]:
    """Synthesise ``count`` updates applicable in order to ``rib``'s table.

    The function tracks the evolving route set so every withdrawal targets
    a live prefix and announcements of new prefixes do not collide.

    Real BGP churn is dominated by long prefixes — flapping customer /24s,
    not stable /8 aggregates (the paper's replay touches the top-level
    direct array on only 4.1 % of updates).  ``churn_depth_bias`` is the
    acceptance probability for selecting a short (≤ /18) prefix when a
    live route must be chosen; 1.0 disables the bias.
    """
    rng = random.Random(seed)
    live: List[Tuple[Prefix, int]] = list(rib.routes())
    live_index = {prefix: i for i, (prefix, _) in enumerate(live)}
    if max_nexthop is None:
        max_nexthop = max((hop for _, hop in live), default=1)
    lengths = [
        prefix.length
        for prefix, _ in live[: min(len(live), 10000)]
        if prefix.length > 18 or rng.random() < churn_depth_bias
    ] or [24]
    width = rib.width

    def pick_live_index() -> int:
        for _ in range(8):  # rejection-sample toward long prefixes
            i = rng.randrange(len(live))
            if live[i][0].length > 18 or rng.random() < churn_depth_bias:
                return i
        return rng.randrange(len(live))

    updates: List[Update] = []
    while len(updates) < count:
        if rng.random() < announce_fraction or not live:
            if live and rng.random() < 0.6:
                # Re-announce an existing prefix with a new next hop —
                # path changes dominate real BGP churn.
                i = pick_live_index()
                prefix, old_hop = live[i]
                new_hop = rng.randint(1, max_nexthop)
                if new_hop == old_hop:
                    continue
                live[i] = (prefix, new_hop)
                updates.append(Update("A", prefix, new_hop))
            else:
                length = rng.choice(lengths) if lengths else rng.randint(8, 24)
                value = rng.getrandbits(length) << (width - length) if length else 0
                prefix = Prefix(value, length, width)
                if prefix in live_index:
                    continue
                hop = rng.randint(1, max_nexthop)
                live_index[prefix] = len(live)
                live.append((prefix, hop))
                updates.append(Update("A", prefix, hop))
        else:
            i = pick_live_index()
            prefix, _ = live[i]
            last = live.pop()
            if i < len(live):
                live[i] = last
                live_index[last[0]] = i
            del live_index[prefix]
            updates.append(Update("W", prefix))
    return updates


def apply_updates(
    target: UpdatablePoptrie, updates: Iterable[Update]
) -> int:
    """Apply a stream to an :class:`UpdatablePoptrie`; returns the count."""
    n = 0
    for update in updates:
        validate_update(update)
        if update.kind == "A":
            target.announce(update.prefix, update.nexthop)
        else:
            target.withdraw(update.prefix)
        n += 1
    return n
