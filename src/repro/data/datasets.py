"""The Table 1 dataset registry.

Reproduces the paper's 35 routing-table instances by name: 31 RouteViews
peer tables ("RV-*"), three operational tables ("REAL-*") and the four
synthetic expansions ("SYN1-*", "SYN2-*").  Each entry records the
published prefix and next-hop counts; :func:`load_dataset` synthesises the
table at a configurable ``scale`` (1.0 = the published size, default 0.1
so the full benchmark suite runs in CI time) with a seed derived from the
dataset name, so every run of every experiment sees the same tables.

The REAL-* tables carry an IGP fraction (the paper: "the real ones contain
routes exchanged via Interior Gateway Protocols"; Section 4.7 measures
32.5 % of trace packets deeper than 18 bits on REAL-RENET, driven by those
routes).  The SYN tables are derived from REAL-Tier1-A/B with the
Section 4.1 splitting procedures in :mod:`repro.data.expand`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.data import expand, synth
from repro.net.values import Fib, synthetic_fib
from repro.net.rib import Rib


@dataclass(frozen=True)
class DatasetSpec:
    """Published metadata of one Table 1 row."""

    name: str
    prefixes: int
    nexthops: int
    kind: str  # "rv", "real", "syn1", "syn2"
    base: Optional[str] = None  # for syn tables: the table they expand
    igp_fraction: float = 0.0


def _rv(name: str, prefixes: int, nexthops: int) -> DatasetSpec:
    return DatasetSpec(name, prefixes, nexthops, "rv")


_SPECS = [
    # RouteViews tables (Table 1, left-to-right, top-to-bottom).
    _rv("RV-linx-p46", 518231, 308),
    _rv("RV-linx-p50", 512476, 410),
    _rv("RV-linx-p52", 514590, 419),
    _rv("RV-linx-p57", 514070, 142),
    _rv("RV-linx-p60", 508700, 70),
    _rv("RV-linx-p61", 512476, 149),
    _rv("RV-nwax-p1", 519224, 60),
    _rv("RV-nwax-p2", 514627, 46),
    _rv("RV-nwax-p5", 519195, 49),
    _rv("RV-paixisc-p12", 519142, 68),
    _rv("RV-paixisc-p14", 524168, 49),
    _rv("RV-saopaulo-p12", 516536, 510),
    _rv("RV-saopaulo-p13", 517914, 504),
    _rv("RV-saopaulo-p16", 521405, 528),
    _rv("RV-saopaulo-p18", 521874, 522),
    _rv("RV-saopaulo-p2", 523092, 530),
    _rv("RV-saopaulo-p20", 523574, 470),
    _rv("RV-saopaulo-p23", 523013, 517),
    _rv("RV-saopaulo-p25", 532637, 523),
    _rv("RV-saopaulo-p26", 516408, 479),
    _rv("RV-saopaulo-p8", 522296, 477),
    _rv("RV-saopaulo-p9", 515639, 507),
    _rv("RV-singapore-p3", 518620, 136),
    _rv("RV-singapore-p5", 516557, 129),
    _rv("RV-sydney-p0", 520580, 122),
    _rv("RV-sydney-p1", 515809, 125),
    _rv("RV-sydney-p3", 517511, 115),
    _rv("RV-sydney-p4", 519246, 86),
    _rv("RV-sydney-p9", 523400, 127),
    _rv("RV-telxatl-p3", 511161, 56),
    _rv("RV-telxatl-p6", 519537, 42),
    _rv("RV-telxatl-p7", 513339, 49),
    # Operational tables: IGP routes present.
    DatasetSpec("REAL-Tier1-A", 531489, 13, "real", igp_fraction=0.06),
    DatasetSpec("REAL-Tier1-B", 524170, 9, "real", igp_fraction=0.05),
    DatasetSpec("REAL-RENET", 516100, 32, "real", igp_fraction=0.08),
    # Synthetic expansions (sizes are the published outcomes; the actual
    # route count comes from applying the split procedure).
    DatasetSpec("SYN1-Tier1-A", 764847, 45, "syn1", base="REAL-Tier1-A"),
    DatasetSpec("SYN1-Tier1-B", 756406, 19, "syn1", base="REAL-Tier1-B"),
    DatasetSpec("SYN2-Tier1-A", 885645, 87, "syn2", base="REAL-Tier1-A"),
    DatasetSpec("SYN2-Tier1-B", 876944, 33, "syn2", base="REAL-Tier1-B"),
]

DATASETS: Dict[str, DatasetSpec] = {spec.name: spec for spec in _SPECS}

#: Table 1 rows only (what the Figure 9 sweep iterates over).
EVALUATION_TABLES = [spec.name for spec in _SPECS if spec.kind in ("rv", "real")]
SYNTHETIC_TABLES = [spec.name for spec in _SPECS if spec.kind in ("syn1", "syn2")]


@dataclass
class Dataset:
    """A materialised dataset: the RIB, its FIB, and its metadata."""

    spec: DatasetSpec
    rib: Rib
    fib: Fib
    scale: float

    @property
    def name(self) -> str:
        return self.spec.name

    def __len__(self) -> int:
        return len(self.rib)


def _seed_for(name: str) -> int:
    """Stable per-name seed (zlib.crc32 is stable across Python runs)."""
    return zlib.crc32(name.encode()) or 1


_CACHE: Dict[Tuple[str, float], Dataset] = {}


def load_dataset(name: str, scale: float = 0.1, cache: bool = True) -> Dataset:
    """Materialise a Table 1 dataset at the given scale.

    ``scale`` multiplies the published prefix count (1.0 reproduces the
    published size; the default 0.1 keeps a full 35-table sweep tractable
    in pure Python).  Next-hop counts are not scaled — they are small and
    their cardinality, not the table size, is what drives compressibility.
    """
    key = (name, scale)
    if cache and key in _CACHE:
        return _CACHE[key]
    spec = DATASETS[name]
    if spec.kind in ("syn1", "syn2"):
        assert spec.base is not None
        base = load_dataset(spec.base, scale=scale, cache=cache)
        rib = (
            expand.expand_syn1(base.rib)
            if spec.kind == "syn1"
            else expand.expand_syn2(base.rib)
        )
        max_fib = max((idx for _, idx in rib.routes()), default=0)
        dataset = Dataset(spec, rib, synthetic_fib(max_fib), scale)
    else:
        n = max(int(spec.prefixes * scale), 64)
        rib, fib = synth.generate_table(
            n_prefixes=n,
            n_nexthops=spec.nexthops,
            seed=_seed_for(name),
            igp_fraction=spec.igp_fraction,
        )
        dataset = Dataset(spec, rib, fib, scale)
    if cache:
        _CACHE[key] = dataset
    return dataset


def load_dataset_v6(name: str = "REAL-Tier1-A-v6", scale: float = 1.0) -> Dataset:
    """The Section 4.10 IPv6 table: 20,440 prefixes from the same router
    as REAL-Tier1-A (synthesised; IPv6 tables are small enough that the
    default scale is 1.0)."""
    n = max(int(20440 * scale), 64)
    rib, fib = synth.generate_table_v6(n, n_nexthops=13, seed=_seed_for(name))
    spec = DatasetSpec(name, 20440, 13, "real-v6")
    return Dataset(spec, rib, fib, scale)
