"""The Section 4.2 traffic patterns.

- **random** — xorshift32 addresses over the whole IPv4 space, the paper's
  primary pattern (cache-adversarial: no locality).
- **sequential** — addresses 0, 1, 2, ... (maximal spatial+temporal
  locality).
- **repeated** — xorshift32 addresses, each repeated 16 times (temporal
  locality).
- **real-trace** — our substitute for the paper's MAWI capture: a pool of
  distinct destinations with Zipf popularity, biased toward addresses that
  need deep lookups (the trace property Section 4.7 calls out: 32.5 % of
  packets deeper than 18 bits, 21.8 % deeper than 24 bits on REAL-RENET).
- **random IPv6** — Section 4.10: four xorshift32 words per 128-bit
  address, constrained to 2000::/8.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from repro.data.xorshift import Xorshift32, xorshift32_array
from repro.net.prefix import Prefix
from repro.net.rib import Rib


def random_addresses(count: int, seed: int = 2463534242) -> np.ndarray:
    """The paper's random pattern: xorshift32 addresses (uint64 array)."""
    return xorshift32_array(count, seed)


def sequential_addresses(count: int, start: int = 0) -> np.ndarray:
    """The sequential pattern: consecutive addresses from ``start``."""
    return (np.arange(start, start + count, dtype=np.uint64)) & np.uint64(0xFFFFFFFF)


def repeated_addresses(
    count: int, repeat: int = 16, seed: int = 2463534242
) -> np.ndarray:
    """The repeated pattern: each random address issued ``repeat`` times."""
    distinct = (count + repeat - 1) // repeat
    base = xorshift32_array(distinct, seed)
    return np.repeat(base, repeat)[:count]


def real_trace(
    rib: Rib,
    count: int,
    seed: int = 1,
    distinct: Optional[int] = None,
    zipf_exponent: float = 1.05,
    deep_bias: float = 3.0,
) -> np.ndarray:
    """Synthesise a real-trace-like destination stream against ``rib``.

    A pool of ``distinct`` destinations is drawn from the table's own
    prefixes — each a random host inside a random prefix, with prefixes
    longer than 18 bits oversampled by ``deep_bias`` (IGP destinations
    dominate a border router's transit traffic, per Section 4.7) — then
    the stream samples the pool with Zipf(``zipf_exponent``) popularity.

    The paper's trace has 97.1 M packets over 644,790 distinct addresses
    (~150 packets per destination); ``distinct`` defaults to the same
    ratio.
    """
    rng = random.Random(seed)
    if distinct is None:
        distinct = max(count // 150, 1)
    prefixes: List[Prefix] = [prefix for prefix, _ in rib.routes()]
    if not prefixes:
        return random_addresses(count, seed or 1)
    weights = [deep_bias if p.length > 18 else 1.0 for p in prefixes]
    pool = np.empty(distinct, dtype=np.uint64)
    chosen = rng.choices(prefixes, weights=weights, k=distinct)
    for i, prefix in enumerate(chosen):
        host_bits = rib.width - prefix.length
        host = rng.getrandbits(host_bits) if host_bits else 0
        pool[i] = prefix.value | host
    # Zipf ranks over the pool.
    ranks = np.arange(1, distinct + 1, dtype=np.float64)
    probabilities = ranks ** (-zipf_exponent)
    probabilities /= probabilities.sum()
    generator = np.random.default_rng(seed)
    indices = generator.choice(distinct, size=count, p=probabilities)
    # Interleave so identical destinations cluster in short bursts, like
    # packets of one flow, rather than being fully shuffled.
    return pool[np.sort(indices)[_burst_permutation(count, generator)]]


def _burst_permutation(count: int, generator: np.random.Generator) -> np.ndarray:
    """A permutation that keeps runs of ~8 positions together, giving the
    stream flow-like temporal locality without full sortedness."""
    burst = 8
    blocks = np.arange((count + burst - 1) // burst)
    generator.shuffle(blocks)
    index = (blocks[:, None] * burst + np.arange(burst)[None, :]).ravel()
    return index[index < count]


def random_addresses_v6(
    count: int, seed: int = 2463534242, prefix8: int = 0x20
) -> List[int]:
    """Section 4.10's IPv6 random pattern: 128-bit addresses assembled from
    four xorshift32 words, constrained to ``prefix8``::/8 (2000::/8)."""
    generator = Xorshift32(seed)
    out: List[int] = []
    mask_top = (1 << 120) - 1
    for _ in range(count):
        value = (
            (generator.next() << 96)
            | (generator.next() << 64)
            | (generator.next() << 32)
            | generator.next()
        )
        out.append((prefix8 << 120) | (value & mask_top))
    return out
