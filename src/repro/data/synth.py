"""Synthetic routing-table generation.

Substitutes for the RouteViews / ISP tables the paper evaluates on (see
DESIGN.md).  What the lookup structures are sensitive to, and what this
generator therefore controls:

- **size** — number of prefixes (Table 1: ~510k–530k, scaled here);
- **prefix-length mix** — Section 4.1: "most prefixes in the real
  datasets are distributed in the range of prefix length from /11 through
  /24", with the large mode at /24 and a secondary mode at /16;
- **address clustering** — real prefixes concentrate inside registry
  *allocation blocks* rather than spreading uniformly.  This matters
  structurally: SAIL's 15-bit chunk identifiers survive a real 520k-route
  table only because the deep prefixes fall into < 2^15 distinct /16
  chunks, and DXR's range table stays under 2^19 only because adjacent
  routes often share a next hop and merge.  The generator allocates
  prefixes inside a bounded set of blocks sized like registry allocations;
- **hole punching** — longer prefixes nest inside shorter ones within a
  block, which makes the binary radix depth exceed the matched prefix
  length (Figure 7) and exercises the leafvec irrelevant-slot rule;
- **next-hop locality** — routes in one block mostly share the block's
  "home" next hop (real tables route a region via the same peer), with a
  configurable noise floor.  This drives leafvec compressibility, route
  aggregation, and DXR range merging — with i.i.d. next hops all three
  collapse and none of the paper's footprints can be reproduced;
- **IGP routes** — the REAL-* tables contain /25–/32 IGP prefixes that
  force deeper searches (Sections 4.1 and 4.7); they are confined to a
  few internal blocks, as an ISP's own infrastructure space is.

Everything is driven by a seeded ``random.Random`` so each named dataset
is reproducible bit-for-bit.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.values import Fib, synthetic_fib
from repro.net.prefix import Prefix
from repro.net.rib import Rib

#: Empirical BGP prefix-length mix (fractions; normalised at use).  Modeled
#: on the 2014-era global table: ~55 % /24, ~10 % /16, bulk in /19–/23.
BGP_LENGTH_WEIGHTS: Dict[int, float] = {
    8: 0.0008,
    9: 0.0006,
    10: 0.0018,
    11: 0.0024,
    12: 0.0050,
    13: 0.0095,
    14: 0.0170,
    15: 0.0170,
    16: 0.1020,
    17: 0.0280,
    18: 0.0480,
    19: 0.0650,
    20: 0.0720,
    21: 0.0760,
    22: 0.0920,
    23: 0.0700,
    24: 0.3930,
}

#: IGP prefix lengths for the REAL-* tables: loopbacks (/32), point-to-point
#: links (/30, /31) and internal aggregates.
IGP_LENGTH_WEIGHTS: Dict[int, float] = {
    25: 0.08,
    26: 0.12,
    27: 0.10,
    28: 0.12,
    29: 0.13,
    30: 0.20,
    31: 0.05,
    32: 0.20,
}

#: Registry allocation-block sizes (the address pools prefixes live in).
BLOCK_LENGTH_WEIGHTS: Dict[int, float] = {
    12: 0.04,
    13: 0.08,
    14: 0.18,
    15: 0.30,
    16: 0.40,
}

#: IPv6 mix (Section 4.10): allocations peak at /32 and /48.
IPV6_LENGTH_WEIGHTS: Dict[int, float] = {
    20: 0.01,
    24: 0.02,
    28: 0.03,
    29: 0.04,
    32: 0.28,
    36: 0.06,
    40: 0.07,
    44: 0.05,
    48: 0.38,
    52: 0.02,
    56: 0.02,
    64: 0.02,
}


class _NexthopSampler:
    """Zipf-like (1/rank) next-hop popularity with precomputed CDF."""

    def __init__(self, count: int) -> None:
        self.count = count
        self.cumulative: List[float] = []
        acc = 0.0
        for rank in range(1, count + 1):
            acc += 1.0 / rank
            self.cumulative.append(acc)

    def sample(self, rng: random.Random) -> int:
        x = rng.random() * self.cumulative[-1]
        return bisect.bisect_left(self.cumulative, x) + 1


@dataclass
class _Block:
    """One allocation block with its routing policy.

    ``affinity`` is the probability a route in the block takes the block's
    home next hop.  Real tables mix *uniform* regions (one upstream per
    allocation), *mixed* regions, and legacy *swamp* space where adjacent
    /24s are routed to many different peers.  The swamp is what gives DXR
    chunks with dozens-to-hundreds of ranges (deep binary searches) and
    Poptrie nodes with poorly compressible leaves — without it every
    structure looks artificially cheap on deep lookups.
    """

    value: int
    length: int
    home_nexthop: int
    alt_nexthop: int
    affinity: float = 0.95


#: (class weight, affinity, placement weight) for uniform/mixed/swamp.
BLOCK_CLASSES = (
    (0.55, 0.995, 1.0),
    (0.33, 0.90, 1.0),
    (0.12, 0.04, 3.5),
)


def _choices(weights: Dict[int, float]) -> Tuple[List[int], List[float]]:
    keys = sorted(weights)
    return keys, [weights[k] for k in keys]


def generate_table(
    n_prefixes: int,
    n_nexthops: int,
    seed: int,
    igp_fraction: float = 0.0,
    width: int = 32,
    home_affinity: float = 0.82,
    fib: Optional[Fib] = None,
) -> Tuple[Rib, Fib]:
    """Generate a BGP-like routing table (see module docstring).

    ``home_affinity`` is the probability a route uses its block's home
    next hop; the remainder splits between the block's alternate and a
    global Zipf draw.  ``igp_fraction`` of the routes are IGP-style /25–/32
    prefixes confined to a handful of internal blocks.
    """
    rng = random.Random(seed)
    rib = Rib(width=width)
    if fib is None:
        fib = synthetic_fib(n_nexthops)
    sampler = _NexthopSampler(n_nexthops)
    lengths, weights = _choices(BGP_LENGTH_WEIGHTS)
    igp_lengths, igp_weights = _choices(IGP_LENGTH_WEIGHTS)
    block_lengths, block_weights = _choices(BLOCK_LENGTH_WEIGHTS)

    # Allocation blocks.  The count is bounded so the number of /16 chunks
    # holding deep prefixes stays realistic (< 2^15: real tables compile
    # under SAIL; see module docstring).  Blocks start above 1.0.0.0 to
    # leave 0/8 unrouted, as in the real Internet.
    n_blocks = min(max(n_prefixes // 70, 16), 7800)
    blocks: List[_Block] = []
    class_weights = [c[0] for c in BLOCK_CLASSES]
    placement_weights: List[float] = []
    for _ in range(n_blocks):
        block_len = rng.choices(block_lengths, block_weights)[0]
        value = rng.randrange(1 << block_len) << (width - block_len)
        _, affinity, placement = BLOCK_CLASSES[
            rng.choices(range(len(BLOCK_CLASSES)), class_weights)[0]
        ]
        blocks.append(
            _Block(
                value, block_len, sampler.sample(rng), sampler.sample(rng), affinity
            )
        )
        placement_weights.append(placement)
    placement_cdf: List[float] = []
    acc = 0.0
    for w in placement_weights:
        acc += w
        placement_cdf.append(acc)
    # A few internal blocks hold the IGP routes (an ISP's own space).
    igp_blocks = blocks[: max(2, min(6, n_blocks // 64))]

    #: Recently generated prefixes per block, for deep nesting chains.
    recent: Dict[int, List[Prefix]] = {}

    def pick_block() -> _Block:
        x = rng.random() * placement_cdf[-1]
        return blocks[bisect.bisect_left(placement_cdf, x)]

    def pick_nexthop(block: _Block) -> int:
        affinity = block.affinity * home_affinity / 0.82
        x = rng.random()
        if x < affinity:
            return block.home_nexthop
        if x < affinity + 0.5 * (1.0 - affinity):
            return block.alt_nexthop
        return sampler.sample(rng)

    attempts = 0
    max_attempts = n_prefixes * 30
    while len(rib) < n_prefixes and attempts < max_attempts:
        attempts += 1
        igp = igp_fraction > 0 and rng.random() < igp_fraction
        if igp:
            length = rng.choices(igp_lengths, igp_weights)[0]
            block = igp_blocks[rng.randrange(len(igp_blocks))]
        else:
            length = rng.choices(lengths, weights)[0]
            block = pick_block()
        if length <= block.length:
            # A route at or above its block's size: place it on the block
            # itself (covering aggregate) or uniformly for the rare giants.
            if length == block.length:
                value = block.value
            else:
                value = rng.getrandbits(length) << (width - length)
        else:
            extra = length - block.length
            chain = recent.get(id(block))
            if chain and rng.random() < 0.5:
                parent = chain[rng.randrange(len(chain))]
                if parent.length < length:
                    sub = rng.getrandbits(length - parent.length)
                    value = parent.value | (sub << (width - length))
                else:
                    value = block.value | (rng.getrandbits(extra) << (width - length))
            else:
                value = block.value | (rng.getrandbits(extra) << (width - length))
        prefix = Prefix(value, length, width)
        if rib.get(prefix):
            continue
        rib.insert(prefix, pick_nexthop(block))
        if not igp and 14 <= length <= 20:
            chain = recent.setdefault(id(block), [])
            if len(chain) < 32:
                chain.append(prefix)
    return rib, fib


def generate_table_v6(
    n_prefixes: int,
    n_nexthops: int,
    seed: int,
    home_affinity: float = 0.8,
) -> Tuple[Rib, Fib]:
    """Generate an IPv6 table inside 2000::/3 (global unicast).

    Section 4.10 queries random addresses within 2000::/8; placing every
    prefix under 2000::/8 keeps the query stream meaningful.
    """
    rng = random.Random(seed)
    width = 128
    rib = Rib(width=width)
    fib = synthetic_fib(n_nexthops)
    sampler = _NexthopSampler(n_nexthops)
    lengths, weights = _choices(IPV6_LENGTH_WEIGHTS)
    base = 0x20 << (width - 8)  # 2000::/8

    # RIR-style allocation blocks: /23–/29 pools under 2000::/8.
    n_blocks = min(max(n_prefixes // 40, 8), 1024)
    blocks: List[_Block] = []
    for _ in range(n_blocks):
        block_len = rng.choice([23, 24, 25, 26, 27, 28, 29])
        value = base | (rng.getrandbits(block_len - 8) << (width - block_len))
        blocks.append(
            _Block(value, block_len, sampler.sample(rng), sampler.sample(rng))
        )

    attempts = 0
    while len(rib) < n_prefixes and attempts < n_prefixes * 30:
        attempts += 1
        length = rng.choices(lengths, weights)[0]
        block = blocks[rng.randrange(n_blocks)]
        if length <= block.length:
            value = base | (rng.getrandbits(length - 8) << (width - length))
        else:
            extra = length - block.length
            value = block.value | (rng.getrandbits(extra) << (width - length))
        prefix = Prefix(value, length, width)
        if rib.get(prefix):
            continue
        nexthop = (
            block.home_nexthop
            if rng.random() < home_affinity
            else sampler.sample(rng)
        )
        rib.insert(prefix, nexthop)
    return rib, fib
