"""Marsaglia xorshift random number generators.

Section 4.2: "232 random IP addresses are generated using xorshift", with
each number generated immediately before the lookup to avoid polluting the
cache with a pre-computed query array.  We implement the classic 32-, 64-
and 128-bit variants from Marsaglia (2003) bit-exactly, so the query
streams here are the same pseudo-random sequences the paper used (up to
seed choice, which the paper does not publish).
"""

from __future__ import annotations

import numpy as np

_M32 = 0xFFFFFFFF
_M64 = 0xFFFFFFFFFFFFFFFF


class Xorshift32:
    """The 13/17/5 xorshift32 generator.

    >>> g = Xorshift32(2463534242)
    >>> g.next() == g.next()
    False
    """

    def __init__(self, seed: int = 2463534242) -> None:
        if seed == 0:
            raise ValueError("xorshift seed must be non-zero")
        self.state = seed & _M32

    def next(self) -> int:
        x = self.state
        x ^= (x << 13) & _M32
        x ^= x >> 17
        x ^= (x << 5) & _M32
        self.state = x
        return x


class Xorshift64:
    """The 13/7/17 xorshift64 generator."""

    def __init__(self, seed: int = 88172645463325252) -> None:
        if seed == 0:
            raise ValueError("xorshift seed must be non-zero")
        self.state = seed & _M64

    def next(self) -> int:
        x = self.state
        x ^= (x << 13) & _M64
        x ^= x >> 7
        x ^= (x << 17) & _M64
        self.state = x
        return x


class Xorshift128:
    """Marsaglia's four-word xorshift128 (period 2^128 - 1)."""

    def __init__(
        self,
        x: int = 123456789,
        y: int = 362436069,
        z: int = 521288629,
        w: int = 88675123,
    ) -> None:
        if not (x or y or z or w):
            raise ValueError("xorshift128 state must be non-zero")
        self.x, self.y, self.z, self.w = (v & _M32 for v in (x, y, z, w))

    def next(self) -> int:
        t = (self.x ^ ((self.x << 11) & _M32)) & _M32
        self.x, self.y, self.z = self.y, self.z, self.w
        self.w = (self.w ^ (self.w >> 19)) ^ (t ^ (t >> 8))
        self.w &= _M32
        return self.w


def xorshift32_array(count: int, seed: int = 2463534242) -> np.ndarray:
    """``count`` consecutive xorshift32 outputs as a uint64 numpy array.

    The paper generates each address right before its lookup; a benchmark
    that feeds a vectorised engine needs them materialised instead, and the
    paper's measured 1.22 ns/number generation overhead stays *included* in
    our scalar harness (which also generates per lookup) for parity.
    """
    generator = Xorshift32(seed)
    out = np.empty(count, dtype=np.uint64)
    step = generator.next
    for i in range(count):
        out[i] = step()
    return out
