"""The SYN1/SYN2 synthetic table expansions (Section 4.1).

The paper stresses scalability by splitting prefixes of its real tier-1
tables:

- **SYN1**: "Each prefix that is no longer than /24 and /16 is split into
  two and four prefixes, respectively."
- **SYN2**: "Each prefix that is no longer than /24, /20, and /16 is
  split into two, four, and eight prefixes, respectively."

"Each split prefix is assigned a different next hop systematically; the
i-th split prefix has the next hop n + i where n is the original next
hop", with the new values chosen not to collide with existing next hops.
We reproduce that by striding the new indices by the original table's
next-hop count, which keeps the assignment systematic, collision-free and
deterministic.

Two aspects of the published procedure are under-specified, and we pin
them to reproduce the published *outcomes* (Table 5):

- applying the splits to every eligible prefix would produce far more
  routes than the published 764,847 / 885,645 (and would make SAIL fail
  on SYN1, which the paper's Table 5 shows working), so a seeded fraction
  of eligible prefixes is split, sized to land on the published counts;
- SYN1 splits are capped at /24 — SYN1 introduces no prefixes longer
  than /24, which is why SAIL still compiles it — while SYN2's split of
  the /21–/24 band produces /25s, exceeding SAIL's 2^15 chunk identifiers
  ("SAIL cannot compile SYN2-Tier1-A and SYN2-Tier1-B", Section 4.8) and
  pushing DXR past 2^19 ranges so only the modified 2^20 variant
  compiles.
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from repro.net.prefix import Prefix
from repro.net.rib import Rib

#: Fractions of eligible prefixes split, fitted to the published table
#: sizes (REAL-Tier1-A 531,489 → SYN1 764,847 → SYN2 885,645).
SYN1_FRACTION = 0.83
SYN2_FRACTION = 0.44


def _split(prefix: Prefix, extra_bits: int) -> List[Prefix]:
    """All 2^extra_bits children of ``prefix`` that many levels down."""
    out = [prefix]
    for _ in range(extra_bits):
        out = [child for p in out for child in (p.child(0), p.child(1))]
    return out


def _expand(
    rib: Rib,
    policy: Callable[[int], Tuple[int, int]],
    fraction: float,
    seed: int,
) -> Rib:
    """Split each route per ``policy(length) -> (extra_bits, length_cap)``.

    Routes a seeded coin leaves unsplit (or whose policy yields zero extra
    bits) are copied through unchanged.
    """
    rng = random.Random(seed)
    stride = max((idx for _, idx in rib.routes()), default=0)
    out = Rib(width=rib.width)
    # Pass 1: place every unsplit route first, so split pieces can never
    # displace an original (a piece landing on an occupied slot is skipped).
    to_split: List[Tuple[Prefix, int, int]] = []
    for prefix, nexthop in rib.routes():
        extra, cap = policy(prefix.length)
        extra = min(extra, cap - prefix.length, rib.width - prefix.length)
        if extra <= 0 or rng.random() >= fraction:
            out.insert(prefix, nexthop)
        else:
            to_split.append((prefix, nexthop, extra))
    # Pass 2: split pieces, skipping slots originals already own.
    for prefix, nexthop, extra in to_split:
        for i, piece in enumerate(_split(prefix, extra)):
            if out.get(piece):
                continue
            out.insert(piece, nexthop + i * stride)
    return out


def expand_syn1(rib: Rib, fraction: float = SYN1_FRACTION, seed: int = 1) -> Rib:
    """SYN1: ≤ /16 → four prefixes; /17–/24 → two; nothing beyond /24."""

    def policy(length: int) -> Tuple[int, int]:
        if length <= 16:
            return 2, 24
        if length <= 24:
            return 1, 24
        return 0, 32

    return _expand(rib, policy, fraction, seed)


def expand_syn2(rib: Rib, fraction: float = SYN2_FRACTION, seed: int = 2) -> Rib:
    """SYN2: ≤ /16 → eight; /17–/20 → four; /21–/24 → two (reaching /25,
    which is what breaks SAIL's and unmodified DXR's encodings)."""

    def policy(length: int) -> Tuple[int, int]:
        if length <= 16:
            return 3, 24
        if length <= 20:
            return 2, 24
        if length <= 24:
            return 1, 25
        return 0, 32

    return _expand(rib, policy, fraction, seed)
