"""A Knowlton buddy memory allocator.

The paper manages Poptrie's contiguous internal-node and leaf arrays with a
buddy allocator (Section 3, citing Knowlton 1965) because the incremental
update path (Section 3.5) repeatedly allocates and frees variable-length
*contiguous* runs of node slots; the buddy system bounds fragmentation and
makes coalescing O(log n).

This implementation allocates *slots* (array indices), not bytes: the unit
of allocation is one element of whichever array the allocator manages.
Blocks are powers of two, naturally aligned (a block of size ``2^k`` starts
at an offset that is a multiple of ``2^k``), and freeing coalesces with the
buddy block recursively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.robust.faults import fault_point


class OutOfMemory(Exception):
    """Raised when an allocation cannot be satisfied and growth is disabled."""


@dataclass(frozen=True)
class BuddySnapshot:
    """An immutable restore point of a :class:`BuddyAllocator`'s state.

    Captured by :meth:`BuddyAllocator.snapshot` before a transactional
    update and reinstated by :meth:`BuddyAllocator.restore` when the update
    aborts, so a failed update can never leak or double-free blocks.
    """

    order: int
    free_lists: tuple
    live: tuple
    used_slots: int
    alloc_count: int
    free_count: int
    grow_count: int
    high_water: int = 0


def _ceil_log2(n: int) -> int:
    if n <= 1:
        return 0
    return (n - 1).bit_length()


class BuddyAllocator:
    """Buddy allocator over a slot index space of power-of-two capacity.

    >>> a = BuddyAllocator(capacity=16)
    >>> x = a.alloc(3)          # rounds to 4 slots
    >>> y = a.alloc(5)          # rounds to 8 slots
    >>> a.free(x)
    >>> a.free(y)
    >>> a.used_slots
    0
    """

    def __init__(self, capacity: int = 64, auto_grow: bool = True) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._order = _ceil_log2(capacity)
        self.capacity = 1 << self._order
        self.auto_grow = auto_grow
        # free_lists[k] holds offsets of free blocks of size 2^k.
        self._free_lists: List[Set[int]] = [set() for _ in range(self._order + 1)]
        self._free_lists[self._order].add(0)
        # offset -> order of each live allocation.
        self._live: Dict[int, int] = {}
        self.used_slots = 0
        #: Cumulative counters; the update benchmarks report allocator churn.
        self.alloc_count = 0
        self.free_count = 0
        self.grow_count = 0
        #: Peak used_slots ever observed (the high-water mark obs exports).
        self.high_water = 0

    # -- queries -------------------------------------------------------------

    def block_size(self, offset: int) -> int:
        """Slot count of the live block at ``offset``."""
        return 1 << self._live[offset]

    def is_live(self, offset: int) -> bool:
        return offset in self._live

    def live_blocks(self) -> Dict[int, int]:
        """Mapping of offset -> size for all live blocks (copy)."""
        return {off: 1 << order for off, order in self._live.items()}

    def free_slots(self) -> int:
        return self.capacity - self.used_slots

    def largest_free_block(self) -> int:
        """Slot count of the biggest currently-free block (0 when full)."""
        for k in range(self._order, -1, -1):
            if self._free_lists[k]:
                return 1 << k
        return 0

    def fragmentation(self) -> float:
        """External fragmentation in [0, 1]: the fraction of free space
        that cannot be served as one contiguous block.  0 when the free
        space is one block (or there is none)."""
        free = self.free_slots()
        if free <= 0:
            return 0.0
        return 1.0 - self.largest_free_block() / free

    def stats(self) -> Dict[str, float]:
        """The allocator's observability snapshot (see docs/OBSERVABILITY.md)."""
        return {
            "capacity": self.capacity,
            "used_slots": self.used_slots,
            "free_slots": self.free_slots(),
            "high_water": self.high_water,
            "largest_free_block": self.largest_free_block(),
            "fragmentation": self.fragmentation(),
            "allocs": self.alloc_count,
            "frees": self.free_count,
            "grows": self.grow_count,
        }

    def publish_obs(self, pool: str, slot_bytes: int = 1) -> None:
        """Refresh this allocator's gauges in the active metrics registry.

        ``pool`` labels the series (e.g. ``"poptrie.nodes"``);
        ``slot_bytes`` converts slot counts into the exported
        ``repro_allocator_live_bytes`` gauge.  A no-op while
        observability is disabled.
        """
        from repro import obs

        if not obs.enabled():
            return
        reg = obs.registry()
        labels = {"pool": pool}
        gauges = {
            "repro_allocator_capacity_slots": (
                "Managed slot capacity.", self.capacity),
            "repro_allocator_used_slots": (
                "Slots in live blocks.", self.used_slots),
            "repro_allocator_high_water_slots": (
                "Peak used slots.", self.high_water),
            "repro_allocator_fragmentation_ratio": (
                "Free space not servable as one block.", self.fragmentation()),
            "repro_allocator_live_bytes": (
                "Bytes in live blocks.", self.used_slots * slot_bytes),
            "repro_allocator_allocs": (
                "Cumulative alloc() calls.", self.alloc_count),
            "repro_allocator_frees": (
                "Cumulative free() calls.", self.free_count),
            "repro_allocator_grows": (
                "Cumulative capacity doublings.", self.grow_count),
        }
        for name, (help_text, value) in gauges.items():
            reg.gauge(name, help_text, **labels).set(value)

    # -- allocation ------------------------------------------------------------

    def alloc(self, size: int) -> int:
        """Allocate a naturally aligned block of at least ``size`` slots.

        Returns the starting slot offset.  Grows the managed space (doubling)
        when needed and permitted, else raises :class:`OutOfMemory`.
        """
        fault_point("alloc")
        if size <= 0:
            raise ValueError("size must be positive")
        order = _ceil_log2(size)
        while True:
            offset = self._take(order)
            if offset is not None:
                self._live[offset] = order
                self.used_slots += 1 << order
                if self.used_slots > self.high_water:
                    self.high_water = self.used_slots
                self.alloc_count += 1
                return offset
            if not self.auto_grow:
                raise OutOfMemory(f"cannot allocate {size} slots")
            self._grow(max(order, self._order + 1))

    def free(self, offset: int) -> None:
        """Free the block at ``offset``, coalescing with free buddies."""
        order = self._live.pop(offset, None)
        if order is None:
            raise ValueError(f"double free or unknown block at offset {offset}")
        self.used_slots -= 1 << order
        self.free_count += 1
        # Coalesce upward while the buddy is also free.
        while order < self._order:
            buddy = offset ^ (1 << order)
            if buddy not in self._free_lists[order]:
                break
            self._free_lists[order].discard(buddy)
            offset = min(offset, buddy)
            order += 1
        self._free_lists[order].add(offset)

    # -- transactional snapshot/restore --------------------------------------

    def snapshot(self) -> BuddySnapshot:
        """Capture the complete allocator state as a restore point."""
        return BuddySnapshot(
            order=self._order,
            free_lists=tuple(frozenset(blocks) for blocks in self._free_lists),
            live=tuple(self._live.items()),
            used_slots=self.used_slots,
            alloc_count=self.alloc_count,
            free_count=self.free_count,
            grow_count=self.grow_count,
            high_water=self.high_water,
        )

    def restore(self, state: BuddySnapshot) -> None:
        """Reinstate a state captured by :meth:`snapshot`.

        Restores the free lists, the live-block table, the usage counters
        and the managed capacity (a grow performed after the snapshot is
        rolled back; the arrays an owner may have extended to match simply
        stay larger than the capacity, which is harmless).
        """
        self._order = state.order
        self.capacity = 1 << state.order
        self._free_lists = [set(blocks) for blocks in state.free_lists]
        self._live = dict(state.live)
        self.used_slots = state.used_slots
        self.alloc_count = state.alloc_count
        self.free_count = state.free_count
        self.grow_count = state.grow_count
        self.high_water = state.high_water

    # -- internals ---------------------------------------------------------

    def _take(self, order: int) -> int | None:
        """Pop a block of exactly 2^order slots, splitting larger ones."""
        if order > self._order:
            return None
        for k in range(order, self._order + 1):
            if self._free_lists[k]:
                offset = min(self._free_lists[k])
                self._free_lists[k].discard(offset)
                # Split down to the requested order, freeing the high halves.
                while k > order:
                    k -= 1
                    self._free_lists[k].add(offset + (1 << k))
                return offset
        return None

    def _grow(self, new_order: int) -> None:
        """Double the slot space until it reaches ``2^new_order`` slots."""
        while self._order < new_order:
            # The new upper half becomes one free block of the old capacity.
            self._free_lists.append(set())
            self._free_lists[self._order].add(self.capacity)
            self._order += 1
            self.capacity = 1 << self._order
            self.grow_count += 1

    # -- invariant checking (used by the property tests) ----------------------

    def check_invariants(self) -> None:
        """Assert structural invariants; raises AssertionError on violation."""
        seen: List[tuple] = []
        for offset, order in self._live.items():
            size = 1 << order
            assert offset % size == 0, "live block not naturally aligned"
            seen.append((offset, offset + size))
        for k, blocks in enumerate(self._free_lists):
            for offset in blocks:
                size = 1 << k
                assert offset % size == 0, "free block not naturally aligned"
                seen.append((offset, offset + size))
        seen.sort()
        total = 0
        for (start, end), nxt in zip(seen, seen[1:] + [(self.capacity, None)]):
            assert end <= nxt[0], "overlapping blocks"
            total += end - start
        assert total == self.capacity, "lost or duplicated slots"
