"""Memory management substrate.

- :mod:`repro.mem.buddy` — the Knowlton buddy allocator the paper uses to
  manage the contiguous internal-node and leaf arrays ("the contiguous
  arrays of internal and leaf nodes are managed by the buddy memory
  allocator", Section 3).
- :mod:`repro.mem.layout` — a virtual address map that assigns stable
  addresses to each structure's arrays so lookups can emit memory-access
  traces for the cache/cycle simulator (Section 4.6's PMC analysis).
"""

from repro.mem.buddy import BuddyAllocator, OutOfMemory
from repro.mem.layout import MemoryMap, Region

__all__ = ["BuddyAllocator", "OutOfMemory", "MemoryMap", "Region"]
