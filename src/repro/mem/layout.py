"""Virtual address layout for memory-access tracing.

The paper's Section 4.6 analyses per-lookup CPU cycles with hardware
performance counters.  Our substitute (see DESIGN.md) replays each
algorithm's real sequence of memory accesses through a simulated cache
hierarchy.  For that, every array a structure touches needs a stable
*virtual address*, so that two accesses to nearby elements map to the same
cache line exactly as they would in the C implementation.

:class:`MemoryMap` hands out page-aligned regions; a region knows its
element size, so ``region.address(index)`` gives the byte address of an
element, and ``region.access(index)`` returns the ``(address, size)`` pair
the cache simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

PAGE = 4096


@dataclass
class Region:
    """A named, page-aligned array region in the simulated address space."""

    name: str
    base: int
    element_size: int
    length: int

    @property
    def size_bytes(self) -> int:
        return self.element_size * self.length

    def address(self, index: int) -> int:
        """Byte address of element ``index`` (bounds are the caller's job:
        structures may over-allocate via the buddy allocator)."""
        return self.base + index * self.element_size

    def access(self, index: int) -> Tuple[int, int]:
        """``(address, size)`` of a read of element ``index``."""
        return self.base + index * self.element_size, self.element_size


class MemoryMap:
    """Allocates non-overlapping page-aligned regions in a virtual space.

    >>> mm = MemoryMap()
    >>> r = mm.add_region("leaves", element_size=2, length=1000)
    >>> r.base % PAGE == 0
    True
    """

    def __init__(self, base: int = 0x10000) -> None:
        self._next = base
        self.regions: Dict[str, Region] = {}

    def add_region(self, name: str, element_size: int, length: int) -> Region:
        if name in self.regions:
            raise ValueError(f"region {name!r} already mapped")
        region = Region(name, self._next, element_size, max(length, 1))
        self.regions[name] = region
        span = region.size_bytes
        self._next += ((span + PAGE - 1) // PAGE + 1) * PAGE  # guard page
        return region

    def resize_region(self, name: str, length: int) -> Region:
        """Grow a region in place if it still fits before the next region,
        otherwise move it to a fresh range (arrays that doubled)."""
        region = self.regions[name]
        if length <= region.length:
            region.length = length
            return region
        needed = region.base + region.element_size * length
        limit = min(
            (r.base for r in self.regions.values() if r.base > region.base),
            default=self._next,
        )
        if needed <= limit:
            region.length = length
            return region
        del self.regions[name]
        moved = self.add_region(name, region.element_size, length)
        return moved

    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.regions.values())


class AccessTrace:
    """Collects the ordered memory accesses of one lookup.

    Structures append ``(address, size)`` pairs during a traced lookup; the
    cache simulator replays them.  ``instructions`` counts the non-memory
    work (arithmetic, popcount, branches) the structure reports, and
    ``mispredicts`` accumulates the *expected* number of branch
    mispredictions — binary-search comparisons are inherently ~50/50 and
    unpredictable, which is a real, first-order cost of DXR's search stage
    that popcount-indexed structures avoid (the paper attributes DXR's
    deep-lookup penalty to "the binary search stage in DXR", Section 4.6).
    """

    __slots__ = ("accesses", "instructions", "mispredicts")

    def __init__(self) -> None:
        self.accesses: List[Tuple[int, int]] = []
        self.instructions = 0
        self.mispredicts = 0.0

    def read(self, region: Region, index: int) -> None:
        self.accesses.append(region.access(index))

    def work(self, instructions: int) -> None:
        self.instructions += instructions

    def mispredict(self, expected: float) -> None:
        """Record an expected misprediction count for one branch (e.g. 0.5
        for a balanced, unpredictable comparison)."""
        self.mispredicts += expected

    def reset(self) -> None:
        self.accesses.clear()
        self.instructions = 0
        self.mispredicts = 0.0
