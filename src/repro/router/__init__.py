"""A miniature software forwarding plane built on the library's FIBs.

The paper's motivation (Section 1) is NFV-style software routers on
commodity machines, where table lookup has long been the bottleneck.
This package is the example-application substrate: a batch forwarding
loop that classifies packets by destination through any
:class:`~repro.lookup.base.LookupStructure` and dispatches them to egress
ports, with per-port counters and TTL handling.
"""

from repro.router.packet import Packet, synth_packets
from repro.router.forwarding import ForwardingPlane, PortCounters

__all__ = ["Packet", "synth_packets", "ForwardingPlane", "PortCounters"]
