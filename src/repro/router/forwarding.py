"""The forwarding plane: FIB lookup → egress port dispatch.

This is the application the paper is optimising for: every packet costs
one longest-prefix-match.  The plane works with any
:class:`~repro.lookup.base.LookupStructure`, so the examples can swap
Poptrie for a baseline and watch the packet rate move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.lookup.base import LookupStructure
from repro.net.values import NO_ROUTE, Fib
from repro.router.packet import Packet


@dataclass
class PortCounters:
    """Per-egress statistics, like an interface counter block."""

    packets: int = 0
    bytes: int = 0


class ForwardingPlane:
    """Routes packets through a lookup structure to egress ports.

    >>> from repro.net.rib import Rib
    >>> from repro.net.prefix import Prefix
    >>> from repro.net.values import Fib, NextHop
    >>> from repro.core.poptrie import Poptrie
    >>> fib = Fib(); port = fib.intern(NextHop("198.51.100.1", port=2))
    >>> rib = Rib(); _ = rib.insert(Prefix.parse("192.0.2.0/24"), port)
    >>> plane = ForwardingPlane(Poptrie.from_rib(rib), fib)
    >>> plane.forward(Packet(Prefix.parse("192.0.2.9/32").value))
    2
    """

    def __init__(self, structure: LookupStructure, fib: Fib) -> None:
        self.structure = structure
        self.fib = fib
        self.ports: Dict[int, PortCounters] = {}
        self.dropped_no_route = 0
        self.dropped_ttl = 0

    def forward(self, packet: Packet) -> Optional[int]:
        """Forward one packet; returns the egress port or None if dropped."""
        if packet.ttl <= 1:
            self.dropped_ttl += 1
            return None
        index = self.structure.lookup(packet.dst)
        if index == NO_ROUTE:
            self.dropped_no_route += 1
            return None
        port = self.fib[index].port
        counters = self.ports.setdefault(port, PortCounters())
        counters.packets += 1
        counters.bytes += packet.size
        return port

    def forward_batch(self, destinations: np.ndarray, size: int = 64) -> np.ndarray:
        """Forward a batch by destination only (fast path: fixed TTL/size).

        Returns the egress port per packet (-1 for no-route drops)."""
        indices = self.structure.lookup_batch(destinations)
        ports = np.full(len(indices), -1, dtype=np.int64)
        hit = indices != NO_ROUTE
        self.dropped_no_route += int((~hit).sum())
        port_of = np.zeros(len(self.fib) + 1, dtype=np.int64)
        for i in range(1, len(self.fib) + 1):
            port_of[i] = self.fib[i].port
        ports[hit] = port_of[indices[hit]]
        for port in np.unique(ports[hit]):
            counters = self.ports.setdefault(int(port), PortCounters())
            mask = ports == port
            counters.packets += int(mask.sum())
            counters.bytes += int(mask.sum()) * size
        return ports

    def total_forwarded(self) -> int:
        return sum(c.packets for c in self.ports.values())
