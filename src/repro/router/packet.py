"""A minimal IP packet model for the forwarding-plane examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

import numpy as np


@dataclass
class Packet:
    """Just enough of an IP header to route: destination, TTL, size."""

    dst: int
    ttl: int = 64
    size: int = 64  # the wire-rate argument is about minimum-size packets
    src: int = 0

    def decremented(self) -> "Packet":
        return Packet(self.dst, self.ttl - 1, self.size, self.src)


def synth_packets(
    destinations: Iterable[int], ttl: int = 64, size: int = 64
) -> Iterator[Packet]:
    """Wrap a destination-address stream (any generator from
    :mod:`repro.data.traffic`) into packets."""
    for dst in destinations:
        yield Packet(int(dst), ttl=ttl, size=size)


def destinations_array(packets: List[Packet]) -> np.ndarray:
    """Destination column of a packet batch, for the batch lookup path."""
    return np.fromiter((p.dst for p in packets), dtype=np.uint64, count=len(packets))
