"""A batched forwarding pipeline with ring buffers and latency accounting.

Section 2 of the paper argues against GPU-offload lookup engines because
"the large packet batch size is likely to lead to the higher worst case
packet forwarding latency, and jitters".  This module makes that argument
measurable: an rx ring feeds a lookup stage that drains packets in fixed
batches, on a deterministic virtual clock; per-packet latency is the gap
between arrival and batch completion.  Sweeping the batch size trades
throughput (per-batch overhead amortised) against worst-case latency
(early packets wait for the batch to fill) — exactly the §2 trade-off.

Everything is simulated time (microseconds as floats), so results are
deterministic and unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.lookup.base import LookupStructure
from repro.net.values import NO_ROUTE, Fib
from repro.obs.tracing import span


class RingBuffer:
    """A fixed-capacity FIFO with tail-drop, like a NIC descriptor ring.

    Stores ``(arrival_time, destination)`` pairs.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._items: List[Tuple[float, int]] = []
        self.enqueued = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, arrival: float, destination: int) -> bool:
        """Enqueue one packet; False (and a drop) when the ring is full."""
        if len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append((arrival, destination))
        self.enqueued += 1
        return True

    def pop_batch(self, count: int) -> List[Tuple[float, int]]:
        batch = self._items[:count]
        del self._items[:count]
        return batch


@dataclass
class LatencyReport:
    """Per-run latency/throughput summary (microseconds)."""

    packets: int
    dropped: int
    throughput_mpps: float
    mean_latency: float
    p50_latency: float
    p99_latency: float
    max_latency: float
    jitter: float  # standard deviation of latency

    def row(self) -> Tuple:
        return (
            self.packets,
            self.dropped,
            self.throughput_mpps,
            self.mean_latency,
            self.p99_latency,
            self.max_latency,
            self.jitter,
        )


@dataclass
class CostModel:
    """Virtual-time costs of the lookup stage (microseconds).

    ``batch_overhead`` models the fixed kernel/DMA/launch cost the paper's
    GPU discussion is about; ``per_packet`` the lookup itself.
    """

    batch_overhead: float = 2.0
    per_packet: float = 0.01


class ForwardingPipeline:
    """rx ring → batched lookup stage → per-port counters."""

    def __init__(
        self,
        structure: LookupStructure,
        fib: Fib,
        batch_size: int = 32,
        ring_capacity: int = 4096,
        cost: Optional[CostModel] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        self.structure = structure
        self.fib = fib
        self.batch_size = batch_size
        self.rx = RingBuffer(ring_capacity)
        self.cost = cost if cost is not None else CostModel()
        self.port_packets: Dict[int, int] = {}
        self.no_route_drops = 0

    def run(
        self,
        destinations: Sequence[int],
        arrival_interval: float = 0.05,
    ) -> LatencyReport:
        """Feed packets at a fixed arrival rate and drain in batches.

        The stage starts a batch when either a full ``batch_size`` is
        queued or no more packets will arrive (end of input flushes).
        Returns the latency/throughput report.  When observability is
        enabled, per-batch ring occupancy and per-packet latency also
        land in the metrics registry (see docs/OBSERVABILITY.md).
        """
        observing = obs.enabled()
        occupancy_samples: List[int] = []
        batches = 0
        ring_drops_before = self.rx.dropped
        no_route_before = self.no_route_drops
        latencies: List[float] = []
        clock = 0.0
        index = 0
        total = len(destinations)
        arrivals = [i * arrival_interval for i in range(total)]
        done_feeding = total == 0

        with span("pipeline.run"):
            while not done_feeding or len(self.rx):
                # Feed everything that has arrived by `clock`.
                while index < total and arrivals[index] <= clock:
                    self.rx.push(arrivals[index], int(destinations[index]))
                    index += 1
                done_feeding = index >= total

                if len(self.rx) >= self.batch_size or (
                    done_feeding and len(self.rx)
                ):
                    if observing:
                        occupancy_samples.append(len(self.rx))
                    batch = self.rx.pop_batch(self.batch_size)
                    batches += 1
                    start = max(clock, batch[0][0])
                    finish = (
                        start
                        + self.cost.batch_overhead
                        + self.cost.per_packet * len(batch)
                    )
                    self._forward(batch)
                    latencies.extend(finish - arrival for arrival, _ in batch)
                    clock = finish
                elif index < total:
                    # Idle until the next arrival.
                    clock = max(clock, arrivals[index])
                else:
                    break

        if observing:
            self._publish_obs(
                latencies,
                occupancy_samples,
                batches,
                self.rx.dropped - ring_drops_before,
                self.no_route_drops - no_route_before,
            )
        if not latencies:
            return LatencyReport(0, self.rx.dropped, 0.0, 0, 0, 0, 0, 0.0)
        values = np.array(latencies)
        duration = clock if clock > 0 else 1.0
        return LatencyReport(
            packets=len(latencies),
            dropped=self.rx.dropped,
            throughput_mpps=len(latencies) / duration,
            mean_latency=float(values.mean()),
            p50_latency=float(np.percentile(values, 50)),
            p99_latency=float(np.percentile(values, 99)),
            max_latency=float(values.max()),
            jitter=float(values.std()),
        )

    def _publish_obs(
        self,
        latencies: List[float],
        occupancy_samples: List[int],
        batches: int,
        ring_drops: int,
        no_route_drops: int,
    ) -> None:
        """Mirror one run's accounting into the metrics registry."""
        from repro.obs import LATENCY_US_BUCKETS, OCCUPANCY_BUCKETS

        reg = obs.registry()
        reg.counter(
            "repro_pipeline_packets_total",
            "Packets forwarded by the pipeline lookup stage.",
        ).inc(len(latencies))
        reg.counter(
            "repro_pipeline_batches_total",
            "Lookup-stage batches drained from the rx ring.",
        ).inc(batches)
        reg.counter(
            "repro_pipeline_ring_drops_total",
            "Packets tail-dropped by the rx ring.",
        ).inc(ring_drops)
        reg.counter(
            "repro_pipeline_no_route_drops_total",
            "Packets dropped for lack of a matching route.",
        ).inc(no_route_drops)
        occupancy = reg.histogram(
            "repro_pipeline_ring_occupancy",
            "rx ring occupancy sampled at the start of each batch.",
            buckets=OCCUPANCY_BUCKETS,
        )
        for sample in occupancy_samples:
            occupancy.observe(sample)
        latency = reg.histogram(
            "repro_pipeline_latency_us",
            "Per-packet forwarding latency in virtual microseconds.",
            buckets=LATENCY_US_BUCKETS,
        )
        for value in latencies:
            latency.observe(value)
        reg.gauge(
            "repro_pipeline_batch_size",
            "Configured lookup-stage batch size.",
        ).set(self.batch_size)

    def stats(self) -> Dict[str, float]:
        """The pipeline's observability snapshot (see docs/OBSERVABILITY.md)."""
        return {
            "batch_size": self.batch_size,
            "ring_capacity": self.rx.capacity,
            "ring_occupancy": len(self.rx),
            "enqueued": self.rx.enqueued,
            "ring_drops": self.rx.dropped,
            "no_route_drops": self.no_route_drops,
            "ports": len(self.port_packets),
            "forwarded": sum(self.port_packets.values()),
        }

    def _forward(self, batch: List[Tuple[float, int]]) -> None:
        keys = np.fromiter(
            (destination for _, destination in batch),
            dtype=np.uint64,
            count=len(batch),
        )
        for fib_index in self.structure.lookup_batch(keys):
            if fib_index == NO_ROUTE:
                self.no_route_drops += 1
                continue
            port = self.fib[int(fib_index)].port
            self.port_packets[port] = self.port_packets.get(port, 0) + 1


def batch_size_sweep(
    structure: LookupStructure,
    fib: Fib,
    destinations: Sequence[int],
    batch_sizes: Sequence[int] = (1, 8, 32, 128, 512),
    arrival_interval: float = 0.05,
    cost: Optional[CostModel] = None,
) -> List[Tuple[int, LatencyReport]]:
    """The §2 trade-off curve: one report per batch size."""
    results = []
    for batch_size in batch_sizes:
        pipeline = ForwardingPipeline(
            structure, fib, batch_size=batch_size, cost=cost
        )
        results.append(
            (batch_size, pipeline.run(destinations, arrival_interval))
        )
    return results
