"""Poptrie reproduction library.

A production-quality reimplementation of "Poptrie: A Compressed Trie with
Population Count for Fast and Scalable Software IP Routing Table Lookup"
(Asai & Ohara, SIGCOMM 2015), together with every substrate and baseline
its evaluation depends on: the radix-tree RIB, Tree BitMap, DXR, SAIL,
DIR-24-8, a buddy allocator, a cache/cycle simulator, dataset and traffic
synthesis, and a benchmark harness that regenerates every table and
figure of the paper's Section 4.

Quick start::

    from repro import Poptrie, PoptrieConfig, Prefix, Rib

    rib = Rib()
    rib.insert(Prefix.parse("192.0.2.0/24"), 1)
    trie = Poptrie.from_rib(rib, PoptrieConfig(s=18))
    trie.lookup(Prefix.parse("192.0.2.77/32").value)   # -> 1

Any roster structure builds the same way through the algorithm registry::

    from repro.lookup import registry

    structure = registry.get("Poptrie18").from_rib(rib)

See README.md for the architecture overview, DESIGN.md for the system
inventory, docs/API.md for the public surface and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro import obs
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.core.update import UpdatablePoptrie
from repro.errors import (
    ClusterError,
    InjectedFault,
    JournalCorrupt,
    JournalGap,
    PoolError,
    ProtocolError,
    ReproError,
    SnapshotFormatError,
    StructuralLimitError,
    TableFormatError,
    UpdateRejectedError,
    VerificationError,
)
from repro.lookup import registry
from repro.lookup.base import LookupStructure
from repro.net.values import NO_ROUTE, NO_VALUE, Fib, NextHop, ValueTable
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.robust.faults import FaultPlan
from repro.robust.txn import TransactionalPoptrie
from repro.robust.verify import verify_poptrie
from repro.server import LoadGenerator, LookupServer, TableHandle

__version__ = "1.4.0"

# The journal machinery, the multicore data plane and the replication
# cluster are exposed lazily (PEP 562): importing repro must not pay for
# — or depend on — the durability, multiprocessing or clustering stacks
# until they are used.
_LAZY = {
    "Journal": "repro.robust.journal",
    "recover": "repro.robust.journal",
    "RecoveryResult": "repro.robust.journal",
    "JournalTailer": "repro.robust.journal",
    "TableImage": "repro.parallel",
    "WorkerPool": "repro.parallel",
    "PoolConfig": "repro.parallel",
    "ClusterRouter": "repro.cluster",
    "Replica": "repro.cluster",
    "ReplicationPublisher": "repro.cluster",
    "ShardMap": "repro.cluster",
    "build_shard_map": "repro.cluster",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "Poptrie",
    "PoptrieConfig",
    "LookupStructure",
    "registry",
    "obs",
    "UpdatablePoptrie",
    "TransactionalPoptrie",
    "FaultPlan",
    "verify_poptrie",
    # durability (lazy — see __getattr__)
    "Journal",
    "recover",
    "RecoveryResult",
    "JournalTailer",
    # the multicore data plane (lazy — see __getattr__)
    "TableImage",
    "WorkerPool",
    "PoolConfig",
    # the route-lookup service
    "LookupServer",
    "TableHandle",
    "LoadGenerator",
    # the replicated lookup cluster (lazy — see __getattr__)
    "ClusterRouter",
    "Replica",
    "ReplicationPublisher",
    "ShardMap",
    "build_shard_map",
    "ReproError",
    "PoolError",
    "StructuralLimitError",
    "TableFormatError",
    "SnapshotFormatError",
    "UpdateRejectedError",
    "VerificationError",
    "InjectedFault",
    "JournalCorrupt",
    "JournalGap",
    "ClusterError",
    "ProtocolError",
    "NO_ROUTE",
    "NO_VALUE",
    "Fib",
    "NextHop",
    "ValueTable",
    "Prefix",
    "Rib",
    "__version__",
]
