"""Library-wide exception types."""


class ReproError(Exception):
    """Base class for all library errors."""


class StructuralLimitError(ReproError):
    """A data structure's encoding limit was exceeded.

    Section 4.8 of the paper turns on exactly these limits: SAIL cannot
    encode more than 2^15 chunk identifiers in a 15-bit BCN field, DXR
    supports at most 2^19 address ranges (2^20 when "modified"), and a
    Poptrie with 16-bit leaves supports at most 2^16 FIB entries.  Raising a
    dedicated error lets the scalability benchmark report "N/A" for the
    structures that cannot hold a table, as Table 5 does.
    """
