"""Library-wide exception taxonomy.

Every error this library raises deliberately derives from
:class:`ReproError`, so callers can fence off the whole reproduction with
one ``except ReproError`` while still matching precise categories:

====================== =====================================================
:class:`StructuralLimitError`  a data structure's encoding limit was exceeded
:class:`TableFormatError`      a text routing-table snapshot is malformed
:class:`SnapshotFormatError`   a binary FIB snapshot is malformed/truncated
:class:`UpdateRejectedError`   a route update was refused before any mutation
:class:`VerificationError`     an invariant check against the shadow RIB failed
:class:`InjectedFault`         a deliberately injected test fault fired
:class:`ProtocolError`         a lookup-service wire frame is malformed
:class:`JournalCorrupt`        a route-update journal segment is corrupt
                               beyond the recoverable torn tail
:class:`PoolError`             the shared-memory worker pool lost so many
                               workers it can no longer answer
:class:`ReplaceCostExceeded`   incremental replacement cost crossed the
                               configured threshold (internal control flow:
                               the transactional layer catches it and falls
                               back to a full rebuild)
====================== =====================================================

:class:`TableFormatError` and :class:`SnapshotFormatError` also derive from
:class:`ValueError` so pre-taxonomy callers that caught ``ValueError`` keep
working.  Each class documents its trigger with a runnable example.
"""


class ReproError(Exception):
    """Base class for all library errors."""


class StructuralLimitError(ReproError):
    """A data structure's encoding limit was exceeded.

    Section 4.8 of the paper turns on exactly these limits: SAIL cannot
    encode more than 2^15 chunk identifiers in a 15-bit BCN field, DXR
    supports at most 2^19 address ranges (2^20 when "modified"), and a
    Poptrie with 16-bit leaves supports at most 2^16 FIB entries.  Raising a
    dedicated error lets the scalability benchmark report "N/A" for the
    structures that cannot hold a table, as Table 5 does.

    >>> from repro.core.poptrie import Poptrie
    >>> from repro.net.rib import Rib
    >>> Poptrie.from_rib(Rib(), fib_size=1 << 20)
    Traceback (most recent call last):
        ...
    repro.errors.StructuralLimitError: 1048576 FIB entries exceed 16-bit leaves
    """


class TableFormatError(ReproError, ValueError):
    """A routing-table snapshot could not be parsed.

    Raised by :func:`repro.data.tableio.load_table` for missing/bad headers,
    malformed route lines, out-of-range FIB indices, address-family
    mismatches and corrupt binary rib images.  ``line`` carries the 1-based
    line number of the offending input (``None`` for whole-file problems).

    >>> import io
    >>> from repro.data.tableio import load_table
    >>> load_table(io.StringIO(
    ...     "# repro-table v1 width=32\\n10.0.0.0/8 not-a-number\\n"))
    Traceback (most recent call last):
        ...
    repro.errors.TableFormatError: line 2: bad FIB index 'not-a-number'
    >>> try:
    ...     load_table(io.StringIO("# repro-table v1 width=32\\n10.0.0.0/8 0\\n"))
    ... except TableFormatError as error:
    ...     error.line
    2
    """

    def __init__(self, message: str, line: "int | None" = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        #: 1-based line number of the offending input line, or ``None``.
        self.line = line


class SnapshotFormatError(ReproError, ValueError):
    """A binary FIB snapshot is not loadable (truncated, corrupted, bad
    magic, CRC mismatch, or structurally invalid after decode).

    :data:`repro.core.serialize.CorruptSnapshot` is an alias of this class,
    kept for callers written before the taxonomy existed.

    >>> from repro.parallel.image import structure_from_bytes
    >>> structure_from_bytes(b"POPTRIE1 but truncated")
    Traceback (most recent call last):
        ...
    repro.errors.SnapshotFormatError: snapshot truncated
    """


class UpdateRejectedError(ReproError):
    """A route update was refused before mutating any state.

    The update path validates announcements and withdrawals *first* —
    withdrawing a prefix that is not in the RIB, announcing a next-hop
    index that is negative, zero (the NO_ROUTE sentinel) or too wide for
    the configured leaf size — so a bad BGP message can never leave the
    RIB and the compiled trie divergent.

    >>> from repro.core.update import UpdatablePoptrie
    >>> from repro.net.prefix import Prefix
    >>> up = UpdatablePoptrie()
    >>> up.withdraw(Prefix.parse("10.0.0.0/8"))
    Traceback (most recent call last):
        ...
    repro.errors.UpdateRejectedError: cannot withdraw 10.0.0.0/8: not in the RIB
    >>> up.announce(Prefix.parse("10.0.0.0/8"), 1 << 20)
    Traceback (most recent call last):
        ...
    repro.errors.UpdateRejectedError: next-hop index 1048576 outside 1..65535
    >>> up.generation          # nothing was mutated by either rejection
    0
    """


class VerificationError(ReproError):
    """An invariant self-check of a compiled structure failed.

    Raised by :func:`repro.robust.verify.verify_poptrie` (also reachable as
    ``Poptrie.verify``) with a diagnostic naming the violated invariant.

    >>> from repro.core.poptrie import Poptrie, PoptrieConfig
    >>> from repro.net.prefix import Prefix
    >>> from repro.net.rib import Rib
    >>> rib = Rib()
    >>> rib.insert(Prefix.parse("10.0.0.0/8"), 1)
    0
    >>> trie = Poptrie.from_rib(rib, PoptrieConfig(s=0))
    >>> trie.lvec[trie.root_index] = 0           # corrupt the leaf vector
    >>> trie.verify(rib)
    Traceback (most recent call last):
        ...
    repro.errors.VerificationError: node 0: leaf slot 0 has no leafvec run start
    """


class InjectedFault(ReproError):
    """A deliberately injected fault fired (testing only).

    Raised at the injection points a :class:`repro.robust.faults.FaultPlan`
    arms — never during normal operation.

    >>> from repro.mem.buddy import BuddyAllocator
    >>> from repro.robust.faults import FaultPlan
    >>> with FaultPlan(alloc_fail_at=2):
    ...     allocator = BuddyAllocator(capacity=16)
    ...     first = allocator.alloc(1)
    ...     second = allocator.alloc(1)
    Traceback (most recent call last):
        ...
    repro.errors.InjectedFault: injected fault at alloc #2
    """


class ProtocolError(ReproError, ValueError):
    """A lookup-service wire frame could not be parsed.

    Raised by :mod:`repro.server.protocol` for truncated frames,
    oversized length prefixes, unknown opcodes and version mismatches.
    Deriving from ``ValueError`` keeps it catchable alongside the other
    format errors.

    >>> from repro.server import protocol
    >>> protocol.decode_request(b"\\x00")
    Traceback (most recent call last):
        ...
    repro.errors.ProtocolError: request header truncated (1 bytes)
    """


class JournalCorrupt(ReproError, ValueError):
    """A route-update journal is corrupt beyond the recoverable torn tail.

    Replay (:func:`repro.robust.journal.recover`) tolerates exactly one
    kind of damage: an *incomplete* final record in the newest segment —
    the signature of a crash mid-append — which is discarded and counted.
    Anything else (a CRC mismatch on a complete record, a mangled segment
    header, an impossible record length, damage in a non-final segment)
    means the update history can no longer be trusted, and replay stops
    with this error rather than rebuilding a silently wrong table.

    >>> import os, tempfile
    >>> from repro.robust.journal import Journal, recover
    >>> from repro.data.updates import Update
    >>> from repro.net.prefix import Prefix
    >>> d = tempfile.mkdtemp()
    >>> j = Journal(d)
    >>> _ = j.append(Update("A", Prefix.parse("10.0.0.0/8"), 1))
    >>> _ = j.append(Update("A", Prefix.parse("10.64.0.0/10"), 2))
    >>> j.close()
    >>> seg = os.path.join(d, sorted(os.listdir(d))[0])
    >>> blob = bytearray(open(seg, "rb").read())
    >>> blob[20] ^= 0xFF                    # flip a byte mid-segment
    >>> with open(seg, "wb") as f: _ = f.write(blob)
    >>> recover(d)
    Traceback (most recent call last):
        ...
    repro.errors.JournalCorrupt: ...
    """


class JournalGap(ReproError):
    """A journal tail reader fell behind the checkpoint truncation horizon.

    Raised by :class:`repro.robust.journal.JournalTailer` when the records
    after its watermark are no longer on disk — the writer checkpointed and
    truncated the segments the reader had not consumed yet.  This is *not*
    corruption: the journal is healthy, the reader is just too far behind
    to be served incrementally and must re-synchronise from the checkpoint
    (``resync_seqno`` names the checkpoint sequence number to restart
    from).  The replication publisher answers it by shipping a fresh
    checkpoint frame instead of a record stream.
    """

    def __init__(self, message: str, resync_seqno: int = 0) -> None:
        super().__init__(message)
        #: Sequence number of the checkpoint to re-synchronise from.
        self.resync_seqno = resync_seqno


class ClusterError(ReproError, RuntimeError):
    """A cluster operation could not be completed.

    Raised by the replication/failover plane (:mod:`repro.cluster`) for
    conditions the retry machinery cannot paper over: every endpoint of a
    shard is unreachable after the retry budget, a promotion was refused
    because the replica's applied sequence number is stale, a replication
    frame stream is malformed, or a shard map does not cover the address
    space.  Deriving from ``RuntimeError`` keeps it catchable by generic
    service wrappers, like :class:`PoolError`.
    """


class PoolError(ReproError, RuntimeError):
    """The shared-memory worker pool can no longer answer lookups.

    :class:`repro.parallel.WorkerPool` transparently respawns workers
    that die (even from ``SIGKILL``) and re-dispatches their shards, so
    a single crash never surfaces to callers.  This error is the escape
    hatch for the pathological cases: a worker that dies repeatedly
    faster than the restart budget allows (``PoolConfig.restart_limit``),
    a batch that exceeds ``PoolConfig.batch_timeout`` with all workers
    alive, or use of a pool after :meth:`~repro.parallel.WorkerPool.close`.
    Deriving from ``RuntimeError`` keeps it catchable by generic service
    wrappers.
    """


class ReplaceCostExceeded(ReproError):
    """An incremental update would replace more nodes than the configured
    ``rebuild_threshold`` allows.

    Internal control flow for graceful degradation: the transactional layer
    (:class:`repro.robust.txn.TransactionalPoptrie`) catches it, rolls the
    partial work back and performs a full ``Poptrie.from_rib`` rebuild
    instead.  It only ever escapes to callers who set a threshold on a bare
    :class:`~repro.core.update.UpdatablePoptrie` without the transactional
    wrapper, which is unsupported.
    """
