"""Binary serialization of compiled Poptries (legacy surface).

A router restarting should not have to recompile its FIB from the RIB if
nothing changed; routers also ship compiled FIBs from a control plane to
line cards.

.. deprecated::
    The blessed persistence surface is now the zero-copy image API:
    ``structure.to_image()`` / :func:`repro.parallel.image.save_structure`
    / :func:`repro.parallel.image.load_structure` (see docs/PARALLEL.md).
    This module's historical entry points — ``save``, ``load``,
    ``dump_bytes``, ``load_bytes`` — still resolve (to the image-based
    implementations) through a PEP 562 shim that emits a
    ``DeprecationWarning``.  Snapshots are therefore written in the
    ``RPIMG001`` image format; the legacy ``POPTRIE1`` format documented
    below is still *read* transparently by ``load``/``load_bytes``.

Legacy ``POPTRIE1`` format (little-endian):

    magic   8 bytes   b"POPTRIE1"
    header  u32 × 8   k, s, use_leafvec, leaf_bits, width,
                      node_count, leaf_count, root_index
    nodes   node_count × (vec u64, lvec u64, base0 u32, base1 u32)
    leaves  leaf_count × (u16 | u32)
    direct  2^s × u32 (when s > 0)
    crc32   u32 over everything above

Serialized tries are *compacted* in both formats: the node/leaf arrays
are written out in live-block order and indices are remapped
(:func:`_compact_state`), so a trie that went through heavy incremental
updating (buddy fragmentation) deserializes into the tight layout a
fresh compile would produce.
"""

from __future__ import annotations

import struct
import warnings
import zlib
from array import array
from typing import Dict, Tuple

from repro.core.poptrie import DIRECT_LEAF, Poptrie, PoptrieConfig
from repro.errors import SnapshotFormatError

MAGIC = b"POPTRIE1"
_HEADER = struct.Struct("<8I")

#: Historical name for :class:`repro.errors.SnapshotFormatError` — the blob
#: is not a valid Poptrie snapshot (truncated, bad magic, CRC, bounds).
CorruptSnapshot = SnapshotFormatError


def _remap(trie: Poptrie) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Old-index → compact-index maps for reachable nodes and leaves."""
    node_map: Dict[int, int] = {}
    leaf_map: Dict[int, int] = {}
    k_slots = 1 << trie.k

    order = []
    roots = (
        [entry for entry in trie.direct if not entry & DIRECT_LEAF]
        if trie.s
        else [trie.root_index]
    )
    stack = list(dict.fromkeys(roots))
    seen = set(stack)
    while stack:
        index = stack.pop()
        order.append(index)
        vector = trie.vec[index]
        base1 = trie.base1[index]
        for rank in range(vector.bit_count()):
            child = base1 + rank
            if child not in seen:
                seen.add(child)
                stack.append(child)

    # Nodes first: keep each node's children contiguous by assigning child
    # blocks as whole runs.
    for index in order:
        node_map.setdefault(index, len(node_map))
        vector = trie.vec[index]
        count = vector.bit_count()
        if count:
            base1 = trie.base1[index]
            for rank in range(count):
                node_map.setdefault(base1 + rank, len(node_map))
    for index in order:
        if trie.config.use_leafvec:
            leaf_count = trie.lvec[index].bit_count()
        else:
            leaf_count = k_slots - trie.vec[index].bit_count()
        base0 = trie.base0[index]
        for offset in range(leaf_count):
            leaf_map.setdefault(base0 + offset, len(leaf_map))
    return node_map, leaf_map


def _compact_state(trie: Poptrie) -> Tuple[int, int, int, Dict[str, array]]:
    """Compacted copies of a trie's live arrays, in live-block order.

    Shared by the legacy ``POPTRIE1`` writer and
    ``Poptrie._image_state``: indices are remapped so a fragmented trie
    serializes into the tight layout a fresh compile would produce.
    Returns ``(node_count, leaf_count, root_index, arrays)`` with
    ``arrays`` keyed ``vec``/``lvec``/``base0``/``base1``/``leaves``/
    ``direct``.
    """
    node_map, leaf_map = _remap(trie)
    node_count = len(node_map)
    leaf_count = len(leaf_map)

    vec = array("Q", bytes(8 * node_count))
    lvec = array("Q", bytes(8 * node_count))
    base0 = array("I", bytes(4 * node_count))
    base1 = array("I", bytes(4 * node_count))
    leaf_code = "H" if trie.config.leaf_bits == 16 else "I"
    leaves = array(leaf_code, bytes(trie.config.leaf_bytes * max(leaf_count, 1)))
    if leaf_count == 0:
        leaves = array(leaf_code)
    for old, new in node_map.items():
        vec[new] = trie.vec[old]
        lvec[new] = trie.lvec[old]
        old_children = trie.vec[old].bit_count()
        base1[new] = node_map[trie.base1[old]] if old_children else 0
        if trie.config.use_leafvec:
            old_leaves = trie.lvec[old].bit_count()
        else:
            old_leaves = (1 << trie.k) - old_children
        base0[new] = leaf_map[trie.base0[old]] if old_leaves else 0
    for old, new in leaf_map.items():
        leaves[new] = trie.leaves[old]

    direct = array("I")
    if trie.s:
        direct = array("I", bytes(4 << trie.s))
        for i, entry in enumerate(trie.direct):
            direct[i] = entry if entry & DIRECT_LEAF else node_map[entry]

    root = node_map.get(trie.root_index, 0) if not trie.s else 0
    arrays = {
        "vec": vec,
        "lvec": lvec,
        "base0": base0,
        "base1": base1,
        "leaves": leaves,
        "direct": direct,
    }
    return node_count, leaf_count, root, arrays


def _dump_bytes_v1(trie: Poptrie) -> bytes:
    """Freeze ``trie`` to a legacy ``POPTRIE1`` snapshot (tests only —
    the writing surface is the image API)."""
    node_count, leaf_count, root, arrays = _compact_state(trie)
    header = _HEADER.pack(
        trie.k,
        trie.s,
        1 if trie.config.use_leafvec else 0,
        trie.config.leaf_bits,
        trie.width,
        node_count,
        leaf_count,
        root,
    )
    body = (
        MAGIC
        + header
        + arrays["vec"].tobytes()
        + arrays["lvec"].tobytes()
        + arrays["base0"].tobytes()
        + arrays["base1"].tobytes()
        + arrays["leaves"].tobytes()
        + arrays["direct"].tobytes()
    )
    return body + struct.pack("<I", zlib.crc32(body))


def _load_bytes_v1(blob: bytes) -> Poptrie:
    """Thaw a legacy ``POPTRIE1`` snapshot."""
    if len(blob) < len(MAGIC) + _HEADER.size + 4:
        raise CorruptSnapshot("snapshot truncated")
    if blob[: len(MAGIC)] != MAGIC:
        raise CorruptSnapshot("bad magic")
    (crc,) = struct.unpack("<I", blob[-4:])
    if zlib.crc32(blob[:-4]) != crc:
        raise CorruptSnapshot("CRC mismatch")

    offset = len(MAGIC)
    k, s, use_leafvec, leaf_bits, width, node_count, leaf_count, root = (
        _HEADER.unpack_from(blob, offset)
    )
    offset += _HEADER.size
    try:
        config = PoptrieConfig(
            k=k, s=s, use_leafvec=bool(use_leafvec), leaf_bits=leaf_bits
        )
        trie = Poptrie(config, width=width)
    except ValueError as error:
        raise CorruptSnapshot(f"invalid snapshot header: {error}") from error

    def take(code: str, count: int) -> array:
        nonlocal offset
        out = array(code)
        nbytes = out.itemsize * count
        out.frombytes(blob[offset : offset + nbytes])
        if len(out) != count:
            raise CorruptSnapshot("snapshot truncated in arrays")
        offset += nbytes
        return out

    vec = take("Q", node_count)
    lvec = take("Q", node_count)
    base0 = take("I", node_count)
    base1 = take("I", node_count)
    leaves = take("H" if leaf_bits == 16 else "I", leaf_count)
    direct = take("I", (1 << s) if s else 0)

    # Pre-size the allocators so the first allocation starts at offset 0
    # (growing a small allocator would otherwise place the block higher).
    from repro.mem.buddy import BuddyAllocator

    trie.node_alloc = BuddyAllocator(capacity=max(64, node_count))
    trie.leaf_alloc = BuddyAllocator(capacity=max(64, leaf_count))
    if node_count:
        base = trie.alloc_nodes(node_count)
        assert base == 0, "fresh trie must allocate from offset zero"
        trie.vec[:node_count] = vec
        trie.lvec[:node_count] = lvec
        trie.base0[:node_count] = base0
        trie.base1[:node_count] = base1
    if leaf_count:
        leaf_base = trie.alloc_leaves(leaf_count)
        assert leaf_base == 0
        trie.leaves[:leaf_count] = leaves
    if s:
        trie.direct[:] = direct
    else:
        trie.root_index = root

    validate(trie)
    return trie


#: Historical entry points and their image-API replacements.  They
#: resolve through :func:`__getattr__` (PEP 562) with a
#: ``DeprecationWarning`` to the equivalent functions of
#: :mod:`repro.parallel.image`, which write the ``RPIMG001`` image
#: format and read both formats.
_MOVED = {
    "save": "save_structure",
    "load": "load_structure",
    "dump_bytes": "structure_to_bytes",
    "load_bytes": "structure_from_bytes",
}


def __getattr__(name: str):
    target = _MOVED.get(name)
    if target is not None:
        warnings.warn(
            f"repro.core.serialize.{name} is deprecated; use "
            f"repro.parallel.image.{target} (the to_image()/from_image() "
            "persistence surface)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.parallel import image

        return getattr(image, target)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_MOVED))


def validate(trie: Poptrie) -> None:
    """Structural self-check; raises :class:`CorruptSnapshot` on violation.

    Verifies that every reachable node/leaf index is in bounds, that
    leafvec runs are well-formed (every leaf slot has a run start at or
    below it — Algorithm 2 never underflows), and that direct entries
    point at sane targets.
    """
    node_limit = len(trie.vec)
    leaf_limit = len(trie.leaves)
    k_slots = 1 << trie.k

    roots = (
        [entry for entry in trie.direct if not entry & DIRECT_LEAF]
        if trie.s
        else [trie.root_index]
    )
    seen = set()
    stack = list(dict.fromkeys(roots))
    while stack:
        index = stack.pop()
        if index in seen:
            continue
        seen.add(index)
        if index >= node_limit:
            raise CorruptSnapshot(f"node index {index} out of bounds")
        vector = trie.vec[index]
        leafvec = trie.lvec[index]
        children = vector.bit_count()
        if children:
            if trie.base1[index] + children > node_limit:
                raise CorruptSnapshot(f"child block of node {index} overflows")
            stack.extend(trie.base1[index] + i for i in range(children))
        if trie.config.use_leafvec:
            leaf_count = leafvec.bit_count()
            for v in range(k_slots):
                if not (vector >> v) & 1 and not leafvec & ((2 << v) - 1):
                    raise CorruptSnapshot(
                        f"node {index}: leaf slot {v} has no run start"
                    )
        else:
            leaf_count = k_slots - children
        if leaf_count and trie.base0[index] + leaf_count > leaf_limit:
            raise CorruptSnapshot(f"leaf block of node {index} overflows")
