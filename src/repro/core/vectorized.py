"""Numpy batch-lookup engines.

CPython cannot reach the paper's hundreds of millions of lookups per
second one call at a time, but the *relative* throughput of the algorithms
— which is what Figures 9/12 and Tables 3/5 compare — is preserved when
each algorithm processes query batches with numpy: the work per lookup
(array reads, popcounts, binary-search steps) maps one-to-one onto
vectorised operations.  The benchmark harness measures both the scalar and
the batch engines and reports them separately.

This module hosts the Poptrie batch engine and the popcount helper shared
by the baselines' batch engines.
"""

from __future__ import annotations

import numpy as np

from repro.core.poptrie import DIRECT_LEAF, Poptrie

#: Byte-wise popcount table.
_POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

_FULL64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def popcount64(values: np.ndarray) -> np.ndarray:
    """Population count of each element of a uint64 array."""
    as_bytes = values.view(np.uint8).reshape(values.shape + (8,))
    return _POP8[as_bytes].sum(axis=-1, dtype=np.int64)


def low_bits_mask(v: np.ndarray) -> np.ndarray:
    """``(2 << v) - 1`` as uint64 without overflowing at ``v == 63``."""
    return _FULL64 >> (np.uint64(63) - v.astype(np.uint64))


def split_v6(keys) -> "tuple[np.ndarray, np.ndarray]":
    """Split 128-bit integer addresses into (hi, lo) uint64 columns."""
    hi = np.fromiter((key >> 64 for key in keys), dtype=np.uint64,
                     count=len(keys))
    lo = np.fromiter((key & 0xFFFFFFFFFFFFFFFF for key in keys),
                     dtype=np.uint64, count=len(keys))
    return hi, lo


def _v6_chunk_matrix(trie: Poptrie, hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Precompute every 6-bit chunk value of each 128-bit key.

    Column ``i`` holds the chunk at offset ``s + k*i``; offsets past bit
    128 read as zero (Algorithm 1's padding).  All numpy shifts, no
    per-key Python arithmetic.
    """
    k = trie.k
    offsets = list(range(trie.s, trie._padded_width, k))
    chunks = np.zeros((len(hi), len(offsets)), dtype=np.uint64)
    kmask = np.uint64((1 << k) - 1)
    for column, offset in enumerate(offsets):
        end = offset + k
        if end <= 64:
            value = (hi >> np.uint64(64 - end)) & kmask
        elif offset >= 64:
            if offset >= 128:
                continue  # fully padded: zeros
            if end <= 128:
                value = (lo >> np.uint64(128 - end)) & kmask
            else:  # overruns bit 128: real bits shifted up, zero-padded
                avail = 128 - offset
                value = (lo & np.uint64((1 << avail) - 1)) << np.uint64(
                    end - 128
                )
        else:  # straddles the hi/lo boundary
            take_hi = 64 - offset
            take_lo = end - 64
            value = (
                (hi & np.uint64((1 << take_hi) - 1)) << np.uint64(take_lo)
            ) | (lo >> np.uint64(64 - take_lo))
        chunks[:, column] = value
    return chunks


def poptrie_lookup_batch_v6(trie: Poptrie, keys) -> np.ndarray:
    """Batch lookup for IPv6 Poptries (width 128, ``s`` ≤ 64).

    ``keys`` is a sequence of 128-bit integers; equivalent to per-key
    :meth:`Poptrie.lookup` (verified by the equivalence tests).
    """
    if trie.width != 128:
        raise ValueError("poptrie_lookup_batch_v6 requires a width-128 trie")
    if trie.s > 64:
        raise ValueError("direct pointing beyond 64 bits is not supported")
    hi, lo = split_v6(keys)
    n = len(hi)
    result = np.zeros(n, dtype=np.uint32)
    if n == 0:
        return result

    vec = np.frombuffer(trie.vec, dtype=np.uint64)
    lvec = np.frombuffer(trie.lvec, dtype=np.uint64)
    base0 = np.frombuffer(trie.base0, dtype=np.uint32)
    base1 = np.frombuffer(trie.base1, dtype=np.uint32)
    leaves = np.frombuffer(
        trie.leaves, dtype=np.uint16 if trie.config.leaf_bits == 16 else np.uint32
    )
    chunks = _v6_chunk_matrix(trie, hi, lo)

    if trie.s:
        direct = np.frombuffer(trie.direct, dtype=np.uint32)
        entries = direct[(hi >> np.uint64(64 - trie.s)).astype(np.int64)]
        is_leaf = (entries & np.uint32(DIRECT_LEAF)) != 0
        result[is_leaf] = entries[is_leaf] & np.uint32(DIRECT_LEAF - 1)
        active = np.flatnonzero(~is_leaf)
        index = entries[active].astype(np.int64)
    else:
        active = np.arange(n, dtype=np.int64)
        index = np.full(n, trie.root_index, dtype=np.int64)

    use_leafvec = trie.config.use_leafvec
    level = 0
    while active.size:
        v = chunks[active, level]
        vectors = vec[index]
        descend = ((vectors >> v) & np.uint64(1)) != 0
        mask = low_bits_mask(v)
        if not descend.all():
            done = ~descend
            done_index = index[done]
            if use_leafvec:
                bc = popcount64(lvec[done_index] & mask[done])
            else:
                bc = popcount64(~vectors[done] & mask[done])
            leaf_index = base0[done_index].astype(np.int64) + bc - 1
            result[active[done]] = leaves[leaf_index]
        if descend.any():
            going = descend
            bc = popcount64(vectors[going] & mask[going])
            index = base1[index[going]].astype(np.int64) + bc - 1
            active = active[going]
        else:
            break
        level += 1
    return result


def poptrie_lookup_batch(trie: Poptrie, keys: np.ndarray) -> np.ndarray:
    """Look up a batch of IPv4 keys; returns FIB indices (uint32).

    Semantically identical to calling :meth:`Poptrie.lookup` per key (the
    equivalence tests verify this); the loop below advances all still-active
    queries one trie level per iteration.
    """
    if trie.width != 32:
        raise ValueError("the batch engine supports IPv4 (width 32) keys")
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    n = len(keys)
    result = np.zeros(n, dtype=np.uint32)
    if n == 0:
        return result

    vec = np.frombuffer(trie.vec, dtype=np.uint64)
    lvec = np.frombuffer(trie.lvec, dtype=np.uint64)
    base0 = np.frombuffer(trie.base0, dtype=np.uint32)
    base1 = np.frombuffer(trie.base1, dtype=np.uint32)
    leaves = np.frombuffer(
        trie.leaves, dtype=np.uint16 if trie.config.leaf_bits == 16 else np.uint32
    )
    k = np.uint64(trie.k)
    kmask = np.uint64(trie._kmask)

    if trie.s:
        direct = np.frombuffer(trie.direct, dtype=np.uint32)
        entries = direct[(keys >> np.uint64(trie.width - trie.s)).astype(np.int64)]
        is_leaf = (entries & np.uint32(DIRECT_LEAF)) != 0
        result[is_leaf] = entries[is_leaf] & np.uint32(DIRECT_LEAF - 1)
        active = np.flatnonzero(~is_leaf)
        index = entries[active].astype(np.int64)
        shift = np.uint64(trie._padded_width - trie.k - trie.s)
    else:
        active = np.arange(n, dtype=np.int64)
        index = np.full(n, trie.root_index, dtype=np.int64)
        shift = np.uint64(trie._padded_width - trie.k)

    keyp = keys << np.uint64(trie._pad)
    use_leafvec = trie.config.use_leafvec

    while active.size:
        v = (keyp[active] >> shift) & kmask
        vectors = vec[index]
        descend = ((vectors >> v) & np.uint64(1)) != 0
        mask = low_bits_mask(v)
        if not descend.all():
            done = ~descend
            done_index = index[done]
            if use_leafvec:
                bc = popcount64(lvec[done_index] & mask[done])
            else:
                # ~vector sets garbage bits above 2^k, but the low-bits mask
                # never reaches past bit v < 2^k, so they cannot leak in.
                bc = popcount64(~vectors[done] & mask[done])
            leaf_index = base0[done_index].astype(np.int64) + bc - 1
            result[active[done]] = leaves[leaf_index]
        if descend.any():
            going = descend
            bc = popcount64(vectors[going] & mask[going])
            index = base1[index[going]].astype(np.int64) + bc - 1
            active = active[going]
        else:
            break
        shift -= k
    return result
