"""Compilation of a radix-tree RIB into Poptrie nodes.

The build runs in two phases, mirroring what the paper's C implementation
does in one pass but keeping the logic testable in isolation:

1. **Expansion** (:func:`expand_node`): controlled prefix expansion of the
   binary radix tree into temporary 2^k-ary nodes.  Each temporary node
   records its ``vector`` (bit v set ⇔ slot v has a descendant internal
   node, Section 3.1), its ``leafvec`` and compressed leaf list
   (Section 3.3), and its child list.

2. **Serialization** (:class:`Serializer`): lays the temporary nodes out in
   the contiguous internal-node and leaf arrays.  Children of one node are
   placed in one contiguous block (that is what makes ``base1 + popcount``
   indexing work), allocated from the buddy allocator so the incremental
   update path can later free and reallocate subtrees.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.net.fib import NO_ROUTE
from repro.net.rib import RibNode
from repro.robust.faults import fault_point


class TmpNode:
    """A poptrie internal node before serialization."""

    __slots__ = ("vector", "leafvec", "leaves", "children")

    def __init__(self) -> None:
        self.vector = 0
        self.leafvec = 0
        self.leaves: List[int] = []
        self.children: List[TmpNode] = []

    def shallow_signature(self) -> tuple:
        """The fields compared by the incremental updater to decide whether a
        node can be updated in place (Section 3.5: "when neither of the
        root's vector nor leafvec change...")."""
        return self.vector, self.leafvec

    def count_nodes(self) -> tuple:
        """(internal nodes, leaf slots) in this subtree — for Table 2."""
        inodes, leaves = 1, len(self.leaves)
        for child in self.children:
            ci, cl = child.count_nodes()
            inodes += ci
            leaves += cl
        return inodes, leaves


#: A slot of an expanded chunk: either a leaf FIB index (int) or a pending
#: internal node (radix node to expand further + its inherited FIB index).
Slot = Union[int, tuple]


def _fill_slots(
    node: Optional[RibNode],
    depth: int,
    base: int,
    inherited: int,
    k: int,
    slots: List[Slot],
) -> None:
    """Expand ``k - depth`` remaining chunk bits of the radix subtree rooted
    at ``node`` into ``slots[base : base + 2^(k-depth)]``."""
    if node is not None and node.route != NO_ROUTE:
        inherited = node.route
    if depth == k:
        if node is not None and not node.is_leaf():
            slots[base] = (node, inherited)
        else:
            slots[base] = inherited
        return
    if node is None:
        # The whole value range under this point inherits one leaf.
        for i in range(base, base + (1 << (k - depth))):
            slots[i] = inherited
        return
    half = 1 << (k - depth - 1)
    _fill_slots(node.left, depth + 1, base, inherited, k, slots)
    _fill_slots(node.right, depth + 1, base + half, inherited, k, slots)


def expand_chunk(
    node: Optional[RibNode], inherited: int, k: int
) -> List[Slot]:
    """Expand one k-bit chunk of the radix tree into 2^k slots."""
    slots: List[Slot] = [NO_ROUTE] * (1 << k)
    _fill_slots(node, 0, 0, inherited, k, slots)
    return slots


def make_shallow(slots: List[Slot], use_leafvec: bool) -> TmpNode:
    """Build one TmpNode from expanded slots, without recursing into
    children (children are left as ``(radix_node, inherited)`` markers in
    ``tmp.children`` order-preserving positions for the caller to expand)."""
    tmp = TmpNode()
    pending: List[tuple] = []
    previous: Optional[int] = None
    for v, slot in enumerate(slots):
        if isinstance(slot, tuple):
            tmp.vector |= 1 << v
            pending.append(slot)
            continue
        if use_leafvec:
            # Section 3.3: emit a leaf only when the value changes; slots
            # shadowed by internal nodes are "irrelevant" and the run of
            # identical leaves continues across them (hole punching).
            if previous is None or slot != previous:
                tmp.leafvec |= 1 << v
                tmp.leaves.append(slot)
                previous = slot
        else:
            tmp.leaves.append(slot)
    tmp.children = pending  # type: ignore[assignment]
    return tmp


def expand_node(
    node: Optional[RibNode], inherited: int, k: int, use_leafvec: bool
) -> TmpNode:
    """Recursively expand the radix subtree at ``node`` into a TmpNode tree.

    ``inherited`` is the FIB index of the longest prefix already matched on
    the way down to ``node`` (including ``node.route`` itself when set).
    """
    slots = expand_chunk(node, inherited, k)
    tmp = make_shallow(slots, use_leafvec)
    tmp.children = [
        expand_node(child, child_inherited, k, use_leafvec)
        for child, child_inherited in tmp.children  # type: ignore[misc]
    ]
    return tmp


class Serializer:
    """Writes TmpNode trees into a Poptrie's node and leaf arrays.

    The target object must expose ``alloc_nodes(n)``, ``alloc_leaves(n)``,
    ``write_node(index, vector, leafvec, base0, base1)`` and
    ``write_leaf(index, value)`` — :class:`repro.core.poptrie.Poptrie` does.
    Children of each node form one contiguous block starting at ``base1``;
    compressed leaves form one contiguous block starting at ``base0``.

    Emission is *post-order*: a node is written only after every node and
    leaf below it is complete.  That makes the final root write a safe
    publication point — Section 3.5's requirement that a concurrent reader
    never follows a pointer into a half-built block — and lets the
    incremental updater stage the root's fields (:meth:`serialize_fields`)
    and commit them with one atomic write.
    """

    def __init__(self, target) -> None:
        self.target = target
        self.nodes_written = 0
        self.leaves_written = 0

    def serialize(self, tmp: TmpNode) -> int:
        """Place ``tmp``'s subtree; returns the root's node index."""
        root_index = self.target.alloc_nodes(1)
        fields = self.serialize_fields(tmp)
        self.target.write_node(root_index, *fields)
        return root_index

    def serialize_into(self, tmp: TmpNode, index: int) -> None:
        """Place ``tmp``'s subtree with the root at a pre-existing index
        (in-place root replacement used by the incremental updater).  The
        root write is last, so readers of the old subtree at ``index``
        switch to the fully built replacement in one step."""
        fields = self.serialize_fields(tmp)
        self.target.write_node(index, *fields)

    def serialize_fields(self, tmp: TmpNode) -> Tuple[int, int, int, int]:
        """Emit ``tmp``'s descendants and leaves; return the root's
        ``(vector, leafvec, base0, base1)`` *without writing the root*.

        The caller owns the final publishing write — the transactional
        update layer defers it into its commit phase.  The root is counted
        in ``nodes_written`` (it will certainly be written).
        """
        return self._emit(tmp)

    def _emit(self, node: TmpNode) -> Tuple[int, int, int, int]:
        fault_point("build")
        base1 = 0
        if node.children:
            base1 = self.target.alloc_nodes(len(node.children))
            for i, child in enumerate(node.children):
                fields = self._emit(child)
                self.target.write_node(base1 + i, *fields)
        base0 = 0
        if node.leaves:
            base0 = self.target.alloc_leaves(len(node.leaves))
            for i, value in enumerate(node.leaves):
                self.target.write_leaf(base0 + i, value)
            self.leaves_written += len(node.leaves)
        self.nodes_written += 1
        return node.vector, node.leafvec, base0, base1
