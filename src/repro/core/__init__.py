"""The paper's primary contribution: the Poptrie lookup structure.

- :mod:`repro.core.poptrie` — the compressed 2^k-ary trie with population
  count (Sections 3.1–3.4): bit-vector descendant arrays, leafvec leaf
  compression, direct pointing.
- :mod:`repro.core.builder` — compilation from the radix-tree RIB
  (controlled prefix expansion and node serialization).
- :mod:`repro.core.update` — incremental, swap-on-commit updates
  (Section 3.5).
- :mod:`repro.core.aggregate` — route aggregation (the FIB compression the
  paper applies before compilation) plus an optimal ORTC variant.
- :mod:`repro.core.vectorized` — numpy batch-lookup engine used by the
  throughput benchmarks.
"""

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.core.update import UpdatablePoptrie, UpdateStats

__all__ = ["Poptrie", "PoptrieConfig", "UpdatablePoptrie", "UpdateStats"]
