"""Route aggregation — the FIB compression applied before compilation.

Section 3 of the paper: "the route aggregation performs merger of a set of
prefixes with the identical next hop that belong to a subtree without any
gap, into the single prefix representing the whole subtree", and notes the
optimisation is applicable to any lookup structure.  Unless stated
otherwise the paper's Poptrie numbers include it (Table 2's bottom block).

Aggregation operates on the route *ids* in the RIB's nodes and never
inspects payloads, so it applies unchanged to any value plane (next-hop
indices, GeoIP country ids, ACL classes — see docs/VALUES.md): what it
exploits is purely the entropy of the value column (Rétvári et al.,
arXiv:1402.1194).

Three algorithms are provided:

- :func:`aggregate_simple` — the paper's aggregation: bottom-up subtree
  merging plus removal of routes made redundant by their covering route.
  Exact (lookup results are unchanged for every address).
- :func:`aggregate_uniform` — the swoiow poptrie's same-value subtree
  pruning, as a route-list transform: a uniform subtree may only
  collapse into a shorter prefix at multiple-of-``span`` depths, i.e.
  exactly when a multibit node's ``2^span`` children are identical
  leaves.  ``span=1`` degenerates to :func:`aggregate_simple`; also
  exact.
- :func:`aggregate_ortc` — the classic Optimal Route Table Construction
  algorithm (Draves et al.) as an ablation extension: produces the minimal
  equivalent table, at higher construction cost.  Note ORTC minimises the
  number of *routes*; because it may relocate where next hops change, a
  default route can appear.  It preserves lookup semantics for every
  address wherever the original table matched; addresses the original
  table did not cover may map to a real next hop instead of NO_ROUTE
  (standard ORTC behaviour — forwarding correctness is unaffected when the
  table has a default route, and the property tests pin this contract).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib, RibNode

#: Summary sentinel: the subtree maps addresses to ≥ 2 distinct next hops.
_MIXED = -1
#: Summary sentinel: the subtree maps every address to "no route".
_EMPTY = -2


def _summarise(node: Optional[RibNode], summaries: Dict[int, Tuple[int, bool]]):
    """Post-order summary of each subtree as ``(value, has_gap)``.

    ``value`` is the unique next hop the covered part of the subtree maps
    to, ``_MIXED`` when there are at least two, or ``_EMPTY`` when nothing
    is covered.  ``has_gap`` records whether some addresses are uncovered.
    """
    if node is None:
        return _EMPTY, True
    left = _summarise(node.left, summaries)
    right = _summarise(node.right, summaries)
    value, has_gap = _combine(left, right)
    if node.route != NO_ROUTE:
        # The node's own route fills the gaps below it.
        if value == _EMPTY:
            value, has_gap = node.route, False
        elif has_gap:
            value = node.route if value == node.route else _MIXED
            has_gap = False
    summary = (value, has_gap)
    summaries[id(node)] = summary
    return summary


def _combine(left: Tuple[int, bool], right: Tuple[int, bool]) -> Tuple[int, bool]:
    lv, lg = left
    rv, rg = right
    has_gap = lg or rg
    if lv == _EMPTY:
        return rv, has_gap
    if rv == _EMPTY:
        return lv, has_gap
    if lv == _MIXED or rv == _MIXED or lv != rv:
        return _MIXED, has_gap
    return lv, has_gap


def _emit_routes(rib: Rib, span: int) -> List[Tuple[Prefix, int]]:
    """Shared emitter behind the exact aggregations.

    ``span`` gates where a merged subtree may surface as one route: a
    uniform subtree collapses only at depths that are multiples of
    ``span`` (or at a leaf, where "collapsing" just re-emits the route
    where it already is).  Elsewhere the walk descends, which is always
    an exact representation, so every span produces an equivalent table;
    larger spans trade route count for stride alignment.
    """
    summaries: Dict[int, Tuple[int, bool]] = {}
    _summarise(rib.root, summaries)
    routes: List[Tuple[Prefix, int]] = []

    def emit(node: Optional[RibNode], value: int, length: int, inherited: int):
        if node is None:
            return
        summary_value, has_gap = summaries[id(node)]
        effective = node.route if node.route != NO_ROUTE else inherited
        # Does the whole subtree collapse to one value, given what is
        # inherited from above fills any remaining gaps?
        collapsed: Optional[int] = None
        if summary_value == _EMPTY:
            collapsed = effective
        elif summary_value != _MIXED and not has_gap:
            collapsed = summary_value
        elif summary_value != _MIXED and has_gap and summary_value == effective:
            collapsed = summary_value
        if collapsed is not None and (length % span == 0 or node.is_leaf()):
            if collapsed != inherited and collapsed != NO_ROUTE:
                routes.append((Prefix(value, length, rib.width), collapsed))
            return
        if node.route != NO_ROUTE and node.route != inherited:
            routes.append((Prefix(value, length, rib.width), node.route))
            inherited = node.route
        bit = 1 << (rib.width - length - 1)
        emit(node.left, value, length + 1, inherited)
        emit(node.right, value | bit, length + 1, inherited)

    emit(rib.root, 0, 0, NO_ROUTE)
    return routes


def aggregate_simple(rib: Rib) -> List[Tuple[Prefix, int]]:
    """The paper's route aggregation.  Returns the reduced route list.

    Exactness: for every address, looking up the returned table gives the
    same FIB index as the input table (including NO_ROUTE misses).
    """
    return _emit_routes(rib, span=1)


def aggregate_uniform(rib: Rib, span: int = 8) -> List[Tuple[Prefix, int]]:
    """Same-value subtree pruning at ``span``-bit stride boundaries.

    The swoiow poptrie's aggregation rule (SNIPPETS.md): in a multibit
    trie with ``span``-bit strides, a node all of whose ``2^span``
    children are identical leaves is pruned to a single leaf one level
    up.  As a route-list transform that means a uniform subtree may only
    be replaced by a shorter prefix when that prefix length is a
    multiple of ``span`` — merged prefixes then land exactly on chunk
    boundaries of a ``k=span`` multibit structure, which is where the
    node-count savings come from.  Exact, like
    :func:`aggregate_simple` (to which it degenerates at ``span=1``).
    """
    if span < 1:
        raise ValueError(f"span must be >= 1, got {span}")
    return _emit_routes(rib, span=span)


def aggregated_rib(rib: Rib, span: int = 1) -> Rib:
    """Convenience: a new RIB holding the exact-aggregation output.

    ``span=1`` is :func:`aggregate_simple`; larger spans apply
    :func:`aggregate_uniform`.  The input's attached value table (if
    any) carries over — aggregation renumbers nothing.
    """
    out = Rib(width=rib.width, values=rib.values)
    for prefix, fib_index in _emit_routes(rib, span=span):
        out.insert(prefix, fib_index)
    return out


# -- ORTC (extension / ablation) ---------------------------------------------


def aggregate_ortc(rib: Rib) -> List[Tuple[Prefix, int]]:
    """Optimal Route Table Construction (Draves et al., INFOCOM'99).

    Three passes over a normalised binary trie: (1) leaf-push the inherited
    next hops, (2) compute candidate next-hop sets bottom-up (intersection
    when non-empty, else union), (3) top-down, keep a route only where the
    inherited choice is not in the candidate set.
    """
    width = rib.width

    class _N:
        __slots__ = ("left", "right", "route", "candidates")

        def __init__(self) -> None:
            self.left: Optional[_N] = None
            self.right: Optional[_N] = None
            self.route = NO_ROUTE
            self.candidates: FrozenSet[int] = frozenset()

    # Copy the RIB into a mutable trie, then normalise so every node has
    # zero or two children (ORTC's passes assume a full binary trie).
    def copy(node: Optional[RibNode]) -> Optional[_N]:
        if node is None:
            return None
        out = _N()
        out.route = node.route
        out.left = copy(node.left)
        out.right = copy(node.right)
        return out

    root = copy(rib.root)
    assert root is not None
    if root.route == NO_ROUTE:
        root.route = NO_ROUTE  # the implicit "no route" default

    def normalise(node: _N) -> None:
        if (node.left is None) != (node.right is None):
            if node.left is None:
                node.left = _N()
            else:
                node.right = _N()
        if node.left is not None:
            normalise(node.left)
        if node.right is not None:
            normalise(node.right)

    normalise(root)

    # Pass 1+2 fused: push inherited down; compute candidate sets up.
    def up(node: _N, inherited: int) -> FrozenSet[int]:
        if node.route != NO_ROUTE:
            inherited = node.route
        if node.left is None:  # leaf
            node.candidates = frozenset((inherited,))
            return node.candidates
        left = up(node.left, inherited)
        right = up(node.right, inherited)
        both = left & right
        node.candidates = both if both else (left | right)
        return node.candidates

    up(root, NO_ROUTE)

    routes: List[Tuple[Prefix, int]] = []

    # Pass 3: choose next hops top-down.
    def down(node: _N, value: int, length: int, inherited: int) -> None:
        chosen = inherited
        if inherited not in node.candidates:
            chosen = min(node.candidates)  # deterministic pick
            if chosen != NO_ROUTE:
                routes.append((Prefix(value, length, width), chosen))
        if node.left is None:
            return
        bit = 1 << (width - length - 1)
        down(node.left, value, length + 1, chosen)
        down(node.right, value | bit, length + 1, chosen)

    down(root, 0, 0, NO_ROUTE)
    return routes
