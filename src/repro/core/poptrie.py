"""Poptrie: the compressed 2^k-ary trie with population count.

Implements Sections 3.1–3.4 of the paper with the same data layout:

- an internal node is ``(vector, base0, base1)`` — 16 bytes — or, with the
  leafvec extension, ``(vector, leafvec, base0, base1)`` — 24 bytes;
- leaves are 16-bit FIB indices (configurable to 32 for the structural
  scalability discussion of Section 5);
- descendant internal nodes and compressed leaves of each node live in
  contiguous array blocks reached through ``base1``/``base0`` plus a
  population count over ``vector``/``leafvec`` (Algorithms 1 and 2);
- direct pointing (Section 3.4) replaces the first ``s`` bits with a
  2^s-entry array whose entries are either node indices or FIB indices
  tagged with the most significant bit (Algorithm 3).

The paper fixes ``k = 6`` so a vector fills one 64-bit register; we default
to 6 but keep ``k`` configurable, which lets the unit tests exercise the
``k = 2`` worked example of the paper's Figures 1–4 directly.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core import builder
from repro.errors import StructuralLimitError
from repro.lookup.base import LookupStructure, StructureConfig
from repro.lookup.registry import register
from repro.mem.buddy import BuddyAllocator
from repro.mem.layout import AccessTrace, MemoryMap
from repro.net.fib import NO_ROUTE
from repro.net.rib import Rib
from repro.obs.tracing import span

#: Most-significant-bit tag of a direct-pointing entry: set ⇒ the remaining
#: 31 bits are a FIB index; clear ⇒ they are an internal-node index.
DIRECT_LEAF = 1 << 31

#: Per-slot instruction estimates used by the cycle model (Section 4.6
#: substitute): one trie step is roughly extract + test + popcount + add.
_STEP_INSTRUCTIONS = 6
_LEAF_INSTRUCTIONS = 5
_DIRECT_INSTRUCTIONS = 4


@dataclass(frozen=True)
class PoptrieConfig(StructureConfig):
    """Build-time options (the rows of Table 2).

    ``s = 0`` disables direct pointing; the paper evaluates 0, 16 and 18.
    ``use_leafvec`` enables the Section 3.3 leaf compression.  ``leaf_bits``
    is 16 in the paper (2-byte leaves, max 2^16 FIB entries) and may be 32
    here per the Section 5 structural-scalability discussion.
    """

    k: int = 6
    s: int = 18
    use_leafvec: bool = True
    leaf_bits: int = 16

    def __post_init__(self) -> None:
        if not 1 <= self.k <= 6:
            raise ValueError("k must be in 1..6 (vector must fit 64 bits)")
        if self.s < 0:
            raise ValueError("s must be non-negative")
        if self.leaf_bits not in (16, 32):
            raise ValueError("leaf_bits must be 16 or 32")

    @property
    def node_bytes(self) -> int:
        """16 bytes basic, 24 with leafvec (Section 3)."""
        return 24 if self.use_leafvec else 16

    @property
    def leaf_bytes(self) -> int:
        return self.leaf_bits // 8


class Poptrie(LookupStructure):
    """The Poptrie lookup structure.

    Build one with :meth:`from_rib` (or through
    :class:`repro.core.update.UpdatablePoptrie` when incremental updates are
    needed):

    >>> from repro.net.rib import Rib
    >>> from repro.net.prefix import Prefix
    >>> rib = Rib()
    >>> rib.insert(Prefix.parse("192.0.2.0/24"), 1)
    0
    >>> rib.insert(Prefix.parse("0.0.0.0/0"), 2)
    0
    >>> t = Poptrie.from_rib(rib)
    >>> t.lookup(Prefix.parse("192.0.2.55/32").value)
    1
    >>> t.lookup(Prefix.parse("198.51.100.1/32").value)
    2
    """

    def __init__(self, config: PoptrieConfig = PoptrieConfig(), width: int = 32):
        if config.s > width:
            raise ValueError(f"direct pointing s={config.s} exceeds width {width}")
        self.config = config
        self.width = width
        self.k = config.k
        self.s = config.s
        # The paper's naming convention: "Poptrie18" means s = 18.
        self.name = f"Poptrie{self.s}"
        if not config.use_leafvec:
            self.name += " (basic)"
        # Padded key width so every chunk read stays in-range (Algorithm 1's
        # extract() zero-pads past the end of the address).
        levels = -(-(width - self.s) // self.k) if width > self.s else 1
        self._padded_width = self.s + self.k * levels
        self._pad = self._padded_width - width
        self._kmask = (1 << self.k) - 1

        self.node_alloc = BuddyAllocator(capacity=64)
        self.leaf_alloc = BuddyAllocator(capacity=64)
        self.vec = array("Q", bytes(8 * self.node_alloc.capacity))
        self.lvec = array("Q", bytes(8 * self.node_alloc.capacity))
        self.base0 = array("I", bytes(4 * self.node_alloc.capacity))
        self.base1 = array("I", bytes(4 * self.node_alloc.capacity))
        leaf_code = "H" if config.leaf_bits == 16 else "I"
        self.leaves = array(leaf_code, bytes(config.leaf_bytes * 64))
        self.direct = array("I", bytes(4 << self.s)) if self.s else array("I")
        self.root_index = 0

        #: Logical counts — what Table 2 reports as "# of inodes"/"# of
        #: leaves" (buddy blocks may be rounded up beyond these).
        self.inode_count = 0
        self.leaf_count = 0

        # Virtual addresses for cache-simulation traces.
        self.memmap = MemoryMap()
        self._node_region = self.memmap.add_region(
            "poptrie.nodes", config.node_bytes, self.node_alloc.capacity
        )
        self._leaf_region = self.memmap.add_region(
            "poptrie.leaves", config.leaf_bytes, len(self.leaves)
        )
        self._direct_region = self.memmap.add_region(
            "poptrie.direct", 4, max(len(self.direct), 1)
        )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_rib(
        cls,
        rib: Rib,
        config: Optional[PoptrieConfig] = None,
        fib_size: Optional[int] = None,
        **options,
    ) -> "Poptrie":
        """Compile a Poptrie from a radix-tree RIB.

        Build options come either as a :class:`PoptrieConfig` or as the
        equivalent keywords (``s=18``, ``use_leafvec=False``, ...);
        unknown option names raise ``TypeError``.  ``fib_size`` (defaults
        to the largest FIB index in the RIB) is validated against the
        leaf width — Section 5's structural limit.
        """
        config = PoptrieConfig.resolve(config, options)
        with span("poptrie.from_rib"):
            trie = cls(config, width=rib.width)
            trie._check_fib_capacity(rib, fib_size)
            if config.s == 0:
                tmp = builder.expand_node(
                    rib.root, NO_ROUTE, config.k, config.use_leafvec
                )
                trie.root_index = builder.Serializer(trie).serialize(tmp)
            else:
                trie._build_direct(rib)
            return trie

    def _check_fib_capacity(self, rib: Rib, fib_size: Optional[int]) -> None:
        limit = 1 << self.config.leaf_bits
        if fib_size is None:
            fib_size = max((idx for _, idx in rib.routes()), default=0) + 1
        if fib_size > limit:
            raise StructuralLimitError(
                f"{fib_size} FIB entries exceed {self.config.leaf_bits}-bit leaves"
            )

    def _build_direct(self, rib: Rib) -> None:
        """Fill the 2^s top-level array (Section 3.4) by walking the radix
        tree to depth ``s``, expanding a subtree where one exists and filling
        address ranges with tagged FIB indices where it does not."""
        serializer = builder.Serializer(self)

        def fill(node, depth: int, base: int, inherited: int) -> None:
            if node is not None and node.route != NO_ROUTE:
                inherited = node.route
            if depth == self.s:
                if node is not None and not node.is_leaf():
                    tmp = builder.expand_node(
                        node, inherited, self.k, self.config.use_leafvec
                    )
                    self.direct[base] = serializer.serialize(tmp)
                else:
                    self.direct[base] = DIRECT_LEAF | inherited
                return
            if node is None:
                value = DIRECT_LEAF | inherited
                span = 1 << (self.s - depth)
                self.direct[base : base + span] = array("I", [value]) * span
                return
            half = 1 << (self.s - depth - 1)
            fill(node.left, depth + 1, base, inherited)
            fill(node.right, depth + 1, base + half, inherited)

        fill(rib.root, 0, 0, NO_ROUTE)

    # -- serialization target interface (used by builder.Serializer) ----------

    def alloc_nodes(self, count: int) -> int:
        offset = self.node_alloc.alloc(count)
        self.inode_count += count
        self._sync_node_arrays()
        return offset

    def free_nodes(self, offset: int, count: int) -> None:
        self.node_alloc.free(offset)
        self.inode_count -= count

    def alloc_leaves(self, count: int) -> int:
        offset = self.leaf_alloc.alloc(count)
        self.leaf_count += count
        self._sync_leaf_array()
        return offset

    def free_leaves(self, offset: int, count: int) -> None:
        self.leaf_alloc.free(offset)
        self.leaf_count -= count

    def write_node(
        self, index: int, vector: int, leafvec: int, base0: int, base1: int
    ) -> None:
        self.vec[index] = vector
        self.lvec[index] = leafvec
        self.base0[index] = base0
        self.base1[index] = base1

    def write_leaf(self, index: int, value: int) -> None:
        if value >= (1 << self.config.leaf_bits):
            raise StructuralLimitError(
                f"FIB index {value} exceeds {self.config.leaf_bits}-bit leaf"
            )
        self.leaves[index] = value

    def _sync_node_arrays(self) -> None:
        capacity = self.node_alloc.capacity
        if len(self.vec) < capacity:
            grow = capacity - len(self.vec)
            self.vec.extend([0] * grow)
            self.lvec.extend([0] * grow)
            self.base0.extend([0] * grow)
            self.base1.extend([0] * grow)
            self._node_region = self.memmap.resize_region("poptrie.nodes", capacity)

    def _sync_leaf_array(self) -> None:
        capacity = self.leaf_alloc.capacity
        if len(self.leaves) < capacity:
            self.leaves.extend([0] * (capacity - len(self.leaves)))
            self._leaf_region = self.memmap.resize_region("poptrie.leaves", capacity)

    # -- lookup (Algorithms 1–3) -----------------------------------------------

    def lookup(self, key: int) -> int:
        """Longest-prefix-match ``key`` (an integer address) to a FIB index."""
        k = self.k
        kmask = self._kmask
        vec = self.vec
        if self.s:
            entry = self.direct[key >> (self.width - self.s)]
            if entry & DIRECT_LEAF:
                return entry & (DIRECT_LEAF - 1)
            index = entry
            shift = self._padded_width - k - self.s
        else:
            index = self.root_index
            shift = self._padded_width - k
        keyp = key << self._pad
        vector = vec[index]
        v = (keyp >> shift) & kmask
        while (vector >> v) & 1:
            bc = (vector & ((2 << v) - 1)).bit_count()
            index = self.base1[index] + bc - 1
            vector = vec[index]
            shift -= k
            v = (keyp >> shift) & kmask
        if self.config.use_leafvec:
            bc = (self.lvec[index] & ((2 << v) - 1)).bit_count()
        else:
            bc = ((~vector) & ((2 << v) - 1)).bit_count()
        return self.leaves[self.base0[index] + bc - 1]

    def _lookup_batch(self, keys) -> np.ndarray:
        """Batch lookup: the branchless kernel for any width ≤ 64 (see
        :mod:`repro.lookup.kernels`), the legacy per-engine template
        (:mod:`repro.core.vectorized`) when kernel dispatch is disabled,
        and the chunk-matrix path for IPv6 (object array of 128-bit
        ints).  The state is rebuilt per call because updates may
        reallocate the live arrays."""
        from repro.lookup import kernels

        if self.width <= 64 and kernels.dispatch_enabled():
            kernel = kernels.kernel_for_class(type(self))
            if kernel is not None:
                return kernel.lookup_batch(
                    kernel.state_from_structure(self), keys
                )
        if self.width == 32:
            from repro.core.vectorized import poptrie_lookup_batch

            return poptrie_lookup_batch(self, keys)
        if self.width == 128 and self.s <= 64:
            from repro.core.vectorized import poptrie_lookup_batch_v6

            return poptrie_lookup_batch_v6(self, keys)
        return LookupStructure._lookup_batch(self, keys)

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        """Like :meth:`lookup` but records every memory access and an
        instruction estimate into ``trace`` for the cycle simulator."""
        k = self.k
        kmask = self._kmask
        if self.s:
            trace.read(self._direct_region, key >> (self.width - self.s))
            trace.work(_DIRECT_INSTRUCTIONS)
            entry = self.direct[key >> (self.width - self.s)]
            if entry & DIRECT_LEAF:
                return entry & (DIRECT_LEAF - 1)
            index = entry
            shift = self._padded_width - k - self.s
        else:
            index = self.root_index
            shift = self._padded_width - k
        keyp = key << self._pad
        trace.read(self._node_region, index)
        vector = self.vec[index]
        v = (keyp >> shift) & kmask
        while (vector >> v) & 1:
            trace.work(_STEP_INSTRUCTIONS)
            bc = (vector & ((2 << v) - 1)).bit_count()
            index = self.base1[index] + bc - 1
            trace.read(self._node_region, index)
            vector = self.vec[index]
            shift -= k
            v = (keyp >> shift) & kmask
        # One mostly-biased loop-exit branch per lookup (descend vs leaf).
        trace.mispredict(0.2)
        trace.work(_LEAF_INSTRUCTIONS)
        if self.config.use_leafvec:
            bc = (self.lvec[index] & ((2 << v) - 1)).bit_count()
        else:
            bc = ((~vector) & ((2 << v) - 1)).bit_count()
        leaf_index = self.base0[index] + bc - 1
        trace.read(self._leaf_region, leaf_index)
        return self.leaves[leaf_index]

    # -- zero-copy images ------------------------------------------------

    def _image_state(self):
        """Compacted arrays + scalars for :meth:`LookupStructure.to_image`.

        Reuses the serializer's remap so images are always emitted in
        the tight live-block order a fresh compile would produce — two
        compiles of equal RIBs yield byte-identical images, which makes
        ``TableImage.fingerprint()`` a table identity.
        """
        from repro.core.serialize import _compact_state

        node_count, leaf_count, root, arrays = _compact_state(self)
        meta = {
            "k": self.k,
            "s": self.s,
            "use_leafvec": self.config.use_leafvec,
            "leaf_bits": self.config.leaf_bits,
            "width": self.width,
            "node_count": node_count,
            "leaf_count": leaf_count,
            "root_index": root,
        }
        return meta, arrays

    @classmethod
    def _from_image_state(cls, meta, segments, *, copy: bool) -> "Poptrie":
        from repro.errors import SnapshotFormatError

        try:
            config = PoptrieConfig(
                k=int(meta["k"]),
                s=int(meta["s"]),
                use_leafvec=bool(meta["use_leafvec"]),
                leaf_bits=int(meta["leaf_bits"]),
            )
            width = int(meta["width"])
            node_count = int(meta["node_count"])
            leaf_count = int(meta["leaf_count"])
            root = int(meta["root_index"])
            trie = cls(config, width=width)
            vec, lvec = segments["vec"], segments["lvec"]
            base0, base1 = segments["base0"], segments["base1"]
            leaves, direct = segments["leaves"], segments["direct"]
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotFormatError(
                f"invalid poptrie image: {error}"
            ) from error
        if (
            len(vec) != node_count
            or len(lvec) != node_count
            or len(base0) != node_count
            or len(base1) != node_count
            or len(leaves) != leaf_count
            or leaves.itemsize != config.leaf_bytes
            or len(direct) != ((1 << config.s) if config.s else 0)
        ):
            raise SnapshotFormatError(
                "poptrie image segments inconsistent with header"
            )

        if copy:
            # Materialize private, mutable arrays — the historical
            # snapshot-load semantics.  Pre-size the allocators so the
            # first allocation starts at offset 0 (growing a small
            # allocator would otherwise place the block higher).
            trie.node_alloc = BuddyAllocator(capacity=max(64, node_count))
            trie.leaf_alloc = BuddyAllocator(capacity=max(64, leaf_count))
            if node_count:
                base = trie.alloc_nodes(node_count)
                assert base == 0, "fresh trie must allocate from offset zero"
                trie.vec[:node_count] = array("Q", vec.tobytes())
                trie.lvec[:node_count] = array("Q", lvec.tobytes())
                trie.base0[:node_count] = array("I", base0.tobytes())
                trie.base1[:node_count] = array("I", base1.tobytes())
            if leaf_count:
                leaf_base = trie.alloc_leaves(leaf_count)
                assert leaf_base == 0
                leaf_code = "H" if config.leaf_bits == 16 else "I"
                trie.leaves[:leaf_count] = array(leaf_code, leaves.tobytes())
            if config.s:
                trie.direct[:] = array("I", direct.tobytes())
            else:
                trie.root_index = root
        else:
            # Zero-copy attach: wrap the image's buffer in read-only
            # views.  The trie is frozen — every mutation path hits a
            # read-only numpy array — but lookups (scalar, traced and
            # vectorised) work unchanged, which is what pool workers do
            # against shared memory.
            def frozen(arr):
                view = np.asarray(arr).view()
                view.flags.writeable = False
                return view

            trie.vec = frozen(vec)
            trie.lvec = frozen(lvec)
            trie.base0 = frozen(base0)
            trie.base1 = frozen(base1)
            trie.leaves = frozen(leaves)
            trie.direct = frozen(direct)
            trie.root_index = root
            trie.inode_count = node_count
            trie.leaf_count = leaf_count
            trie.frozen = True
            trie._node_region = trie.memmap.resize_region(
                "poptrie.nodes", max(node_count, 1)
            )
            trie._leaf_region = trie.memmap.resize_region(
                "poptrie.leaves", max(leaf_count, 1)
            )

        from repro.core.serialize import validate

        validate(trie)
        return trie

    # -- incremental updates -------------------------------------------------

    def _apply_updates(self, updates: list):
        """Incremental engine hook: route the batch through the
        transactional subtree-surgery path (Section 3.5).

        A :class:`~repro.robust.txn.TransactionalPoptrie` is created
        lazily around *this* trie (``trie=`` adoption, no recompilation)
        and cached on the instance; messages apply with staged-then-
        commit semantics, one bad message rolls back alone and is
        counted ``rejected``.  When the engine degrades to a full
        rebuild it swaps in a fresh trie object — its state is adopted
        back into ``self`` so callers holding this reference (a server
        handle, a bench roster) keep seeing the updated table.
        """
        from repro.robust.txn import TransactionalPoptrie

        engine = self.__dict__.get("_txn_engine")
        if engine is None or engine.rib is not self.update_rib:
            engine = TransactionalPoptrie(
                self.config, width=self.width, rib=self.update_rib,
                trie=self,
            )
            self.__dict__["_txn_engine"] = engine
        report = engine.apply_stream(updates, on_error="skip")
        if engine.trie is not self:
            # The engine degraded to a rebuild and published a new trie.
            self._adopt_state(engine.trie)
            self.__dict__["_txn_engine"] = engine
            engine.trie = self
        return {
            "applied": report.applied,
            "rejected": report.rejected,
            "degraded": report.degraded,
            "engine": "incremental",
        }

    # -- self-verification -------------------------------------------------

    def verify(self, rib=None, samples: int = 1000, seed: int = 20150817):
        """Check every structural invariant of this trie — vector/leafvec
        disjointness, popcount offset validity, buddy-allocator accounting
        — and, when a shadow ``rib`` is given, longest-prefix-match
        agreement on a deterministic address sample.

        Raises :class:`~repro.errors.VerificationError` on the first
        violation; returns a
        :class:`~repro.robust.verify.VerificationReport` otherwise.  See
        :mod:`repro.robust.verify` for the full invariant list.
        """
        from repro.robust.verify import verify_poptrie

        return verify_poptrie(self, rib, samples=samples, seed=seed)

    # -- introspection -----------------------------------------------------

    def memory_bytes(self) -> int:
        """Data-structure footprint as the paper reports it: live internal
        nodes, live leaf slots, plus the direct-pointing array."""
        return (
            self.inode_count * self.config.node_bytes
            + self.leaf_count * self.config.leaf_bytes
            + 4 * len(self.direct)
        )

    def allocated_bytes(self) -> int:
        """Footprint including buddy-allocator rounding (implementation
        honest; always ≥ :meth:`memory_bytes`)."""
        return (
            self.node_alloc.capacity * self.config.node_bytes
            + self.leaf_alloc.capacity * self.config.leaf_bytes
            + 4 * len(self.direct)
        )

    def _extra_stats(self):
        """Poptrie-specific stats() keys; also refreshes the node/leaf
        allocator gauges in the metrics registry when obs is enabled."""
        self.node_alloc.publish_obs("poptrie.nodes", self.config.node_bytes)
        self.leaf_alloc.publish_obs("poptrie.leaves", self.config.leaf_bytes)
        return {
            "inode_count": self.inode_count,
            "leaf_count": self.leaf_count,
            "direct_entries": len(self.direct),
            "allocated_bytes": self.allocated_bytes(),
            "node_allocator": self.node_alloc.stats(),
            "leaf_allocator": self.leaf_alloc.stats(),
        }

    def depth_of(self, key: int) -> int:
        """Number of internal nodes traversed to look ``key`` up (0 when the
        direct array resolves it).  Drives the Figure 11-style analysis."""
        k = self.k
        if self.s:
            entry = self.direct[key >> (self.width - self.s)]
            if entry & DIRECT_LEAF:
                return 0
            index = entry
            shift = self._padded_width - k - self.s
        else:
            index = self.root_index
            shift = self._padded_width - k
        keyp = key << self._pad
        depth = 1
        vector = self.vec[index]
        v = (keyp >> shift) & self._kmask
        while (vector >> v) & 1:
            bc = (vector & ((2 << v) - 1)).bit_count()
            index = self.base1[index] + bc - 1
            vector = self.vec[index]
            shift -= k
            v = (keyp >> shift) & self._kmask
            depth += 1
        return depth

    def iter_nodes(self) -> Iterable[Tuple[int, int, int, int, int]]:
        """Yield ``(index, vector, leafvec, base0, base1)`` for every node
        reachable from the root(s) — used by the structure-invariant tests."""
        roots: List[int] = []
        if self.s:
            roots = [e for e in self.direct if not e & DIRECT_LEAF]
        else:
            roots = [self.root_index]
        seen = set()
        stack = list(dict.fromkeys(roots))
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            vector = self.vec[index]
            yield index, vector, self.lvec[index], self.base0[index], self.base1[index]
            base1 = self.base1[index]
            for rank in range(vector.bit_count()):
                stack.append(base1 + rank)


# The paper's evaluated variants (Table 2/Figure 9): compiled from the
# route-aggregated table, with the FIB size validated against the leaf
# width.  Adding a variant here is the single edit the roster needs.
register("Poptrie0", Poptrie, aggregate=True, pass_fib_size=True, s=0)
register("Poptrie16", Poptrie, aggregate=True, pass_fib_size=True, s=16)
register("Poptrie18", Poptrie, aggregate=True, pass_fib_size=True, s=18)
