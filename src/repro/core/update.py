"""Incremental Poptrie updates (Section 3.5).

The paper's update protocol builds the replacement part of the trie on the
side, then publishes it with a single atomic pointer/index write so readers
never observe a half-built structure.  This module reproduces that shape:

- :class:`UpdatablePoptrie` owns the RIB (a radix tree) and the compiled
  Poptrie.  ``announce``/``withdraw`` update the RIB, then surgically
  rebuild only the affected poptrie subtree.
- The rebuild descends the chunk path while the node's ``(vector,
  leafvec)`` signature is unchanged — those nodes are kept and only a child
  pointer swap is needed — and rebuilds the deepest subtree whose shape
  changed, exactly the paper's "replace the root of the affected subtree"
  rule.  New blocks come from the buddy allocator; old blocks are freed
  after the swap.
- When the updated prefix is shorter than the direct-pointing width ``s``,
  the affected slice of the top-level array is rewritten (the paper
  replaces the whole 2^s array; the observable effect is identical and we
  count it as a top-level replacement either way).

:class:`UpdateStats` mirrors the quantities reported in Section 4.9: how
many internal nodes, leaves and top-level entries each update replaced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core import builder
from repro.core.poptrie import DIRECT_LEAF, Poptrie, PoptrieConfig
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib, RibNode


@dataclass
class UpdateStats:
    """Replacement accounting per Section 4.9."""

    updates: int = 0
    toplevel_replacements: int = 0
    inodes_replaced: int = 0
    leaves_replaced: int = 0

    def per_update(self) -> Tuple[float, float, float]:
        """(top-level, leaves, inodes) replaced per update, as in §4.9."""
        n = max(self.updates, 1)
        return (
            self.toplevel_replacements / n,
            self.leaves_replaced / n,
            self.inodes_replaced / n,
        )


class UpdatablePoptrie:
    """A Poptrie kept in sync with its RIB by incremental updates.

    >>> up = UpdatablePoptrie()
    >>> up.announce(Prefix.parse("10.0.0.0/8"), 1)
    >>> up.announce(Prefix.parse("10.64.0.0/10"), 2)
    >>> up.lookup(Prefix.parse("10.64.1.1/32").value)
    2
    >>> up.withdraw(Prefix.parse("10.64.0.0/10"))
    >>> up.lookup(Prefix.parse("10.64.1.1/32").value)
    1
    """

    def __init__(
        self,
        config: PoptrieConfig = PoptrieConfig(),
        width: int = 32,
        rib: Optional[Rib] = None,
    ) -> None:
        self.rib = rib if rib is not None else Rib(width=width)
        self.trie = Poptrie.from_rib(self.rib, config)
        self.stats = UpdateStats()
        #: Incremented once per committed update; a reader observing the same
        #: generation before and after a lookup saw a consistent structure.
        self.generation = 0

    # -- public API ----------------------------------------------------------

    def lookup(self, key: int) -> int:
        return self.trie.lookup(key)

    def announce(self, prefix: Prefix, fib_index: int) -> None:
        """Insert or replace a route and incrementally update the FIB."""
        previous = self.rib.insert(prefix, fib_index)
        if previous != fib_index:
            self._apply(prefix)

    def withdraw(self, prefix: Prefix) -> None:
        """Remove a route and incrementally update the FIB."""
        self.rib.delete(prefix)
        self._apply(prefix)

    # -- update machinery ------------------------------------------------------

    def _apply(self, prefix: Prefix) -> None:
        self.stats.updates += 1
        trie = self.trie
        if trie.s and prefix.length <= trie.s:
            self._replace_toplevel_range(prefix)
        elif trie.s:
            self._update_direct_entry(prefix)
        else:
            rnode, inherited = self._radix_at(prefix, 0)
            self._refine(trie.root_index, rnode, inherited, 0, prefix)
        self.generation += 1

    def _radix_at(self, prefix: Prefix, depth: int) -> Tuple[Optional[RibNode], int]:
        """Radix node on ``prefix``'s path at ``depth`` bits, plus the best
        route strictly above it (its inherited FIB index)."""
        node: Optional[RibNode] = self.rib.root
        inherited = NO_ROUTE
        for i in range(depth):
            if node is None:
                break
            if node.route != NO_ROUTE:
                inherited = node.route
            node = node.child(prefix.bit(i))
        return node, inherited

    # -- top-level (direct pointing) updates ------------------------------------

    def _replace_toplevel_range(self, prefix: Prefix) -> None:
        """Rewrite the direct-array slice covered by a prefix with length ≤ s.

        The paper replaces the entire 2^s array in this case; rewriting the
        covered slice has the same observable result and the same accounting
        (one top-level replacement event).
        """
        trie = self.trie
        s, width = trie.s, trie.width
        base = prefix.value >> (width - s)
        span = 1 << (s - prefix.length)
        for i in range(base, base + span):
            entry = trie.direct[i]
            if not entry & DIRECT_LEAF:
                self._free_subtree(entry, include_root=True)
        rnode, inherited = self._radix_at(prefix, prefix.length)
        self._fill_direct_range(rnode, prefix.length, base, inherited)
        self.stats.toplevel_replacements += 1

    def _fill_direct_range(
        self, node: Optional[RibNode], depth: int, base: int, inherited: int
    ) -> None:
        trie = self.trie
        if node is not None and node.route != NO_ROUTE:
            inherited = node.route
        if depth == trie.s:
            if node is not None and not node.is_leaf():
                tmp = builder.expand_node(
                    node, inherited, trie.k, trie.config.use_leafvec
                )
                serializer = builder.Serializer(trie)
                trie.direct[base] = serializer.serialize(tmp)
                self.stats.inodes_replaced += serializer.nodes_written
                self.stats.leaves_replaced += serializer.leaves_written
            else:
                trie.direct[base] = DIRECT_LEAF | inherited
            return
        if node is None:
            for i in range(base, base + (1 << (trie.s - depth))):
                trie.direct[i] = DIRECT_LEAF | inherited
            return
        half = 1 << (trie.s - depth - 1)
        self._fill_direct_range(node.left, depth + 1, base, inherited)
        self._fill_direct_range(node.right, depth + 1, base + half, inherited)

    def _update_direct_entry(self, prefix: Prefix) -> None:
        """Update under exactly one direct entry (prefix longer than s)."""
        trie = self.trie
        index = prefix.value >> (trie.width - trie.s)
        entry = trie.direct[index]
        rnode, inherited = self._radix_at(prefix, trie.s)
        effective = inherited
        if rnode is not None and rnode.route != NO_ROUTE:
            effective = rnode.route
        subtree_needed = rnode is not None and not rnode.is_leaf()
        if entry & DIRECT_LEAF:
            if subtree_needed:
                tmp = builder.expand_node(
                    rnode, effective, trie.k, trie.config.use_leafvec
                )
                serializer = builder.Serializer(trie)
                trie.direct[index] = serializer.serialize(tmp)
                self.stats.inodes_replaced += serializer.nodes_written
                self.stats.leaves_replaced += serializer.leaves_written
            else:
                trie.direct[index] = DIRECT_LEAF | effective
            return
        if not subtree_needed:
            # The subtree collapsed to a single leaf: free it and store the
            # FIB index directly (the paper's "leaf brought to the upper
            # level" case, taken all the way to the direct array).
            self._free_subtree(entry, include_root=True)
            trie.direct[index] = DIRECT_LEAF | effective
            return
        self._refine(entry, rnode, inherited, trie.s, prefix)

    # -- subtree refinement -------------------------------------------------

    def _refine(
        self,
        index: int,
        rnode: Optional[RibNode],
        inherited: int,
        offset: int,
        prefix: Prefix,
    ) -> None:
        """Descend while the node's shape is unchanged, then rebuild the
        deepest affected subtree in place at ``index``."""
        trie = self.trie
        k = trie.k
        use_leafvec = trie.config.use_leafvec
        while True:
            slots = builder.expand_chunk(rnode, inherited, k)
            shallow = builder.make_shallow(slots, use_leafvec)
            old_sig = (trie.vec[index], trie.lvec[index] if use_leafvec else 0)
            if shallow.shallow_signature() != old_sig:
                break
            if prefix.length <= offset + k:
                break
            v = _chunk_of(prefix, offset, k)
            if not (trie.vec[index] >> v) & 1:
                break
            rank = (trie.vec[index] & ((2 << v) - 1)).bit_count() - 1
            child_index = trie.base1[index] + rank
            rnode, inherited = _walk_chunk(rnode, inherited, v, k)
            index = child_index
            offset += k
        self._rebuild_at(index, rnode, inherited)

    def _rebuild_at(
        self, index: int, rnode: Optional[RibNode], inherited: int
    ) -> None:
        """Replace the subtree rooted at node ``index`` (keeping its slot)."""
        trie = self.trie
        old_blocks = self._collect_blocks(index)
        tmp = builder.expand_node(rnode, inherited, trie.k, trie.config.use_leafvec)
        serializer = builder.Serializer(trie)
        serializer.serialize_into(tmp, index)
        self.stats.inodes_replaced += serializer.nodes_written
        self.stats.leaves_replaced += serializer.leaves_written
        for kind, offset, count in old_blocks:
            if kind == "nodes":
                trie.free_nodes(offset, count)
            else:
                trie.free_leaves(offset, count)

    def _collect_blocks(self, index: int) -> List[Tuple[str, int, int]]:
        """Blocks owned by the subtree at ``index`` (excluding its own slot)."""
        trie = self.trie
        blocks: List[Tuple[str, int, int]] = []
        stack = [index]
        while stack:
            at = stack.pop()
            vector = trie.vec[at]
            leaf_count = self._leaf_count_of(at)
            if leaf_count:
                blocks.append(("leaves", trie.base0[at], leaf_count))
            child_count = vector.bit_count()
            if child_count:
                blocks.append(("nodes", trie.base1[at], child_count))
                stack.extend(trie.base1[at] + i for i in range(child_count))
        return blocks

    def _leaf_count_of(self, index: int) -> int:
        trie = self.trie
        if trie.config.use_leafvec:
            return trie.lvec[index].bit_count()
        return (1 << trie.k) - trie.vec[index].bit_count()

    def _free_subtree(self, index: int, include_root: bool) -> None:
        for kind, offset, count in self._collect_blocks(index):
            if kind == "nodes":
                self.trie.free_nodes(offset, count)
            else:
                self.trie.free_leaves(offset, count)
        if include_root:
            self.trie.free_nodes(index, 1)


def _chunk_of(prefix: Prefix, offset: int, k: int) -> int:
    """The k-bit chunk of ``prefix.value`` at bit offset ``offset``."""
    from repro.net.ip import extract

    return extract(prefix.value, offset, k, prefix.width)


def _walk_chunk(
    node: Optional[RibNode], inherited: int, v: int, k: int
) -> Tuple[Optional[RibNode], int]:
    """Walk ``k`` bits of value ``v`` down the radix tree, tracking the best
    route seen *before* the destination node (its inherited index)."""
    cur = node
    for i in range(k):
        if cur is None:
            return None, inherited
        if cur.route != NO_ROUTE:
            inherited = cur.route
        cur = cur.child((v >> (k - 1 - i)) & 1)
    return cur, inherited
