"""Incremental Poptrie updates (Section 3.5).

The paper's update protocol builds the replacement part of the trie on the
side, then publishes it with a single atomic pointer/index write so readers
never observe a half-built structure.  This module reproduces that shape:

- :class:`UpdatablePoptrie` owns the RIB (a radix tree) and the compiled
  Poptrie.  ``announce``/``withdraw`` validate the update (rejecting
  malformed ones with :class:`~repro.errors.UpdateRejectedError` *before*
  touching any state), update the RIB, then surgically rebuild only the
  affected poptrie subtree.
- Each update runs in two phases.  **Staging** builds the replacement
  subtree entirely on the side — fresh buddy-allocator blocks, children
  emitted before parents — and records the writes that would publish it in
  a :class:`_Patch` without touching anything a reader can see.  **Commit**
  applies those writes (one node write or a run of direct-array entries),
  bumps the generation counter, and only then frees the blocks of the
  replaced subtree.  An exception during staging therefore leaves the
  visible structure untouched: the transactional layer
  (:mod:`repro.robust.txn`) only has to return the allocators and counters
  to their pre-update state to roll back completely.
- The rebuild descends the chunk path while the node's ``(vector,
  leafvec)`` signature is unchanged — those nodes are kept and only a child
  pointer swap is needed — and rebuilds the deepest subtree whose shape
  changed, exactly the paper's "replace the root of the affected subtree"
  rule.
- When the updated prefix is shorter than the direct-pointing width ``s``,
  the affected slice of the top-level array is rewritten (the paper
  replaces the whole 2^s array; the observable effect is identical and we
  count it as a top-level replacement either way).

:class:`UpdateStats` mirrors the quantities reported in Section 4.9: how
many internal nodes, leaves and top-level entries each update replaced.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core import builder
from repro.core.poptrie import DIRECT_LEAF, Poptrie, PoptrieConfig
from repro.errors import ReplaceCostExceeded, UpdateRejectedError
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib, RibNode


@dataclass
class UpdateStats:
    """Replacement accounting per Section 4.9."""

    updates: int = 0
    toplevel_replacements: int = 0
    inodes_replaced: int = 0
    leaves_replaced: int = 0

    def per_update(self) -> Tuple[float, float, float]:
        """(top-level, leaves, inodes) replaced per update, as in §4.9."""
        n = max(self.updates, 1)
        return (
            self.toplevel_replacements / n,
            self.leaves_replaced / n,
            self.inodes_replaced / n,
        )


@dataclass
class _Patch:
    """The staged, not-yet-visible result of one incremental update.

    Everything a commit needs: the single in-place node write that
    republishes a rebuilt subtree (``node_write``), the direct-array entry
    writes and range fills, the blocks of the replaced subtree to free
    *after* publication, and the replacement counts for
    :class:`UpdateStats`.
    """

    node_write: Optional[Tuple[int, int, int, int, int]] = None
    direct_writes: List[Tuple[int, int]] = field(default_factory=list)
    direct_fills: List[Tuple[int, int, int]] = field(default_factory=list)
    frees: List[Tuple[str, int, int]] = field(default_factory=list)
    toplevel: int = 0
    inodes: int = 0
    leaves: int = 0


class UpdatablePoptrie:
    """A Poptrie kept in sync with its RIB by incremental updates.

    >>> up = UpdatablePoptrie()
    >>> up.announce(Prefix.parse("10.0.0.0/8"), 1)
    >>> up.announce(Prefix.parse("10.64.0.0/10"), 2)
    >>> up.lookup(Prefix.parse("10.64.1.1/32").value)
    2
    >>> up.withdraw(Prefix.parse("10.64.0.0/10"))
    >>> up.lookup(Prefix.parse("10.64.1.1/32").value)
    1
    """

    def __init__(
        self,
        config: PoptrieConfig = PoptrieConfig(),
        width: int = 32,
        rib: Optional[Rib] = None,
        trie: Optional[Poptrie] = None,
    ) -> None:
        self.rib = rib if rib is not None else Rib(width=width)
        #: ``trie`` adopts an already-compiled Poptrie instead of
        #: recompiling — the caller guarantees it agrees with ``rib``
        #: (the registry's ``apply_updates`` path wraps the live served
        #: structure this way, so updates land in place).
        if trie is not None:
            self.trie = trie
        else:
            self.trie = Poptrie.from_rib(self.rib, config)
        self.stats = UpdateStats()
        #: Incremented once per committed update; a reader observing the same
        #: generation before and after a lookup saw a consistent structure.
        self.generation = 0
        #: When set (by the transactional layer), staging raises
        #: :class:`~repro.errors.ReplaceCostExceeded` if an update would
        #: replace more than this many internal nodes; the transactional
        #: layer rolls back and degrades to a full rebuild.  Leave ``None``
        #: on a bare UpdatablePoptrie.
        self.rebuild_threshold: Optional[int] = None

    # -- public API ----------------------------------------------------------

    def lookup(self, key: int) -> int:
        return self.trie.lookup(key)

    def _publish_update_obs(
        self, toplevel: int, inodes: int, leaves: int,
        engine: str = "incremental",
    ) -> None:
        """Mirror one committed update into the metrics registry (§4.9's
        replacement quantities); a no-op while observability is disabled."""
        from repro import obs

        if not obs.enabled():
            return
        reg = obs.registry()
        reg.counter(
            "repro_updates_total", "Committed route updates.", engine=engine
        ).inc()
        reg.counter(
            "repro_update_toplevel_replacements_total",
            "Direct-array entries rewritten by updates.",
        ).inc(toplevel)
        reg.counter(
            "repro_update_inodes_replaced_total",
            "Internal nodes replaced by updates.",
        ).inc(inodes)
        reg.counter(
            "repro_update_leaves_replaced_total",
            "Leaf slots replaced by updates.",
        ).inc(leaves)

    def announce(self, prefix: Prefix, fib_index: int) -> None:
        """Insert or replace a route and incrementally update the FIB.

        Raises :class:`~repro.errors.UpdateRejectedError` — before any
        state is mutated — when the prefix does not belong to this RIB's
        address family or the next-hop index cannot be encoded in a leaf.
        """
        self.check_announce(prefix, fib_index)
        previous = self.rib.insert(prefix, fib_index)
        if previous != fib_index:
            self._apply(prefix)

    def withdraw(self, prefix: Prefix) -> None:
        """Remove a route and incrementally update the FIB.

        Raises :class:`~repro.errors.UpdateRejectedError` — before any
        state is mutated — when the prefix is not in the RIB.
        """
        self.check_withdraw(prefix)
        self.rib.delete(prefix)
        self._apply(prefix)

    # -- validation (all checks precede any mutation) -------------------------

    def check_announce(self, prefix: Prefix, fib_index: int) -> None:
        """Validate an announcement; raises ``UpdateRejectedError``."""
        self._check_prefix(prefix)
        if isinstance(fib_index, bool) or not isinstance(fib_index, int):
            raise UpdateRejectedError(
                f"next-hop index must be an integer, got {fib_index!r}"
            )
        limit = 1 << self.trie.config.leaf_bits
        if not NO_ROUTE < fib_index < limit:
            raise UpdateRejectedError(
                f"next-hop index {fib_index} outside 1..{limit - 1}"
            )

    def check_withdraw(self, prefix: Prefix) -> None:
        """Validate a withdrawal; raises ``UpdateRejectedError``."""
        self._check_prefix(prefix)
        if self.rib.get(prefix) == NO_ROUTE:
            raise UpdateRejectedError(
                f"cannot withdraw {prefix.text}: not in the RIB"
            )

    def _check_prefix(self, prefix: Prefix) -> None:
        if not isinstance(prefix, Prefix):
            raise UpdateRejectedError(f"not a prefix: {prefix!r}")
        if prefix.width != self.rib.width:
            raise UpdateRejectedError(
                f"prefix width {prefix.width} does not match "
                f"RIB width {self.rib.width}"
            )

    # -- update machinery ------------------------------------------------------

    def _apply(self, prefix: Prefix) -> None:
        """Stage the structural change for ``prefix``, then commit it."""
        patch = self._stage(prefix)
        if (
            self.rebuild_threshold is not None
            and patch.inodes > self.rebuild_threshold
        ):
            raise ReplaceCostExceeded(
                f"update replaces {patch.inodes} nodes, over the "
                f"threshold of {self.rebuild_threshold}"
            )
        self._commit(patch)

    def _stage(self, prefix: Prefix) -> _Patch:
        """Build the replacement subtree on the side; nothing visible yet."""
        trie = self.trie
        patch = _Patch()
        if trie.s and prefix.length <= trie.s:
            self._stage_toplevel_range(prefix, patch)
        elif trie.s:
            self._stage_direct_entry(prefix, patch)
        else:
            rnode, inherited = self._radix_at(prefix, 0)
            self._stage_refine(trie.root_index, rnode, inherited, 0, prefix, patch)
        return patch

    def _commit(self, patch: _Patch) -> None:
        """Publish a staged patch, then release the replaced blocks.

        The only writes a reader can observe happen here, and each is
        individually atomic under the GIL: the single root-node write that
        swings a rebuilt subtree in, and direct-array entry stores whose
        old and new targets are both complete structures throughout.
        """
        trie = self.trie
        if patch.node_write is not None:
            trie.write_node(*patch.node_write)
        direct = trie.direct
        for index, value in patch.direct_writes:
            direct[index] = value
        for base, span, value in patch.direct_fills:
            direct[base : base + span] = array("I", [value]) * span
        self.stats.updates += 1
        self.stats.toplevel_replacements += patch.toplevel
        self.stats.inodes_replaced += patch.inodes
        self.stats.leaves_replaced += patch.leaves
        self.generation += 1
        self._publish_update_obs(patch.toplevel, patch.inodes, patch.leaves)
        for kind, offset, count in patch.frees:
            if kind == "nodes":
                trie.free_nodes(offset, count)
            else:
                trie.free_leaves(offset, count)

    def _radix_at(self, prefix: Prefix, depth: int) -> Tuple[Optional[RibNode], int]:
        """Radix node on ``prefix``'s path at ``depth`` bits, plus the best
        route strictly above it (its inherited FIB index)."""
        node: Optional[RibNode] = self.rib.root
        inherited = NO_ROUTE
        for i in range(depth):
            if node is None:
                break
            if node.route != NO_ROUTE:
                inherited = node.route
            node = node.child(prefix.bit(i))
        return node, inherited

    def _stage_subtree(self, rnode: RibNode, inherited: int, patch: _Patch) -> int:
        """Serialize a fresh subtree for ``rnode``; returns its root index."""
        trie = self.trie
        tmp = builder.expand_node(rnode, inherited, trie.k, trie.config.use_leafvec)
        serializer = builder.Serializer(trie)
        index = serializer.serialize(tmp)
        patch.inodes += serializer.nodes_written
        patch.leaves += serializer.leaves_written
        return index

    # -- top-level (direct pointing) updates ------------------------------------

    def _stage_toplevel_range(self, prefix: Prefix, patch: _Patch) -> None:
        """Stage a rewrite of the direct-array slice covered by a prefix
        with length ≤ s.

        The paper replaces the entire 2^s array in this case; rewriting the
        covered slice has the same observable result and the same accounting
        (one top-level replacement event).
        """
        trie = self.trie
        s, width = trie.s, trie.width
        base = prefix.value >> (width - s)
        span = 1 << (s - prefix.length)
        for i in range(base, base + span):
            entry = trie.direct[i]
            if not entry & DIRECT_LEAF:
                patch.frees.extend(self._collect_blocks(entry))
                patch.frees.append(("nodes", entry, 1))
        rnode, inherited = self._radix_at(prefix, prefix.length)
        self._stage_direct_range(rnode, prefix.length, base, inherited, patch)
        patch.toplevel = 1

    def _stage_direct_range(
        self,
        node: Optional[RibNode],
        depth: int,
        base: int,
        inherited: int,
        patch: _Patch,
    ) -> None:
        trie = self.trie
        if node is not None and node.route != NO_ROUTE:
            inherited = node.route
        if depth == trie.s:
            if node is not None and not node.is_leaf():
                patch.direct_writes.append(
                    (base, self._stage_subtree(node, inherited, patch))
                )
            else:
                patch.direct_writes.append((base, DIRECT_LEAF | inherited))
            return
        if node is None:
            span = 1 << (trie.s - depth)
            patch.direct_fills.append((base, span, DIRECT_LEAF | inherited))
            return
        half = 1 << (trie.s - depth - 1)
        self._stage_direct_range(node.left, depth + 1, base, inherited, patch)
        self._stage_direct_range(node.right, depth + 1, base + half, inherited, patch)

    def _stage_direct_entry(self, prefix: Prefix, patch: _Patch) -> None:
        """Stage an update under exactly one direct entry (prefix longer
        than s)."""
        trie = self.trie
        index = prefix.value >> (trie.width - trie.s)
        entry = trie.direct[index]
        rnode, inherited = self._radix_at(prefix, trie.s)
        effective = inherited
        if rnode is not None and rnode.route != NO_ROUTE:
            effective = rnode.route
        subtree_needed = rnode is not None and not rnode.is_leaf()
        if entry & DIRECT_LEAF:
            if subtree_needed:
                patch.direct_writes.append(
                    (index, self._stage_subtree(rnode, effective, patch))
                )
            else:
                patch.direct_writes.append((index, DIRECT_LEAF | effective))
            return
        if not subtree_needed:
            # The subtree collapsed to a single leaf: store the FIB index
            # directly (the paper's "leaf brought to the upper level" case,
            # taken all the way to the direct array) and free the subtree
            # once the new entry is published.
            patch.frees.extend(self._collect_blocks(entry))
            patch.frees.append(("nodes", entry, 1))
            patch.direct_writes.append((index, DIRECT_LEAF | effective))
            return
        self._stage_refine(entry, rnode, inherited, trie.s, prefix, patch)

    # -- subtree refinement -------------------------------------------------

    def _stage_refine(
        self,
        index: int,
        rnode: Optional[RibNode],
        inherited: int,
        offset: int,
        prefix: Prefix,
        patch: _Patch,
    ) -> None:
        """Descend while the node's shape is unchanged, then stage a rebuild
        of the deepest affected subtree in place at ``index``."""
        trie = self.trie
        k = trie.k
        use_leafvec = trie.config.use_leafvec
        while True:
            slots = builder.expand_chunk(rnode, inherited, k)
            shallow = builder.make_shallow(slots, use_leafvec)
            old_sig = (trie.vec[index], trie.lvec[index] if use_leafvec else 0)
            if shallow.shallow_signature() != old_sig:
                break
            if prefix.length <= offset + k:
                break
            v = _chunk_of(prefix, offset, k)
            if not (trie.vec[index] >> v) & 1:
                break
            rank = (trie.vec[index] & ((2 << v) - 1)).bit_count() - 1
            child_index = trie.base1[index] + rank
            rnode, inherited = _walk_chunk(rnode, inherited, v, k)
            index = child_index
            offset += k
        # Stage the in-place replacement: emit the new subtree's descendants
        # into fresh blocks, keep the root slot, and defer the root write —
        # the single atomic publication — to the commit phase.
        patch.frees.extend(self._collect_blocks(index))
        tmp = builder.expand_node(rnode, inherited, trie.k, trie.config.use_leafvec)
        serializer = builder.Serializer(trie)
        fields = serializer.serialize_fields(tmp)
        patch.node_write = (index, *fields)
        patch.inodes += serializer.nodes_written
        patch.leaves += serializer.leaves_written

    def _collect_blocks(self, index: int) -> List[Tuple[str, int, int]]:
        """Blocks owned by the subtree at ``index`` (excluding its own slot)."""
        trie = self.trie
        blocks: List[Tuple[str, int, int]] = []
        stack = [index]
        while stack:
            at = stack.pop()
            vector = trie.vec[at]
            leaf_count = self._leaf_count_of(at)
            if leaf_count:
                blocks.append(("leaves", trie.base0[at], leaf_count))
            child_count = vector.bit_count()
            if child_count:
                blocks.append(("nodes", trie.base1[at], child_count))
                stack.extend(trie.base1[at] + i for i in range(child_count))
        return blocks

    def _leaf_count_of(self, index: int) -> int:
        trie = self.trie
        if trie.config.use_leafvec:
            return trie.lvec[index].bit_count()
        return (1 << trie.k) - trie.vec[index].bit_count()


def _chunk_of(prefix: Prefix, offset: int, k: int) -> int:
    """The k-bit chunk of ``prefix.value`` at bit offset ``offset``."""
    from repro.net.ip import extract

    return extract(prefix.value, offset, k, prefix.width)


def _walk_chunk(
    node: Optional[RibNode], inherited: int, v: int, k: int
) -> Tuple[Optional[RibNode], int]:
    """Walk ``k`` bits of value ``v`` down the radix tree, tracking the best
    route seen *before* the destination node (its inherited index)."""
    cur = node
    for i in range(k):
        if cur is None:
            return None, inherited
        if cur.route != NO_ROUTE:
            inherited = cur.route
        cur = cur.child((v >> (k - 1 - i)) & 1)
    return cur, inherited
