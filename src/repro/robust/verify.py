"""Invariant self-verification of a compiled Poptrie.

The update path *asserts* that readers always see a structure equivalent
to the RIB; this module *proves* it on demand.  :func:`verify_poptrie`
checks, in order:

1. **Shape** — the direct array has exactly ``2^s`` entries and every
   non-leaf entry targets a distinct node index inside the node space.
2. **Node invariants** — for every node reachable from the roots:
   ``vector`` and ``leafvec`` are disjoint (a slot is either a descendant
   internal node or part of a leaf run, never both); every leaf slot has a
   leafvec run start at or below it, so Algorithm 2's popcount never
   underflows; ``base1 + popcount(vector)`` and ``base0 + leaf count``
   stay inside the arrays; and no node is reachable by two parents (the
   structure is a forest, which is what makes block freeing sound).
3. **Allocator accounting** — the buddy allocator's own structural
   invariants hold; every reachable node/leaf slot lies inside a live
   block; every live block holds at least one reachable slot (no leaks);
   and the trie's logical ``inode_count``/``leaf_count`` equal the number
   of reachable nodes/leaf slots (no lost or double-counted frees).
4. **Semantics** (when a shadow RIB is supplied) — the trie and the RIB
   agree on every route count and on longest-prefix-match results for a
   deterministic address sample: the first/last address of each route
   (covering every boundary the table defines) plus ``samples`` seeded
   uniform addresses.

Any violation raises :class:`~repro.errors.VerificationError` with a
diagnostic naming the node/block/address concerned.  On success a
:class:`VerificationReport` summarises what was checked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.poptrie import DIRECT_LEAF, Poptrie
from repro.errors import VerificationError
from repro.net.rib import Rib

#: Cap on the number of route-boundary addresses sampled in step 4; beyond
#: this the uniform sample dominates anyway and verification stays O(table).
MAX_BOUNDARY_ROUTES = 2048


@dataclass(frozen=True)
class VerificationReport:
    """What a successful verification covered."""

    nodes_checked: int
    leaves_checked: int
    node_blocks: int
    leaf_blocks: int
    samples_checked: int

    def summary(self) -> str:
        return (
            f"{self.nodes_checked} nodes, {self.leaves_checked} leaf slots, "
            f"{self.node_blocks}+{self.leaf_blocks} live blocks, "
            f"{self.samples_checked} lookups cross-checked"
        )


def _reachable_roots(trie: Poptrie) -> List[int]:
    if not trie.s:
        return [trie.root_index]
    roots: List[int] = []
    seen: Set[int] = set()
    for position, entry in enumerate(trie.direct):
        if entry & DIRECT_LEAF:
            continue
        if entry in seen:
            raise VerificationError(
                f"direct entries alias node {entry} (second at slot {position})"
            )
        seen.add(entry)
        roots.append(entry)
    return roots


def _block_cover(live: Dict[int, int], label: str) -> Dict[int, int]:
    """Map every slot of every live block to its block offset."""
    cover: Dict[int, int] = {}
    for offset, size in live.items():
        for slot in range(offset, offset + size):
            if slot in cover:
                raise VerificationError(
                    f"{label} blocks at {cover[slot]} and {offset} overlap"
                )
            cover[slot] = offset
    return cover


def verify_poptrie(
    trie: Poptrie,
    rib: Optional[Rib] = None,
    samples: int = 1000,
    seed: int = 20150817,
) -> VerificationReport:
    """Check every structural invariant of ``trie`` (and, with ``rib``,
    semantic agreement); raises :class:`VerificationError` on the first
    violation, returns a :class:`VerificationReport` otherwise."""
    k_slots = 1 << trie.k
    use_leafvec = trie.config.use_leafvec
    node_limit = min(len(trie.vec), trie.node_alloc.capacity)
    leaf_limit = min(len(trie.leaves), trie.leaf_alloc.capacity)

    # -- 1/2: walk the forest, checking per-node invariants -------------------
    roots = _reachable_roots(trie)
    reachable_nodes: Set[int] = set()
    reachable_leaves: Set[int] = set()
    stack = list(roots)
    for root in roots:
        if root >= node_limit:
            raise VerificationError(f"root node {root} out of bounds")
    while stack:
        index = stack.pop()
        if index in reachable_nodes:
            raise VerificationError(f"node {index} reachable via two parents")
        reachable_nodes.add(index)
        vector = trie.vec[index]
        leafvec = trie.lvec[index]
        if use_leafvec:
            if vector & leafvec:
                raise VerificationError(
                    f"node {index}: vector and leafvec overlap "
                    f"(slots {vector & leafvec:#x})"
                )
            for v in range(k_slots):
                if not (vector >> v) & 1 and not leafvec & ((2 << v) - 1):
                    raise VerificationError(
                        f"node {index}: leaf slot {v} has no leafvec run start"
                    )
            leaf_count = leafvec.bit_count()
        else:
            leaf_count = k_slots - vector.bit_count()
        children = vector.bit_count()
        if children:
            base1 = trie.base1[index]
            if base1 + children > node_limit:
                raise VerificationError(
                    f"node {index}: child block [{base1}, {base1 + children}) "
                    f"overflows the node space ({node_limit})"
                )
            stack.extend(base1 + i for i in range(children))
        if leaf_count:
            base0 = trie.base0[index]
            if base0 + leaf_count > leaf_limit:
                raise VerificationError(
                    f"node {index}: leaf block [{base0}, {base0 + leaf_count}) "
                    f"overflows the leaf space ({leaf_limit})"
                )
            for slot in range(base0, base0 + leaf_count):
                if slot in reachable_leaves:
                    raise VerificationError(
                        f"leaf slot {slot} shared by two nodes"
                    )
                reachable_leaves.add(slot)

    # -- 3: buddy-allocator accounting ---------------------------------------
    for label, allocator in (("node", trie.node_alloc), ("leaf", trie.leaf_alloc)):
        try:
            allocator.check_invariants()
        except AssertionError as failure:
            raise VerificationError(
                f"{label} allocator invariant violated: {failure}"
            ) from failure

    node_live = trie.node_alloc.live_blocks()
    node_cover = _block_cover(node_live, "node")
    for index in reachable_nodes:
        if index not in node_cover:
            raise VerificationError(
                f"node {index} is reachable but lies in no live block "
                "(use-after-free)"
            )
    touched = {node_cover[index] for index in reachable_nodes}
    for offset in node_live:
        if offset not in touched:
            raise VerificationError(
                f"node block at {offset} (size {node_live[offset]}) is live "
                "but unreachable (leak)"
            )
    if trie.inode_count != len(reachable_nodes):
        raise VerificationError(
            f"inode_count {trie.inode_count} != {len(reachable_nodes)} "
            "reachable nodes (lost or double-counted allocation)"
        )

    leaf_live = trie.leaf_alloc.live_blocks()
    leaf_cover = _block_cover(leaf_live, "leaf")
    for slot in reachable_leaves:
        if slot not in leaf_cover:
            raise VerificationError(
                f"leaf slot {slot} is reachable but lies in no live block "
                "(use-after-free)"
            )
    touched = {leaf_cover[slot] for slot in reachable_leaves}
    for offset in leaf_live:
        if offset not in touched:
            raise VerificationError(
                f"leaf block at {offset} (size {leaf_live[offset]}) is live "
                "but unreachable (leak)"
            )
    if trie.leaf_count != len(reachable_leaves):
        raise VerificationError(
            f"leaf_count {trie.leaf_count} != {len(reachable_leaves)} "
            "reachable leaf slots (lost or double-counted allocation)"
        )

    # -- 4: semantic agreement with the shadow RIB ----------------------------
    samples_checked = 0
    if rib is not None:
        if rib.width != trie.width:
            raise VerificationError(
                f"RIB width {rib.width} does not match trie width {trie.width}"
            )
        addresses: List[int] = []
        for position, (prefix, _) in enumerate(rib.routes()):
            if position >= MAX_BOUNDARY_ROUTES:
                break
            addresses.append(prefix.first_address())
            addresses.append(prefix.last_address())
        rng = random.Random(seed)
        limit = (1 << trie.width) - 1
        addresses.extend(rng.randint(0, limit) for _ in range(samples))
        for address in addresses:
            expected = rib.lookup(address)
            got = trie.lookup(address)
            if got != expected:
                raise VerificationError(
                    f"lookup({address:#x}) = {got}, but the RIB says "
                    f"{expected} (trie diverged from its shadow table)"
                )
        samples_checked = len(addresses)

    return VerificationReport(
        nodes_checked=len(reachable_nodes),
        leaves_checked=len(reachable_leaves),
        node_blocks=len(node_live),
        leaf_blocks=len(leaf_live),
        samples_checked=samples_checked,
    )
