"""Fault-tolerant control plane: transactions, verification, fault injection.

Three pieces, documented in ``docs/ROBUSTNESS.md``:

- :mod:`repro.robust.txn` — :class:`TransactionalPoptrie`, an
  :class:`~repro.core.update.UpdatablePoptrie` whose updates either commit
  atomically or roll RIB, trie and buddy-allocator state back, with
  graceful degradation to a full rebuild;
- :mod:`repro.robust.verify` — the invariant verifier behind
  ``Poptrie.verify(rib)`` and ``python -m repro verify``;
- :mod:`repro.robust.faults` — the :class:`FaultPlan` context manager that
  arms deterministic injection points threaded through the allocator, the
  builder, the update stream and snapshot writing.

This ``__init__`` imports only :mod:`~repro.robust.faults` eagerly: the
fault hooks are imported by low-level modules (``repro.mem.buddy``), so the
heavier submodules — which depend on those low-level modules — are exposed
lazily to keep the import graph acyclic.
"""

from repro.robust.faults import FaultPlan, active_plan, fault_point

_LAZY = {
    "Transaction": "repro.robust.txn",
    "TransactionalPoptrie": "repro.robust.txn",
    "TxnStats": "repro.robust.txn",
    "StreamReport": "repro.robust.txn",
    "VerificationReport": "repro.robust.verify",
    "verify_poptrie": "repro.robust.verify",
}

__all__ = ["FaultPlan", "active_plan", "fault_point", *_LAZY]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
