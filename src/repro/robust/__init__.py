"""Fault-tolerant control plane: transactions, durability, verification,
fault injection.

Four pieces, documented in ``docs/ROBUSTNESS.md``:

- :mod:`repro.robust.txn` — :class:`TransactionalPoptrie`, an
  :class:`~repro.core.update.UpdatablePoptrie` whose updates either commit
  atomically or roll RIB, trie and buddy-allocator state back, with
  graceful degradation to a full rebuild;
- :mod:`repro.robust.journal` — :class:`Journal`, the CRC-framed
  write-ahead log of route updates with checkpoint/truncate, and
  :func:`recover`, which rebuilds the durable state after a crash
  (``python -m repro recover``);
- :mod:`repro.robust.verify` — the invariant verifier behind
  ``Poptrie.verify(rib)`` and ``python -m repro verify``;
- :mod:`repro.robust.faults` — the :class:`FaultPlan` context manager that
  arms deterministic injection points threaded through the allocator, the
  builder, the update stream, snapshot writing, the journal (append /
  fsync / checkpoint / torn-write) and the lookup service's response path
  (connection drop, torn frame).

This ``__init__`` imports only :mod:`~repro.robust.faults` eagerly: the
fault hooks are imported by low-level modules (``repro.mem.buddy``), so the
heavier submodules — which depend on those low-level modules — are exposed
lazily to keep the import graph acyclic.
"""

from repro.robust.faults import FaultPlan, active_plan, fault_point

_LAZY = {
    "Transaction": "repro.robust.txn",
    "TransactionalPoptrie": "repro.robust.txn",
    "TxnStats": "repro.robust.txn",
    "StreamReport": "repro.robust.txn",
    "VerificationReport": "repro.robust.verify",
    "verify_poptrie": "repro.robust.verify",
    "Journal": "repro.robust.journal",
    "JournalStats": "repro.robust.journal",
    "RecoveryResult": "repro.robust.journal",
    "recover": "repro.robust.journal",
    "read_segment": "repro.robust.journal",
}

__all__ = ["FaultPlan", "active_plan", "fault_point", *_LAZY]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
