"""Transactional route updates with rollback and graceful degradation.

:class:`TransactionalPoptrie` wraps the incremental update engine of
:class:`~repro.core.update.UpdatablePoptrie` in per-update transactions:

- **Validation first.**  Malformed updates (unknown kind, bad next hop,
  withdrawal of an absent prefix, wrong address family) are rejected with
  :class:`~repro.errors.UpdateRejectedError` before anything is touched.
- **Stage, then commit.**  The update engine builds the replacement
  subtree entirely on the side (fresh buddy blocks, children before
  parents) and publishes it with one atomic write — see
  :mod:`repro.core.update`.  Every fault that can fire (allocator
  exhaustion, an exception mid-subtree-build, a structural limit) fires
  during staging, *before* anything is visible.
- **Rollback.**  A :class:`Transaction` captures the buddy allocators'
  state and the logical counters before the update and reinstates them if
  staging raises; the RIB mutation is undone by its recorded inverse.
  Because staging never writes anything a reader can see, this restores
  the *complete* pre-update state — trie, RIB and allocators.
- **Graceful degradation.**  After a failed incremental update — or when
  the update would replace more than ``rebuild_threshold`` internal nodes
  — the updater falls back to a full ``Poptrie.from_rib`` rebuild and
  swaps it in with one attribute write, recording the downgrade in
  :class:`TxnStats`.  If the rebuild *also* fails (e.g. the injected fault
  is persistent), the RIB is restored and the error propagates with the
  structure still consistent at the pre-update state.

:meth:`TransactionalPoptrie.apply_stream` replays a BGP-style update
stream under this regime, routing each message through the ``update``
fault-injection point so tests can corrupt messages on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Tuple

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.core.update import UpdatablePoptrie
from repro.data.updates import validate_update
from repro.errors import ReplaceCostExceeded, ReproError, UpdateRejectedError
from repro.mem.buddy import OutOfMemory
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.obs import tracing
from repro.robust import faults


@dataclass
class TxnStats:
    """Outcome accounting for the transactional update path."""

    commits: int = 0
    rollbacks: int = 0
    fallback_rebuilds: int = 0
    threshold_rebuilds: int = 0
    rejected: int = 0
    #: Updates refused because the write-ahead journal append failed
    #: (journal-then-publish: no durable record, no mutation).
    journal_failures: int = 0


def _count_txn(outcome: str) -> None:
    """Mirror one transactional outcome into the metrics registry.

    A no-op method call while observability is disabled (the null
    registry hands back a shared no-op counter).
    """
    from repro import obs

    obs.registry().counter(
        "repro_txn_outcomes_total",
        "Transactional update outcomes by kind.",
        outcome=outcome,
    ).inc()


@dataclass
class StreamReport:
    """What happened to each message of an :meth:`apply_stream` run."""

    applied: int = 0
    degraded: int = 0
    rejected: int = 0
    errors: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.applied + self.rejected


class Transaction:
    """A restore point for one update against an UpdatablePoptrie.

    Captures everything the staging phase can disturb: both buddy
    allocators, the trie's logical node/leaf counters, the generation
    counter and the update statistics.  Inverse RIB operations are
    appended to ``rib_undo`` by the caller as it mutates the RIB.
    ``rollback`` reinstates all of it; because staging publishes nothing,
    readers never notice that the update was ever attempted.
    """

    def __init__(self, up: UpdatablePoptrie) -> None:
        trie = up.trie
        self.up = up
        self.trie = trie
        self.node_state = trie.node_alloc.snapshot()
        self.leaf_state = trie.leaf_alloc.snapshot()
        self.inode_count = trie.inode_count
        self.leaf_count = trie.leaf_count
        self.generation = up.generation
        self.stats = replace(up.stats)
        self.rib_undo: List = []

    def rollback(self) -> None:
        trie = self.trie
        trie.node_alloc.restore(self.node_state)
        trie.leaf_alloc.restore(self.leaf_state)
        trie.inode_count = self.inode_count
        trie.leaf_count = self.leaf_count
        self.up.generation = self.generation
        self.up.stats = self.stats
        for undo in reversed(self.rib_undo):
            undo()
        self.rib_undo.clear()


class TransactionalPoptrie(UpdatablePoptrie):
    """An :class:`UpdatablePoptrie` whose updates commit or roll back.

    ``rebuild_threshold`` bounds the incremental replacement cost: an
    update that would replace more internal nodes is serviced by a full
    rebuild instead (cheaper than a giant surgical splice and it resets
    buddy fragmentation).  ``fallback_rebuild=False`` disables degradation
    so a failed incremental update propagates after rollback — useful for
    testing that rollback alone restores consistency.

    >>> up = TransactionalPoptrie()
    >>> up.announce(Prefix.parse("10.0.0.0/8"), 1)
    >>> up.lookup(Prefix.parse("10.9.9.9/32").value)
    1
    >>> up.txn_stats.commits
    1
    """

    def __init__(
        self,
        config: PoptrieConfig = PoptrieConfig(),
        width: int = 32,
        rib: Optional[Rib] = None,
        rebuild_threshold: Optional[int] = None,
        fallback_rebuild: bool = True,
        journal=None,
        trie: Optional[Poptrie] = None,
    ) -> None:
        super().__init__(config, width, rib, trie=trie)
        self.rebuild_threshold = rebuild_threshold
        self.fallback_rebuild = fallback_rebuild
        self.txn_stats = TxnStats()
        #: Optional :class:`repro.robust.journal.Journal`.  When set, every
        #: validated update is appended (journal-then-publish) before any
        #: in-memory state mutates; a failed append refuses the update.
        self.journal = journal

    # -- transactional announce/withdraw -------------------------------------

    def announce(self, prefix: Prefix, fib_index: int) -> None:
        self._transact("A", prefix, fib_index)

    def withdraw(self, prefix: Prefix) -> None:
        self._transact("W", prefix, None)

    def _transact(self, kind: str, prefix: Prefix, fib_index: Optional[int]) -> None:
        try:
            if kind == "A":
                self.check_announce(prefix, fib_index)
            elif kind == "W":
                self.check_withdraw(prefix)
            else:
                raise UpdateRejectedError(f"unknown update kind {kind!r}")
        except UpdateRejectedError:
            self.txn_stats.rejected += 1
            _count_txn("rejected")
            raise
        if self.journal is not None:
            # Journal-then-publish: the durable record must exist before
            # any in-memory state mutates.  A failed append refuses the
            # update outright — recovery then agrees with this process
            # that the update never happened.
            from repro.data.updates import Update

            try:
                self.journal.append(
                    Update(kind, prefix, fib_index if kind == "A" else 0)
                )
            except Exception:
                self.txn_stats.journal_failures += 1
                _count_txn("journal_error")
                raise
        txn = Transaction(self)
        try:
            if kind == "A":
                previous = self.rib.insert(prefix, fib_index)
                txn.rib_undo.append(self._rib_inverse("A", prefix, previous))
                if previous == fib_index:
                    self.txn_stats.commits += 1  # no structural work needed
                    _count_txn("commit")
                    return
            else:
                previous = self.rib.delete(prefix)
                txn.rib_undo.append(self._rib_inverse("W", prefix, previous))
            self._apply(prefix)
        except ReplaceCostExceeded:
            txn.rollback()
            self.txn_stats.threshold_rebuilds += 1
            _count_txn("threshold_rebuild")
            self._rebuild(kind, prefix, fib_index)
        except Exception:
            txn.rollback()
            self.txn_stats.rollbacks += 1
            _count_txn("rollback")
            if not self.fallback_rebuild:
                raise
            self.txn_stats.fallback_rebuilds += 1
            _count_txn("fallback_rebuild")
            self._rebuild(kind, prefix, fib_index)
        else:
            self.txn_stats.commits += 1
            _count_txn("commit")

    def checkpoint(self) -> str:
        """Freeze the current RIB through the attached journal.

        Requires :attr:`journal`; returns the checkpoint path.  After the
        call the journal's replayed segments are truncated, so recovery
        time is proportional to the churn since this moment.
        """
        if self.journal is None:
            raise ValueError("no journal attached to checkpoint through")
        return self.journal.checkpoint(self.rib)

    def _rib_inverse(self, kind: str, prefix: Prefix, previous: int):
        """The inverse RIB operation for an applied announce/withdraw."""
        if kind == "A" and previous == NO_ROUTE:
            return lambda: self.rib.delete(prefix)
        return lambda: self.rib.insert(prefix, previous)

    def _rebuild(self, kind: str, prefix: Prefix, fib_index: Optional[int]) -> None:
        """Degraded path: service the update with a full compile.

        Re-applies the RIB mutation, compiles a fresh Poptrie from the RIB
        and publishes it with one attribute write.  On failure the RIB is
        restored and the error propagates — the old trie was never touched,
        so the structure stays consistent at the pre-update state.
        """
        if kind == "A":
            previous = self.rib.insert(prefix, fib_index)
        else:
            previous = self.rib.delete(prefix)
        undo = self._rib_inverse(kind, prefix, previous)
        try:
            with tracing.span("txn.rebuild"):
                rebuilt = Poptrie.from_rib(self.rib, self.trie.config)
        except Exception:
            undo()
            raise
        # Carry per-instance lookup instrumentation over to the new trie so
        # an observed structure stays observed across degradation.
        if self.trie._obs_registry is not None:
            rebuilt.enable_obs(self.trie._obs_registry)
        self.trie = rebuilt  # single-reference swap: readers see old or new
        self.stats.updates += 1
        self.generation += 1
        self._publish_update_obs(0, 0, 0, engine="rebuild")

    # -- stream replay --------------------------------------------------------

    def apply_stream(self, updates: Iterable, on_error: str = "raise") -> StreamReport:
        """Apply a BGP-style update stream transactionally.

        Each message passes through the ``update`` fault-injection point
        (so an armed :class:`~repro.robust.faults.FaultPlan` can corrupt it
        in flight) and is then validated and applied under a transaction.
        ``on_error="skip"`` records failed messages in the report and keeps
        going — the production posture: one bad message must not take down
        the stream; ``on_error="raise"`` re-raises the first failure (state
        is already rolled back when it does).
        """
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', not {on_error!r}")
        report = StreamReport()
        for position, update in enumerate(updates, 1):
            update = faults.mangle_update(update)
            degradations = (
                self.txn_stats.fallback_rebuilds + self.txn_stats.threshold_rebuilds
            )
            try:
                try:
                    validate_update(update)
                except UpdateRejectedError as error:
                    self.txn_stats.rejected += 1
                    _count_txn("rejected")
                    raise UpdateRejectedError(
                        f"message {position}: {error}"
                    ) from error
                if update.kind == "A":
                    self.announce(update.prefix, update.nexthop)
                else:
                    self.withdraw(update.prefix)
            except (ReproError, OutOfMemory) as error:
                report.rejected += 1
                report.errors.append((position, f"{type(error).__name__}: {error}"))
                if on_error == "raise":
                    raise
            else:
                report.applied += 1
                if (
                    self.txn_stats.fallback_rebuilds
                    + self.txn_stats.threshold_rebuilds
                ) > degradations:
                    report.degraded += 1
        return report
