"""Write-ahead journal for route updates: durability across crashes.

The transactional control plane (:mod:`repro.robust.txn`) guarantees that
an update either commits atomically or leaves no trace — *within one
process lifetime*.  A crash still loses every update since the last
explicit snapshot.  This module closes that gap with the classic
journal-then-publish discipline:

1. every validated update is **appended** to an on-disk journal (and
   optionally fsynced) *before* the in-memory structures mutate;
2. a **checkpoint** periodically freezes the full RIB to disk and
   truncates the journal segments it covers;
3. **recovery** loads the newest checkpoint and replays the journal tail
   through the update engine, yielding exactly the state the crashed
   process had durably committed.

On-disk layout (all integers little-endian)::

    <dir>/wal-<base>.log          journal segments, append-only
    <dir>/checkpoint-<seq>.tbl    RIB snapshots (binary RPIMG001 rib
                                  images; legacy text snapshots are still
                                  read — tableio.load_table sniffs)

    segment  = magic "RJOURNL1" | u64 base-seqno | record*
    record   = u32 payload-length | u32 crc32(payload) | payload
    payload  = u8 kind (0=announce, 1=withdraw) | u8 width | u8 plen
             | u8 reserved | u32 nexthop | u128 prefix value (big-endian)

Sequence numbers are 1-based and global across segments: segment
``wal-<base>.log`` holds records ``base, base+1, ...`` in order.  A
checkpoint named ``checkpoint-<seq>.tbl`` contains every update with
sequence number ``<= seq`` folded into its RIB, so replay applies only
records with higher sequence numbers.

Crash anatomy — what recovery tolerates, and what it refuses:

- **Torn tail** (crash mid-append): the final record of the *newest*
  segment is incomplete.  Recovery discards it and reports the count;
  the journal, reopened for appending, truncates it so new records never
  land after garbage.  By journal-then-publish ordering the torn update
  never committed, so discarding it is exactly right.
- **Torn checkpoint** (crash mid-checkpoint): checkpoints are written to
  a temporary name, fsynced, then atomically renamed, so a torn one is
  invisible; if the newest checkpoint is nonetheless unreadable,
  recovery falls back to the previous one (older segments are only
  deleted *after* the new checkpoint is durable, so the longer tail is
  still there to replay).
- **Anything else** — a CRC mismatch on a complete record, damage in a
  non-final segment, a gap in the segment sequence — raises
  :class:`~repro.errors.JournalCorrupt`: the update history can no
  longer be trusted and rebuilding a silently wrong table is worse than
  stopping.

Fault injection: :class:`~repro.robust.faults.FaultPlan` arms the
``journal`` (append), ``fsync``, ``checkpoint`` and ``torn-journal``
sites threaded through this module, so tests — and the chaos harness in
``tests/test_chaos_server.py`` — can crash the pipeline at every
interesting instant and assert recovery is exact.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.data import tableio
from repro.data.updates import Update
from repro.errors import JournalCorrupt, JournalGap
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.robust import faults

MAGIC = b"RJOURNL1"

_SEG_HEADER = struct.Struct("<Q")           # base sequence number
_RECORD = struct.Struct("<II")              # payload length, crc32(payload)
_PAYLOAD = struct.Struct("<BBBBI")          # kind, width, plen, reserved, hop
_VALUE_BYTES = 16                           # prefix value, big-endian u128

_HEADER_BYTES = len(MAGIC) + _SEG_HEADER.size
_PAYLOAD_BYTES = _PAYLOAD.size + _VALUE_BYTES
_RECORD_BYTES = _RECORD.size + _PAYLOAD_BYTES

#: Sanity bound on one record's payload; a length field outside this range
#: is corruption, not an allocation request.
MAX_PAYLOAD_BYTES = 1 << 10

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_CHECKPOINT_PREFIX = "checkpoint-"
_CHECKPOINT_SUFFIX = ".tbl"

_KIND_CODE = {"A": 0, "W": 1}
_CODE_KIND = {0: "A", 1: "W"}


def _segment_name(base: int) -> str:
    return f"{_SEGMENT_PREFIX}{base:020d}{_SEGMENT_SUFFIX}"


def _checkpoint_name(seqno: int) -> str:
    return f"{_CHECKPOINT_PREFIX}{seqno:020d}{_CHECKPOINT_SUFFIX}"


def encode_update(update: Update) -> bytes:
    """One update as a journal record payload (stable wire format)."""
    prefix = update.prefix
    kind = _KIND_CODE.get(update.kind)
    if kind is None:
        raise ValueError(f"cannot journal update kind {update.kind!r}")
    nexthop = update.nexthop if update.kind == "A" else 0
    if not 0 <= nexthop < (1 << 32):
        raise ValueError(f"cannot journal next hop {nexthop}")
    return _PAYLOAD.pack(
        kind, prefix.width, prefix.length, 0, nexthop
    ) + prefix.value.to_bytes(_VALUE_BYTES, "big")


def decode_update(payload: bytes) -> Update:
    """Invert :func:`encode_update`; raises :class:`JournalCorrupt`."""
    if len(payload) != _PAYLOAD_BYTES:
        raise JournalCorrupt(
            f"record payload is {len(payload)} bytes, "
            f"expected {_PAYLOAD_BYTES}"
        )
    code, width, plen, _reserved, nexthop = _PAYLOAD.unpack_from(payload)
    kind = _CODE_KIND.get(code)
    value = int.from_bytes(payload[_PAYLOAD.size:], "big")
    if kind is None or width not in (32, 128) or plen > width:
        raise JournalCorrupt(
            f"record decodes to no valid update "
            f"(kind={code}, width={width}, plen={plen})"
        )
    try:
        prefix = Prefix(value, plen, width)
    except ValueError as error:
        raise JournalCorrupt(f"record holds a bad prefix: {error}") from None
    return Update(kind, prefix, nexthop)


def _frame(payload: bytes) -> bytes:
    return _RECORD.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class SegmentInfo:
    """What one pass over a segment file found."""

    path: str
    base: int
    updates: List[Update]
    #: Bytes of an incomplete trailing record (0 when the file ends on a
    #: record boundary).  Only ever tolerated on the newest segment.
    torn_bytes: int = 0

    @property
    def count(self) -> int:
        return len(self.updates)

    @property
    def next_seqno(self) -> int:
        return self.base + len(self.updates)


def read_segment(path: str, tail_ok: bool = False) -> SegmentInfo:
    """Read one segment; raises :class:`JournalCorrupt` on real damage.

    ``tail_ok`` permits an *incomplete* final record (crash mid-append):
    it is reported via :attr:`SegmentInfo.torn_bytes` instead of raising.
    A complete record with a CRC mismatch is never tolerated — a partial
    ``write()`` produces a short file, not a full frame of garbage, so a
    bad CRC on a complete frame means real corruption.
    """
    with open(path, "rb") as stream:
        blob = stream.read()
    name = os.path.basename(path)
    if len(blob) < _HEADER_BYTES or blob[: len(MAGIC)] != MAGIC:
        raise JournalCorrupt(f"{name}: bad segment header")
    (base,) = _SEG_HEADER.unpack_from(blob, len(MAGIC))
    if base < 1:
        raise JournalCorrupt(f"{name}: impossible base seqno {base}")
    updates: List[Update] = []
    offset = _HEADER_BYTES
    total = len(blob)
    while offset < total:
        start = offset
        if total - offset < _RECORD.size:
            if tail_ok:
                return SegmentInfo(path, base, updates, total - start)
            raise JournalCorrupt(
                f"{name}: truncated record header at byte {start}"
            )
        length, crc = _RECORD.unpack_from(blob, offset)
        offset += _RECORD.size
        if not 1 <= length <= MAX_PAYLOAD_BYTES:
            raise JournalCorrupt(
                f"{name}: impossible record length {length} at byte {start}"
            )
        if total - offset < length:
            if tail_ok:
                return SegmentInfo(path, base, updates, total - start)
            raise JournalCorrupt(
                f"{name}: truncated record payload at byte {start}"
            )
        payload = blob[offset:offset + length]
        offset += length
        if zlib.crc32(payload) != crc:
            raise JournalCorrupt(
                f"{name}: CRC mismatch in record #{len(updates) + 1} "
                f"(seqno {base + len(updates)})"
            )
        updates.append(decode_update(payload))
    return SegmentInfo(path, base, updates, 0)


def _scan(directory: str) -> Tuple[List[Tuple[int, str]], List[Tuple[int, str]]]:
    """``(checkpoints, segments)`` as sorted ``(seqno/base, path)`` lists."""
    checkpoints: List[Tuple[int, str]] = []
    segments: List[Tuple[int, str]] = []
    for entry in os.listdir(directory):
        path = os.path.join(directory, entry)
        if entry.startswith(_SEGMENT_PREFIX) and entry.endswith(_SEGMENT_SUFFIX):
            digits = entry[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        elif entry.startswith(_CHECKPOINT_PREFIX) and entry.endswith(
            _CHECKPOINT_SUFFIX
        ):
            digits = entry[len(_CHECKPOINT_PREFIX):-len(_CHECKPOINT_SUFFIX)]
        else:
            continue  # temporaries, DONE markers, unrelated files
        try:
            number = int(digits)
        except ValueError:
            raise JournalCorrupt(f"unparseable journal file name {entry!r}")
        (segments if entry.startswith(_SEGMENT_PREFIX) else checkpoints).append(
            (number, path)
        )
    return sorted(checkpoints), sorted(segments)


@dataclass
class JournalStats:
    """Write-side accounting, mirrored into :mod:`repro.obs`."""

    appends: int = 0
    bytes_written: int = 0
    fsyncs: int = 0
    rotations: int = 0
    checkpoints: int = 0
    #: Torn-tail bytes truncated when the journal was (re)opened.
    torn_bytes_discarded: int = 0
    #: Flushes whose fsync exceeded the stall threshold — the journal's
    #: backpressure signal: a slow disk shows up here before it shows up
    #: as update-latency tail.
    flush_stalls: int = 0


class Journal:
    """An append-only, CRC-framed, segment-rotated route-update log.

    ``fsync_every`` batches durability: every Nth append fsyncs (1 = every
    append, the safest and slowest; 0 = never fsync implicitly — callers
    own :meth:`flush`).  ``segment_bytes`` bounds one segment file; the
    journal rotates to a fresh segment beyond it so checkpoint truncation
    reclaims space in units smaller than "everything".

    >>> import tempfile
    >>> d = tempfile.mkdtemp()
    >>> journal = Journal(d)
    >>> journal.append(Update("A", Prefix.parse("10.0.0.0/8"), 1))
    1
    >>> journal.append(Update("W", Prefix.parse("10.0.0.0/8")))
    2
    >>> journal.close()
    >>> Journal(d).last_seqno          # reopening resumes the sequence
    2
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync_every: int = 1,
        segment_bytes: int = 1 << 20,
    ) -> None:
        if fsync_every < 0:
            raise ValueError("fsync_every must be >= 0")
        if segment_bytes < _RECORD_BYTES:
            raise ValueError(f"segment_bytes must be >= {_RECORD_BYTES}")
        self.directory = directory
        self.fsync_every = fsync_every
        self.segment_bytes = segment_bytes
        self.stats = JournalStats()
        self._stream = None
        self._stream_bytes = 0
        self._unsynced = 0
        self._unsynced_bytes = 0
        #: An fsync slower than this (seconds) counts as a flush stall.
        #: 10 ms is ~2 spinning-disk seeks — anything beyond it means the
        #: device is queueing and update latency is about to follow.
        self.stall_threshold_s = 0.010
        os.makedirs(directory, exist_ok=True)
        self._recover_append_position()

    # -- opening ------------------------------------------------------------

    def _recover_append_position(self) -> None:
        """Find the next sequence number; truncate a torn tail in place."""
        checkpoints, segments = _scan(self.directory)
        self.checkpoint_seqno = checkpoints[-1][0] if checkpoints else 0
        if not segments:
            self.last_seqno = self.checkpoint_seqno
            self._segment_path = None
            return
        base, path = segments[-1]
        info = read_segment(path, tail_ok=True)
        if info.torn_bytes:
            valid = os.path.getsize(path) - info.torn_bytes
            with open(path, "rb+") as stream:
                stream.truncate(valid)
                stream.flush()
                os.fsync(stream.fileno())
            self.stats.torn_bytes_discarded += info.torn_bytes
        self.last_seqno = info.next_seqno - 1
        self._segment_path = path

    def _open_segment(self) -> None:
        base = self.last_seqno + 1
        path = os.path.join(self.directory, _segment_name(base))
        self._stream = open(path, "ab")
        if self._stream.tell() == 0:
            self._stream.write(MAGIC + _SEG_HEADER.pack(base))
            self._stream.flush()
        self._stream_bytes = self._stream.tell()
        self._segment_path = path

    def _ensure_stream(self) -> None:
        if self._stream is not None:
            return
        if self._segment_path is not None:
            # Resume the segment found at open time (its base is already
            # on disk; appends continue its sequence).
            self._stream = open(self._segment_path, "ab")
            self._stream_bytes = self._stream.tell()
        else:
            self._open_segment()

    # -- the write path -----------------------------------------------------

    def append(self, update: Update) -> int:
        """Durably log one update; returns its sequence number.

        The record is on its way to disk *before* the caller mutates any
        in-memory state — journal-then-publish.  Raises whatever the
        filesystem raises (and the armed :class:`FaultPlan`'s ``journal``
        / ``torn-journal`` faults); the caller must treat any failure as
        "this update did not happen".
        """
        faults.fault_point("journal")
        payload = encode_update(update)
        record = _frame(payload)
        self._ensure_stream()
        if self._stream_bytes >= self.segment_bytes:
            self._rotate()
        torn = faults.torn_journal_write(record)
        if torn is not None:
            # Model a crash mid-write: the partial record reaches the
            # file, then the process "dies" (the injected fault).  The
            # journal object is unusable from here on, like the process.
            self._stream.write(torn)
            self._stream.flush()
            os.fsync(self._stream.fileno())
            from repro.errors import InjectedFault

            raise InjectedFault(
                f"torn journal write ({len(torn)}/{len(record)} bytes)"
            )
        self._stream.write(record)
        self.last_seqno += 1
        self.stats.appends += 1
        self.stats.bytes_written += len(record)
        self._stream_bytes += len(record)
        self._unsynced += 1
        self._unsynced_bytes += len(record)
        self._count("repro_journal_appends_total")
        self._count("repro_journal_bytes_total", len(record))
        self._gauge_pending()
        if self.fsync_every and self._unsynced >= self.fsync_every:
            self.flush()
        return self.last_seqno

    def flush(self) -> int:
        """Push buffered records to stable storage (fsync).

        Returns the highest durable sequence number — after a flush
        that is ``last_seqno`` itself, which is exactly the value a
        replica acks upstream for the quorum write path.
        """
        if self._stream is None or self._unsynced == 0:
            if self._stream is not None:
                self._stream.flush()
            return self.last_seqno
        self._stream.flush()
        faults.fault_point("fsync")
        started = time.perf_counter()
        os.fsync(self._stream.fileno())
        stalled = time.perf_counter() - started > self.stall_threshold_s
        self.stats.fsyncs += 1
        self._unsynced = 0
        self._unsynced_bytes = 0
        self._count("repro_journal_fsyncs_total")
        if stalled:
            self.stats.flush_stalls += 1
            self._count("repro_journal_flush_stalls_total")
        self._gauge_pending()
        return self.last_seqno

    def _rotate(self) -> None:
        self.flush()
        self._stream.close()
        self._stream = None
        self.stats.rotations += 1
        self._open_segment()

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self, rib: Rib) -> str:
        """Freeze ``rib`` (the state as of :attr:`last_seqno`) and truncate.

        Write order is what makes this crash-safe: the snapshot goes to a
        temporary file, is fsynced, and only then atomically renamed into
        place; segments and the previous checkpoint are deleted *after*
        the rename.  A crash at any instant leaves either the old
        checkpoint with its full tail, or the new checkpoint (possibly
        with already-covered segments, which replay skips by seqno).
        Returns the checkpoint path.
        """
        self.flush()
        seqno = self.last_seqno
        final = os.path.join(self.directory, _checkpoint_name(seqno))
        tmp = final + ".tmp"
        with open(tmp, "wb") as stream:
            tableio.save_table_image(rib, stream)
            stream.flush()
            os.fsync(stream.fileno())
        try:
            faults.fault_point("checkpoint")
        except Exception:
            os.unlink(tmp)
            raise
        os.replace(tmp, final)
        self._fsync_directory()
        # The snapshot is durable: every segment record is <= seqno by
        # construction, so all segments (and older checkpoints) are dead.
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        checkpoints, segments = _scan(self.directory)
        for _, path in segments:
            os.unlink(path)
        for number, path in checkpoints:
            if number != seqno:
                os.unlink(path)
        self._segment_path = None
        self.checkpoint_seqno = seqno
        self.stats.checkpoints += 1
        self._count("repro_journal_checkpoints_total")
        return final

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def install_checkpoint(self, rib: Rib, seqno: int) -> str:
        """Adopt an externally supplied snapshot as the journal's new base.

        Unlike :meth:`checkpoint` — which freezes *this* journal's state
        at its own :attr:`last_seqno` — this installs a snapshot produced
        elsewhere (a replication primary) together with the sequence
        number it covers, discarding every local segment and older
        checkpoint.  The journal's sequence resumes at ``seqno``; a
        replica that re-synchronises this way can itself be promoted and
        keep appending with globally consistent sequence numbers.
        """
        if seqno < 0:
            raise ValueError("checkpoint seqno must be >= 0")
        self.close()
        final = os.path.join(self.directory, _checkpoint_name(seqno))
        tmp = final + ".tmp"
        with open(tmp, "wb") as stream:
            tableio.save_table_image(rib, stream)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, final)
        self._fsync_directory()
        checkpoints, segments = _scan(self.directory)
        for _, path in segments:
            os.unlink(path)
        for number, path in checkpoints:
            if number != seqno:
                os.unlink(path)
        self._segment_path = None
        self.checkpoint_seqno = seqno
        self.last_seqno = seqno
        self.stats.checkpoints += 1
        self._count("repro_journal_checkpoints_total")
        return final

    # -- lifecycle / introspection ------------------------------------------

    @property
    def applied_seqno(self) -> int:
        """The durable tail position: highest sequence number on disk.

        Stable watermark for replication and tests — replicas compare
        theirs against the primary's to measure lag, and promotion elects
        the highest.  Identical to :attr:`last_seqno` today; exposed under
        the watermark name so callers don't depend on the write-side
        attribute staying the tail position forever.
        """
        return self.last_seqno

    def close(self) -> None:
        stream = self._stream
        if stream is not None:
            self.flush()
            self._stream = None
            stream.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def describe(self) -> dict:
        """JSON-ready state + stats snapshot."""
        return {
            "directory": self.directory,
            "last_seqno": self.last_seqno,
            "applied_seqno": self.applied_seqno,
            "checkpoint_seqno": self.checkpoint_seqno,
            "tail_records": self.last_seqno - self.checkpoint_seqno,
            "fsync_every": self.fsync_every,
            "segment_bytes": self.segment_bytes,
            "appends": self.stats.appends,
            "bytes_written": self.stats.bytes_written,
            "fsyncs": self.stats.fsyncs,
            "rotations": self.stats.rotations,
            "checkpoints": self.stats.checkpoints,
            "torn_bytes_discarded": self.stats.torn_bytes_discarded,
            "flush_stalls": self.stats.flush_stalls,
            "pending_fsync_bytes": self.pending_fsync_bytes,
        }

    @property
    def pending_fsync_bytes(self) -> int:
        """Bytes appended but not yet fsynced — the write-side queue
        depth.  Nonzero between flushes whenever ``fsync_every > 1`` (or
        0, caller-owned flushing); sustained growth means the flush
        cadence is losing to the append rate."""
        return self._unsynced_bytes

    def _count(self, name: str, amount: int = 1) -> None:
        from repro import obs

        obs.registry().counter(
            name, "Route-update journal write-side totals.",
            journal=os.path.basename(os.path.normpath(self.directory)),
        ).inc(amount)

    def _gauge_pending(self) -> None:
        from repro import obs

        obs.registry().gauge(
            "repro_journal_pending_fsync_bytes",
            "Bytes appended to the journal but not yet fsynced.",
            journal=os.path.basename(os.path.normpath(self.directory)),
        ).set(self._unsynced_bytes)


# -- recovery ------------------------------------------------------------------


@dataclass
class RecoveryResult:
    """Everything :func:`recover` reconstructed, plus how it went."""

    #: The recovered control plane (RIB + compiled trie), ready to serve
    #: and to journal further updates once a :class:`Journal` is attached.
    trie: "object"
    checkpoint_seqno: int = 0
    checkpoint_path: Optional[str] = None
    #: Checkpoints that existed but could not be read (fell back past them).
    checkpoints_skipped: int = 0
    #: Highest durable sequence number (checkpoint + replayed tail).
    last_seqno: int = 0
    #: Tail records replayed through the update engine.
    replayed: int = 0
    #: Replayed records the update engine rejected (identical to how the
    #: original process rejected them — state-level failures replay
    #: deterministically).
    skipped: int = 0
    #: Bytes of a torn final record discarded from the newest segment.
    torn_bytes: int = 0
    segments: int = 0
    duration_s: float = 0.0
    errors: List[str] = field(default_factory=list)

    @property
    def rib(self) -> Rib:
        return self.trie.rib

    @property
    def applied_seqno(self) -> int:
        """Watermark of the recovered state: every update with sequence
        number ``<= applied_seqno`` is folded into :attr:`rib`."""
        return self.last_seqno

    def describe(self) -> dict:
        return {
            "checkpoint_seqno": self.checkpoint_seqno,
            "checkpoint": self.checkpoint_path,
            "checkpoints_skipped": self.checkpoints_skipped,
            "last_seqno": self.last_seqno,
            "applied_seqno": self.applied_seqno,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "torn_bytes": self.torn_bytes,
            "segments": self.segments,
            "routes": len(self.rib),
            "duration_s": round(self.duration_s, 6),
        }


def recover(
    directory: str,
    *,
    config=None,
    width: int = 32,
    verify: bool = True,
    samples: int = 500,
) -> RecoveryResult:
    """Rebuild the durable state from a journal directory.

    Loads the newest readable checkpoint (falling back to older ones if
    the newest is damaged), replays the journal tail through the
    transactional update engine, and — with ``verify=True`` — proves the
    result with :meth:`Poptrie.verify` against the recovered RIB.

    An empty directory recovers to an empty width-``width`` table at
    sequence number 0; real corruption raises
    :class:`~repro.errors.JournalCorrupt`.  Recovery is idempotent:
    replaying the same journal twice yields the same state.
    """
    from repro.core.poptrie import PoptrieConfig
    from repro.errors import TableFormatError
    from repro.robust.txn import TransactionalPoptrie

    started = time.perf_counter()
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"no journal directory {directory!r}")
    checkpoints, segments = _scan(directory)

    rib: Optional[Rib] = None
    result = RecoveryResult(trie=None)
    for seqno, path in reversed(checkpoints):
        try:
            rib = tableio.load_table(path)
        except (TableFormatError, OSError) as error:
            result.checkpoints_skipped += 1
            result.errors.append(f"{os.path.basename(path)}: {error}")
            continue
        result.checkpoint_seqno = seqno
        result.checkpoint_path = path
        break
    if rib is None:
        if result.checkpoints_skipped:
            raise JournalCorrupt(
                f"no readable checkpoint in {directory!r}: "
                + "; ".join(result.errors)
            )
        rib = Rib(width=width)

    # Gather the tail.  Segments must chain: each one starts where the
    # previous ended; the first must not start beyond the checkpoint+1.
    tail: List[Update] = []
    next_expected: Optional[int] = None
    for position, (base, path) in enumerate(segments):
        last = position == len(segments) - 1
        info = read_segment(path, tail_ok=last)
        if base != info.base:  # pragma: no cover - name/header cross-check
            raise JournalCorrupt(
                f"{os.path.basename(path)}: header base {info.base} "
                f"disagrees with file name"
            )
        if next_expected is not None and base != next_expected:
            raise JournalCorrupt(
                f"{os.path.basename(path)}: segment starts at seqno {base}, "
                f"expected {next_expected} (missing segment?)"
            )
        if next_expected is None and base > result.checkpoint_seqno + 1:
            raise JournalCorrupt(
                f"{os.path.basename(path)}: first segment starts at seqno "
                f"{base} but the checkpoint covers only "
                f"{result.checkpoint_seqno} (missing segment?)"
            )
        next_expected = info.next_seqno
        result.torn_bytes += info.torn_bytes
        result.segments += 1
        for offset, update in enumerate(info.updates):
            if base + offset > result.checkpoint_seqno:
                tail.append(update)

    result.last_seqno = max(
        result.checkpoint_seqno,
        next_expected - 1 if next_expected is not None else 0,
    )

    trie = TransactionalPoptrie(
        config=config or PoptrieConfig(), width=rib.width, rib=rib
    )
    report = trie.apply_stream(tail, on_error="skip")
    result.trie = trie
    result.replayed = report.applied
    result.skipped = report.rejected
    result.errors.extend(message for _, message in report.errors)
    if verify:
        trie.trie.verify(trie.rib, samples=samples)
    result.duration_s = time.perf_counter() - started
    _gauge_recovery(directory, result.duration_s)
    return result


# -- tail shipping -------------------------------------------------------------


class JournalTailer:
    """Incremental reader of a *live* journal directory: the shipping side
    of WAL replication.

    A tailer remembers the highest sequence number it has delivered
    (:attr:`position`) and, on every :meth:`poll`, parses only the bytes
    appended since its last visit — following segment rotation, tolerating
    a partially written final record (delivered once complete), and
    skipping nothing:

    >>> import tempfile
    >>> d = tempfile.mkdtemp()
    >>> journal = Journal(d, segment_bytes=64)     # rotate every ~2 records
    >>> tailer = JournalTailer(d)
    >>> for i in range(5):
    ...     _ = journal.append(Update("A", Prefix(i << 24, 8), i + 1))
    >>> journal.flush()
    >>> [seqno for seqno, _ in tailer.poll()]
    [1, 2, 3, 4, 5]
    >>> tailer.poll()                              # nothing new
    []

    When the writer checkpoints, it deletes every segment — a tailer that
    had not finished them can no longer be served incrementally and
    :meth:`poll` raises :class:`~repro.errors.JournalGap` carrying the
    checkpoint sequence number to re-synchronise from.  Real damage (CRC
    mismatch on a complete record, bad headers) still raises
    :class:`~repro.errors.JournalCorrupt`.
    """

    def __init__(self, directory: str, after_seqno: int = 0) -> None:
        if after_seqno < 0:
            raise ValueError("after_seqno must be >= 0")
        self.directory = directory
        #: Highest sequence number already delivered; poll() continues
        #: strictly after it.
        self.position = after_seqno
        self._path: Optional[str] = None
        self._offset = 0          # byte offset of the next unparsed record
        self._next = 0            # seqno of the record expected at _offset

    # -- attaching to the right segment -------------------------------------

    def _attach(self) -> bool:
        """Point at the segment holding ``position + 1``.

        Returns ``False`` when that record simply does not exist yet;
        raises :class:`JournalGap` when it can never appear (checkpoint
        truncation already folded it away).
        """
        need = self.position + 1
        checkpoints, segments = _scan(self.directory)
        checkpoint_seqno = checkpoints[-1][0] if checkpoints else 0
        if need <= checkpoint_seqno:
            raise JournalGap(
                f"records after seqno {self.position} were truncated by "
                f"checkpoint {checkpoint_seqno}; re-sync from the checkpoint",
                resync_seqno=checkpoint_seqno,
            )
        candidate: Optional[Tuple[int, str]] = None
        for base, path in segments:
            if base <= need:
                candidate = (base, path)
            elif candidate is None:
                raise JournalGap(
                    f"oldest segment starts at seqno {base} but the tail "
                    f"position is {self.position}; re-sync from the "
                    f"checkpoint",
                    resync_seqno=checkpoint_seqno,
                )
        if candidate is None:
            return False
        base, path = candidate
        self._path = path
        self._offset = _HEADER_BYTES
        self._next = base
        return True

    def _drain(self, out: List[Tuple[int, Update]],
               limit: Optional[int]) -> int:
        """Parse complete records appended to the current segment."""
        try:
            with open(self._path, "rb") as stream:
                stream.seek(self._offset)
                blob = stream.read()
        except FileNotFoundError:
            # Checkpoint truncation raced us; re-attach decides whether
            # the remaining records are gone (JournalGap) or elsewhere.
            self._path = None
            return 0
        emitted = 0
        offset = 0
        total = len(blob)
        name = os.path.basename(self._path)
        while total - offset >= _RECORD.size:
            if limit is not None and len(out) >= limit:
                break
            length, crc = _RECORD.unpack_from(blob, offset)
            if not 1 <= length <= MAX_PAYLOAD_BYTES:
                raise JournalCorrupt(
                    f"{name}: impossible record length {length} at byte "
                    f"{self._offset + offset}"
                )
            if total - offset - _RECORD.size < length:
                break  # incomplete tail: the writer is mid-append
            payload = blob[offset + _RECORD.size:offset + _RECORD.size + length]
            if zlib.crc32(payload) != crc:
                raise JournalCorrupt(
                    f"{name}: CRC mismatch at seqno {self._next}"
                )
            update = decode_update(payload)
            if self._next > self.position:
                out.append((self._next, update))
                self.position = self._next
                emitted += 1
            self._next += 1
            offset += _RECORD.size + length
        self._offset += offset
        return emitted

    def _rotate(self) -> bool:
        """Switch to the successor segment, if the writer opened one."""
        _, segments = _scan(self.directory)
        for base, path in segments:
            if base == self.position + 1 and path != self._path:
                self._path = path
                self._offset = _HEADER_BYTES
                self._next = base
                return True
        if self._path is None or not os.path.exists(self._path):
            # The segment vanished (checkpoint truncation): re-attach,
            # which either finds the data's new home or raises JournalGap.
            self._path = None
            return True
        return False

    # -- the read path -------------------------------------------------------

    def poll(self, limit: Optional[int] = None) -> List[Tuple[int, Update]]:
        """All complete ``(seqno, update)`` records appended since the
        last poll, oldest first (at most ``limit`` of them)."""
        out: List[Tuple[int, Update]] = []
        while limit is None or len(out) < limit:
            if self._path is None and not self._attach():
                break
            self._drain(out, limit)
            if limit is not None and len(out) >= limit:
                break
            if not self._rotate():
                break
        return out


def _gauge_recovery(directory: str, duration_s: float) -> None:
    from repro import obs

    obs.registry().gauge(
        "repro_journal_recovery_seconds",
        "Duration of the last journal recovery (checkpoint load + replay).",
        journal=os.path.basename(os.path.normpath(directory)),
    ).set(duration_s)
