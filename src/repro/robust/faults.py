"""Deterministic fault injection for the control plane.

A :class:`FaultPlan` is a context manager that arms *injection points*
threaded through the library:

``alloc``
    :meth:`repro.mem.buddy.BuddyAllocator.alloc` — the Nth allocation (or
    every Nth) raises :class:`~repro.errors.InjectedFault` before touching
    allocator state, modelling allocator exhaustion mid-update.
``build``
    :class:`repro.core.builder.Serializer` — the Nth node emission raises
    mid-subtree-build, modelling an exception while the replacement subtree
    is being constructed on the side.
``update``
    :meth:`repro.robust.txn.TransactionalPoptrie.apply_stream` — the Nth
    update message is *corrupted* (bad kind, negative or overflowing next
    hop, chosen by the plan's seeded RNG) instead of raising, modelling a
    malformed BGP message on the wire.
``snapshot``
    :func:`repro.core.serialize.save` / ``dump_bytes`` — the emitted blob
    is truncated by ``truncate_snapshot`` bytes, modelling a partial write
    (full disk, crash mid-write).

Only code that enters a plan ever sees a fault; the hooks are a single
``is None`` check when disarmed.  Plans nest: the innermost active plan
wins, and leaving the ``with`` block restores the previous one.

>>> from repro.mem.buddy import BuddyAllocator
>>> plan = FaultPlan(alloc_fail_every=2)
>>> with plan:
...     allocator = BuddyAllocator(capacity=16)
...     first = allocator.alloc(1)        # allocation #1: fine
...     try:
...         allocator.alloc(1)            # allocation #2: injected failure
...     except Exception as error:
...         print(error)
injected fault at alloc #2
>>> plan.fired
[('alloc', 2)]
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InjectedFault

#: The innermost armed plan, or ``None`` (the common, zero-cost case).
_ACTIVE: Optional["FaultPlan"] = None


def active_plan() -> Optional["FaultPlan"]:
    """The currently armed :class:`FaultPlan`, if any."""
    return _ACTIVE


def fault_point(site: str) -> None:
    """Hook called by instrumented code; raises when the armed plan says so."""
    plan = _ACTIVE
    if plan is not None:
        plan.hit(site)


def mangle_update(update: Any) -> Any:
    """Hook for the ``update`` site: return ``update``, possibly corrupted."""
    plan = _ACTIVE
    if plan is None:
        return update
    return plan.corrupt_update(update)


def mangle_snapshot(blob: bytes) -> bytes:
    """Hook for the ``snapshot`` site: return ``blob``, possibly truncated."""
    plan = _ACTIVE
    if plan is None or plan.truncate_snapshot is None:
        return blob
    count = plan.counters["snapshot"] = plan.counters.get("snapshot", 0) + 1
    plan.fired.append(("snapshot", count))
    drop = min(plan.truncate_snapshot, len(blob))
    return blob[: len(blob) - drop]


class FaultPlan:
    """A deterministic, seeded schedule of faults to inject.

    ``*_fail_at`` fires once, on the Nth visit (1-based) to that site;
    ``*_fail_every`` fires on every Nth visit.  ``corrupt_update_at`` /
    ``corrupt_update_every`` select which update messages of a stream are
    mangled; ``truncate_snapshot`` is the number of bytes cut from the tail
    of every snapshot written while the plan is armed.  ``fired`` logs
    ``(site, visit_count)`` for every fault actually delivered, and
    ``counters`` the total visits per site, so tests can assert a sweep
    really exercised the paths it meant to.
    """

    def __init__(
        self,
        *,
        alloc_fail_at: Optional[int] = None,
        alloc_fail_every: Optional[int] = None,
        build_fail_at: Optional[int] = None,
        build_fail_every: Optional[int] = None,
        corrupt_update_at: Optional[int] = None,
        corrupt_update_every: Optional[int] = None,
        truncate_snapshot: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self._at = {"alloc": alloc_fail_at, "build": build_fail_at,
                    "update": corrupt_update_at}
        self._every = {"alloc": alloc_fail_every, "build": build_fail_every,
                       "update": corrupt_update_every}
        for site, every in self._every.items():
            if every is not None and every <= 0:
                raise ValueError(f"{site} period must be positive")
        self.truncate_snapshot = truncate_snapshot
        self.rng = random.Random(seed)
        self.counters: Dict[str, int] = {}
        self.fired: List[Tuple[str, int]] = []
        self._previous: Optional[FaultPlan] = None

    # -- arming ---------------------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None

    # -- firing ---------------------------------------------------------------

    def _due(self, site: str, count: int) -> bool:
        at = self._at.get(site)
        every = self._every.get(site)
        return (at is not None and count == at) or (
            every is not None and count % every == 0
        )

    def hit(self, site: str) -> None:
        """Count a visit to ``site``; raise if the schedule says so."""
        count = self.counters[site] = self.counters.get(site, 0) + 1
        if self._due(site, count):
            self.fired.append((site, count))
            raise InjectedFault(f"injected fault at {site} #{count}")

    def corrupt_update(self, update: Any) -> Any:
        """Return ``update`` or a deterministically corrupted copy of it.

        Corruption modes (picked by the plan's seeded RNG) mirror malformed
        BGP messages: an unknown message kind, a negative next hop, and a
        next hop too wide for any leaf encoding.  The mangled message is
        still a well-typed ``Update`` object — it is the *validation* layer
        downstream that must catch it.
        """
        count = self.counters["update"] = self.counters.get("update", 0) + 1
        if not self._due("update", count):
            return update
        self.fired.append(("update", count))
        mode = self.rng.choice(("kind", "negative-nexthop", "huge-nexthop"))
        if mode == "kind":
            return dataclasses.replace(update, kind="?")
        if mode == "negative-nexthop":
            return dataclasses.replace(update, kind="A", nexthop=-1)
        return dataclasses.replace(update, kind="A", nexthop=1 << 40)
