"""Deterministic fault injection for the control plane.

A :class:`FaultPlan` is a context manager that arms *injection points*
threaded through the library:

``alloc``
    :meth:`repro.mem.buddy.BuddyAllocator.alloc` — the Nth allocation (or
    every Nth) raises :class:`~repro.errors.InjectedFault` before touching
    allocator state, modelling allocator exhaustion mid-update.
``build``
    :class:`repro.core.builder.Serializer` — the Nth node emission raises
    mid-subtree-build, modelling an exception while the replacement subtree
    is being constructed on the side.
``update``
    :meth:`repro.robust.txn.TransactionalPoptrie.apply_stream` — the Nth
    update message is *corrupted* (bad kind, negative or overflowing next
    hop, chosen by the plan's seeded RNG) instead of raising, modelling a
    malformed BGP message on the wire.
``snapshot``
    :func:`repro.core.serialize.save` / ``dump_bytes`` — the emitted blob
    is truncated by ``truncate_snapshot`` bytes, modelling a partial write
    (full disk, crash mid-write).
``journal``
    :meth:`repro.robust.journal.Journal.append` — the Nth append raises
    before any byte reaches the segment, modelling a failed write.
``fsync``
    :meth:`repro.robust.journal.Journal.flush` — the Nth fsync raises
    before calling ``os.fsync``, modelling a device error at the worst
    moment (records buffered but not durable).
``checkpoint``
    :meth:`repro.robust.journal.Journal.checkpoint` — the Nth checkpoint
    raises after the temporary file is written but *before* the atomic
    rename, modelling a crash mid-checkpoint (recovery must fall back to
    the previous checkpoint plus the full tail).
``conn-drop`` / ``conn-torn``
    :meth:`repro.server.service.LookupServer._respond` — the Nth response
    is dropped (connection closed before any byte) or torn (a partial
    frame is written, then the connection closed), modelling a server
    crash mid-response; clients must treat both as transport errors and
    retry on a fresh connection.
``torn-journal``
    the Nth journal append writes only the first ``torn_journal_bytes``
    bytes of the record and then raises, modelling a crash mid-append —
    exactly the damage :func:`repro.robust.journal.recover` must discard
    as a torn tail.

Only code that enters a plan ever sees a fault; the hooks are a single
``is None`` check when disarmed.  Plans nest: the innermost active plan
wins, and leaving the ``with`` block restores the previous one.

>>> from repro.mem.buddy import BuddyAllocator
>>> plan = FaultPlan(alloc_fail_every=2)
>>> with plan:
...     allocator = BuddyAllocator(capacity=16)
...     first = allocator.alloc(1)        # allocation #1: fine
...     try:
...         allocator.alloc(1)            # allocation #2: injected failure
...     except Exception as error:
...         print(error)
injected fault at alloc #2
>>> plan.fired
[('alloc', 2)]
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InjectedFault

#: The innermost armed plan, or ``None`` (the common, zero-cost case).
_ACTIVE: Optional["FaultPlan"] = None


def active_plan() -> Optional["FaultPlan"]:
    """The currently armed :class:`FaultPlan`, if any."""
    return _ACTIVE


def fault_point(site: str) -> None:
    """Hook called by instrumented code; raises when the armed plan says so."""
    plan = _ACTIVE
    if plan is not None:
        plan.hit(site)


def mangle_update(update: Any) -> Any:
    """Hook for the ``update`` site: return ``update``, possibly corrupted."""
    plan = _ACTIVE
    if plan is None:
        return update
    return plan.corrupt_update(update)


def mangle_snapshot(blob: bytes) -> bytes:
    """Hook for the ``snapshot`` site: return ``blob``, possibly truncated."""
    plan = _ACTIVE
    if plan is None or plan.truncate_snapshot is None:
        return blob
    count = plan.counters["snapshot"] = plan.counters.get("snapshot", 0) + 1
    plan.fired.append(("snapshot", count))
    drop = min(plan.truncate_snapshot, len(blob))
    return blob[: len(blob) - drop]


def torn_journal_write(record: bytes) -> Optional[bytes]:
    """Hook for the ``torn-journal`` site.

    Returns ``None`` in the common case.  When the armed plan schedules a
    torn write for this append, returns the *partial* record the journal
    must write before raising — modelling a crash mid-append.
    """
    plan = _ACTIVE
    if plan is None or plan.torn_journal_at is None:
        return None
    count = plan.counters["torn-journal"] = (
        plan.counters.get("torn-journal", 0) + 1
    )
    if count != plan.torn_journal_at:
        return None
    plan.fired.append(("torn-journal", count))
    keep = min(plan.torn_journal_bytes, max(len(record) - 1, 0))
    return record[:keep]


def connection_fault() -> Optional[Tuple[str, int]]:
    """Hook for the ``conn-drop`` / ``conn-torn`` response sites.

    Returns ``None`` (serve normally), ``("drop", 0)`` (close the
    connection without writing the response) or ``("torn", n)`` (write
    only the first ``n`` bytes of the frame, then close).
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.connection_fault()


class FaultPlan:
    """A deterministic, seeded schedule of faults to inject.

    ``*_fail_at`` fires once, on the Nth visit (1-based) to that site;
    ``*_fail_every`` fires on every Nth visit.  ``corrupt_update_at`` /
    ``corrupt_update_every`` select which update messages of a stream are
    mangled; ``truncate_snapshot`` is the number of bytes cut from the tail
    of every snapshot written while the plan is armed.  ``fired`` logs
    ``(site, visit_count)`` for every fault actually delivered, and
    ``counters`` the total visits per site, so tests can assert a sweep
    really exercised the paths it meant to.
    """

    def __init__(
        self,
        *,
        alloc_fail_at: Optional[int] = None,
        alloc_fail_every: Optional[int] = None,
        build_fail_at: Optional[int] = None,
        build_fail_every: Optional[int] = None,
        corrupt_update_at: Optional[int] = None,
        corrupt_update_every: Optional[int] = None,
        truncate_snapshot: Optional[int] = None,
        journal_fail_at: Optional[int] = None,
        journal_fail_every: Optional[int] = None,
        fsync_fail_at: Optional[int] = None,
        fsync_fail_every: Optional[int] = None,
        checkpoint_fail_at: Optional[int] = None,
        checkpoint_fail_every: Optional[int] = None,
        torn_journal_at: Optional[int] = None,
        torn_journal_bytes: int = 5,
        drop_response_at: Optional[int] = None,
        drop_response_every: Optional[int] = None,
        torn_response_at: Optional[int] = None,
        torn_response_bytes: int = 3,
        seed: int = 0,
    ) -> None:
        self._at = {"alloc": alloc_fail_at, "build": build_fail_at,
                    "update": corrupt_update_at,
                    "journal": journal_fail_at, "fsync": fsync_fail_at,
                    "checkpoint": checkpoint_fail_at}
        self._every = {"alloc": alloc_fail_every, "build": build_fail_every,
                       "update": corrupt_update_every,
                       "journal": journal_fail_every,
                       "fsync": fsync_fail_every,
                       "checkpoint": checkpoint_fail_every}
        self.torn_journal_at = torn_journal_at
        self.torn_journal_bytes = torn_journal_bytes
        self._drop_at = drop_response_at
        self._drop_every = drop_response_every
        self._torn_at = torn_response_at
        self.torn_response_bytes = torn_response_bytes
        if drop_response_every is not None and drop_response_every <= 0:
            raise ValueError("conn-drop period must be positive")
        for site, every in self._every.items():
            if every is not None and every <= 0:
                raise ValueError(f"{site} period must be positive")
        self.truncate_snapshot = truncate_snapshot
        self.rng = random.Random(seed)
        self.counters: Dict[str, int] = {}
        self.fired: List[Tuple[str, int]] = []
        self._previous: Optional[FaultPlan] = None

    # -- arming ---------------------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None

    # -- firing ---------------------------------------------------------------

    def _due(self, site: str, count: int) -> bool:
        at = self._at.get(site)
        every = self._every.get(site)
        return (at is not None and count == at) or (
            every is not None and count % every == 0
        )

    def hit(self, site: str) -> None:
        """Count a visit to ``site``; raise if the schedule says so."""
        count = self.counters[site] = self.counters.get(site, 0) + 1
        if self._due(site, count):
            self.fired.append((site, count))
            raise InjectedFault(f"injected fault at {site} #{count}")

    def connection_fault(self) -> Optional[Tuple[str, int]]:
        """Decide the fate of one server response (see the ``conn-*`` sites).

        Drop and torn faults share one visit counter (a response can only
        die one way); drop is consulted first.
        """
        count = self.counters["conn"] = self.counters.get("conn", 0) + 1
        if (self._drop_at is not None and count == self._drop_at) or (
            self._drop_every is not None and count % self._drop_every == 0
        ):
            self.fired.append(("conn-drop", count))
            return ("drop", 0)
        if self._torn_at is not None and count == self._torn_at:
            self.fired.append(("conn-torn", count))
            return ("torn", self.torn_response_bytes)
        return None

    def corrupt_update(self, update: Any) -> Any:
        """Return ``update`` or a deterministically corrupted copy of it.

        Corruption modes (picked by the plan's seeded RNG) mirror malformed
        BGP messages: an unknown message kind, a negative next hop, and a
        next hop too wide for any leaf encoding.  The mangled message is
        still a well-typed ``Update`` object — it is the *validation* layer
        downstream that must catch it.
        """
        count = self.counters["update"] = self.counters.get("update", 0) + 1
        if not self._due("update", count):
            return update
        self.fired.append(("update", count))
        mode = self.rng.choice(("kind", "negative-nexthop", "huge-nexthop"))
        if mode == "kind":
            return dataclasses.replace(update, kind="?")
        if mode == "negative-nexthop":
            return dataclasses.replace(update, kind="A", nexthop=-1)
        return dataclasses.replace(update, kind="A", nexthop=1 << 40)
