"""Networking substrate: IP addresses, prefixes, FIB and the radix-tree RIB.

This package provides the data model every lookup structure in the library
is compiled from:

- :mod:`repro.net.ip` — IPv4/IPv6 address parsing, formatting and bit algebra.
- :mod:`repro.net.prefix` — the :class:`~repro.net.prefix.Prefix` value type.
- :mod:`repro.net.fib` — the next-hop table (FIB) with interned indices.
- :mod:`repro.net.rib` — the binary radix tree holding the RIB, which is the
  source of truth that Poptrie and all baseline structures compile from
  (paper, Section 3: "the routes are preserved in a separate routing table").
"""

from repro.net.ip import (
    IPV4_BITS,
    IPV6_BITS,
    format_address,
    parse_address,
    parse_prefix,
)
from repro.net.prefix import Prefix
from repro.net.fib import NO_ROUTE, Fib, NextHop
from repro.net.rib import Rib, RibNode

__all__ = [
    "IPV4_BITS",
    "IPV6_BITS",
    "format_address",
    "parse_address",
    "parse_prefix",
    "Prefix",
    "NO_ROUTE",
    "Fib",
    "NextHop",
    "Rib",
    "RibNode",
]
