"""Networking substrate: IP addresses, prefixes, FIB and the radix-tree RIB.

This package provides the data model every lookup structure in the library
is compiled from:

- :mod:`repro.net.ip` — IPv4/IPv6 address parsing, formatting and bit algebra.
- :mod:`repro.net.prefix` — the :class:`~repro.net.prefix.Prefix` value type.
- :mod:`repro.net.values` — the typed value plane: :class:`ValueTable`
  side-tables (country codes, ACL classes, next hops...) whose dense ids
  are what lookup structures store in their leaves.  The FIB is now the
  ``"nexthop"``-kinded table (:mod:`repro.net.fib` keeps shims).
- :mod:`repro.net.rib` — the binary radix tree holding the RIB, which is the
  source of truth that Poptrie and all baseline structures compile from
  (paper, Section 3: "the routes are preserved in a separate routing table").
"""

from repro.net.ip import (
    IPV4_BITS,
    IPV6_BITS,
    format_address,
    parse_address,
    parse_prefix,
)
from repro.net.prefix import Prefix
from repro.net.values import (
    NO_ROUTE,
    NO_VALUE,
    Fib,
    NextHop,
    ValueTable,
    synthetic_fib,
    value_kind,
)
from repro.net.rib import Rib, RibNode

__all__ = [
    "IPV4_BITS",
    "IPV6_BITS",
    "format_address",
    "parse_address",
    "parse_prefix",
    "Prefix",
    "NO_ROUTE",
    "NO_VALUE",
    "Fib",
    "NextHop",
    "ValueTable",
    "synthetic_fib",
    "value_kind",
    "Rib",
    "RibNode",
]
