"""The :class:`Prefix` value type.

A prefix is an immutable ``(value, length, width)`` triple where ``value``
is the integer form of the network address (host bits zero), ``length`` is
the prefix length and ``width`` is the address family width (32 or 128).

Prefixes order lexicographically by their bit string, which makes a sorted
list of prefixes group covering prefixes next to their subtrees — handy for
building tries and for the aggregation passes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net import ip


@dataclass(frozen=True, order=False)
class Prefix:
    """An immutable IP prefix.

    >>> p = Prefix.parse("192.0.2.0/24")
    >>> p.length, p.width
    (24, 32)
    >>> p.contains_address(int(__import__("ipaddress").ip_address("192.0.2.7")))
    True
    """

    value: int
    length: int
    width: int = ip.IPV4_BITS

    def __post_init__(self) -> None:
        if not 0 <= self.length <= self.width:
            raise ValueError(f"prefix length {self.length} out of /{self.width}")
        canonical = ip.canonical_prefix_value(self.value, self.length, self.width)
        if canonical != self.value:
            raise ValueError(
                f"host bits set: value={self.value:#x} length={self.length}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse from ``"addr/len"`` text."""
        value, length, width = ip.parse_prefix(text)
        return cls(value, length, width)

    @classmethod
    def from_bits(cls, bits: str, width: int = ip.IPV4_BITS) -> "Prefix":
        """Build from a bit string such as ``"1100"`` (MSB first).

        >>> Prefix.from_bits("11000000").text
        '192.0.0.0/8'
        """
        length = len(bits)
        value = int(bits, 2) << (width - length) if length else 0
        return cls(value, length, width)

    # -- accessors ---------------------------------------------------------

    @property
    def text(self) -> str:
        """The canonical ``"addr/len"`` representation."""
        return ip.format_prefix(self.value, self.length, self.width)

    @property
    def bits(self) -> str:
        """The prefix as an MSB-first bit string of ``length`` characters."""
        if self.length == 0:
            return ""
        return format(self.value >> (self.width - self.length), f"0{self.length}b")

    def bit(self, index: int) -> int:
        """Return bit ``index`` (0 = MSB) of the prefix value."""
        if not 0 <= index < self.length:
            raise IndexError(f"bit {index} out of /{self.length}")
        return (self.value >> (self.width - 1 - index)) & 1

    # -- prefix algebra ----------------------------------------------------

    def first_address(self) -> int:
        """Lowest address covered by the prefix."""
        return self.value

    def last_address(self) -> int:
        """Highest address covered by the prefix."""
        return self.value | ip.mask_of(self.width - self.length)

    def contains_address(self, address: int) -> bool:
        """True if ``address`` falls inside this prefix."""
        if self.length == 0:
            return True
        shift = self.width - self.length
        return (address >> shift) == (self.value >> shift)

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        if other.width != self.width or other.length < self.length:
            return False
        return self.contains_address(other.value)

    def child(self, bit: int) -> "Prefix":
        """The left (``bit=0``) or right (``bit=1``) half of this prefix."""
        if self.length >= self.width:
            raise ValueError("cannot split a host prefix")
        length = self.length + 1
        value = self.value | (bit << (self.width - length))
        return Prefix(value, length, self.width)

    def parent(self) -> "Prefix":
        """The covering prefix one bit shorter."""
        if self.length == 0:
            raise ValueError("the default route has no parent")
        length = self.length - 1
        return Prefix(
            ip.canonical_prefix_value(self.value, length, self.width),
            length,
            self.width,
        )

    def sibling(self) -> "Prefix":
        """The other half of this prefix's parent."""
        if self.length == 0:
            raise ValueError("the default route has no sibling")
        flip = 1 << (self.width - self.length)
        return Prefix(self.value ^ flip, self.length, self.width)

    def sort_key(self) -> tuple:
        """Lexicographic-by-bit-string ordering key (shorter first on ties)."""
        return (self.width, self.bits)

    def __lt__(self, other: "Prefix") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Prefix({self.text!r})"
