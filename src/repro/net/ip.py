"""IPv4/IPv6 address parsing, formatting and bit-level helpers.

Addresses are represented as plain Python integers together with an address
*width* (32 for IPv4, 128 for IPv6).  Working on integers keeps the lookup
hot paths free of object allocation and mirrors how the paper's C
implementation treats the key as a machine word.

The :func:`extract` helper implements the ``extract(key, off, len)``
primitive from Algorithm 1 of the paper: it reads ``len`` bits starting at
bit offset ``off`` counted from the most significant bit, zero-padding past
the end of the address.  Zero padding matters because with direct pointing
(e.g. ``s = 16``) the 6-bit chunk offsets (16, 22, 28, ...) are not aligned
to the address width, so the final chunk of an IPv4 key reads past bit 32.
"""

from __future__ import annotations

import ipaddress

IPV4_BITS = 32
IPV6_BITS = 128

_V4_MAX = (1 << IPV4_BITS) - 1
_V6_MAX = (1 << IPV6_BITS) - 1


def mask_of(length: int) -> int:
    """Return a bit mask of ``length`` ones (``mask_of(3) == 0b111``)."""
    return (1 << length) - 1


def extract(key: int, offset: int, length: int, width: int) -> int:
    """Extract ``length`` bits of ``key`` starting ``offset`` bits from the MSB.

    ``key`` is an integer address of ``width`` bits.  Bits beyond the address
    width read as zero, matching the chunk extraction in the paper's
    Algorithm 1 when the last 6-bit chunk overruns a 32-bit IPv4 key.

    >>> extract(0b10110000, 0, 3, 8)
    5
    >>> extract(0xFFFFFFFF, 30, 6, 32)  # two real bits, four zero pads
    48
    """
    if offset >= width:
        return 0
    end = offset + length
    if end <= width:
        return (key >> (width - end)) & mask_of(length)
    # Overrun: take the available low bits and shift them up, padding zeros.
    avail = width - offset
    return (key & mask_of(avail)) << (end - width)


def canonical_prefix_value(value: int, length: int, width: int) -> int:
    """Zero out host bits so ``value`` is a valid ``length``-bit prefix value."""
    if length == 0:
        return 0
    keep = mask_of(length) << (width - length)
    return value & keep


def parse_address(text: str) -> tuple[int, int]:
    """Parse a textual IPv4/IPv6 address, returning ``(value, width)``.

    >>> parse_address("10.0.0.1")
    (167772161, 32)
    >>> parse_address("::1")
    (1, 128)
    """
    addr = ipaddress.ip_address(text)
    width = IPV4_BITS if addr.version == 4 else IPV6_BITS
    return int(addr), width


def format_address(value: int, width: int) -> str:
    """Format an integer address of the given width back to text.

    >>> format_address(167772161, 32)
    '10.0.0.1'
    """
    if width == IPV4_BITS:
        if not 0 <= value <= _V4_MAX:
            raise ValueError(f"IPv4 address out of range: {value:#x}")
        return str(ipaddress.IPv4Address(value))
    if width == IPV6_BITS:
        if not 0 <= value <= _V6_MAX:
            raise ValueError(f"IPv6 address out of range: {value:#x}")
        return str(ipaddress.IPv6Address(value))
    raise ValueError(f"unsupported address width: {width}")


def parse_prefix(text: str) -> tuple[int, int, int]:
    """Parse ``"addr/len"`` into ``(value, length, width)``.

    A bare address parses as a host prefix (/32 or /128).

    >>> parse_prefix("192.0.2.0/24")
    (3221225984, 24, 32)
    """
    if "/" in text:
        addr_text, _, len_text = text.partition("/")
        value, width = parse_address(addr_text)
        length = int(len_text)
        if not 0 <= length <= width:
            raise ValueError(f"prefix length {length} out of range for /{width}")
        canonical = canonical_prefix_value(value, length, width)
        if canonical != value:
            raise ValueError(f"host bits set in prefix {text!r}")
        return value, length, width
    value, width = parse_address(text)
    return value, width, width


def format_prefix(value: int, length: int, width: int) -> str:
    """Format an integer prefix back to ``"addr/len"`` text."""
    return f"{format_address(value, width)}/{length}"
