"""The forwarding information base (FIB) next-hop table.

Every lookup structure in this library resolves an address to a small
integer *FIB index* rather than to a next hop object directly, exactly as
the paper assumes ("Poptrie is only used to look up a FIB index for the
purpose of deciding the next hop", Section 3).  The :class:`Fib` interns
next hops and hands out dense indices.

Index ``0`` is reserved as :data:`NO_ROUTE` — the value returned when no
prefix (not even a default route) matches.  Reserving a sentinel keeps all
structures' "miss" behaviour identical and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

NO_ROUTE = 0


@dataclass(frozen=True)
class NextHop:
    """A next hop: gateway address text and egress port.

    Real routers store more (MAC rewrite info, encapsulation, counters); for
    the purposes of lookup benchmarking the identity of the next hop is what
    matters, so this stays a small value object.
    """

    gateway: str
    port: int = 0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.gateway}%{self.port}"


class Fib:
    """A next-hop table mapping dense FIB indices to next hops.

    >>> fib = Fib()
    >>> a = fib.intern(NextHop("10.0.0.1"))
    >>> b = fib.intern(NextHop("10.0.0.2"))
    >>> fib.intern(NextHop("10.0.0.1")) == a
    True
    >>> fib[a].gateway
    '10.0.0.1'
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        # Slot 0 is the NO_ROUTE sentinel; it has no next hop.
        self._entries: List[Optional[NextHop]] = [None]
        self._index: Dict[NextHop, int] = {}
        self._max_entries = max_entries

    def __len__(self) -> int:
        """Number of real next hops (the sentinel is not counted)."""
        return len(self._entries) - 1

    def __getitem__(self, index: int) -> NextHop:
        if index == NO_ROUTE:
            raise KeyError("FIB index 0 is the NO_ROUTE sentinel")
        entry = self._entries[index]
        assert entry is not None
        return entry

    def __iter__(self) -> Iterator[NextHop]:
        return iter(entry for entry in self._entries[1:] if entry is not None)

    def intern(self, nexthop: NextHop) -> int:
        """Return the FIB index for ``nexthop``, allocating one if new."""
        existing = self._index.get(nexthop)
        if existing is not None:
            return existing
        index = len(self._entries)
        if self._max_entries is not None and index > self._max_entries:
            raise OverflowError(
                f"FIB capacity exceeded ({self._max_entries} entries)"
            )
        self._entries.append(nexthop)
        self._index[nexthop] = index
        return index

    def get(self, index: int) -> Optional[NextHop]:
        """Like ``__getitem__`` but returns ``None`` for :data:`NO_ROUTE`."""
        if index == NO_ROUTE:
            return None
        return self._entries[index]


def synthetic_fib(count: int, base_port: int = 0) -> Fib:
    """Build a FIB with ``count`` distinct synthetic next hops.

    Used by the dataset generators: Table 1 of the paper characterises each
    RIB by its number of distinct next hops, which is what drives leaf
    compressibility in Poptrie.
    """
    fib = Fib()
    for i in range(count):
        fib.intern(NextHop(f"10.{(i >> 8) & 0xFF}.{i & 0xFF}.1", base_port + i))
    return fib
