"""The FIB's historical module home (see :mod:`repro.net.values`).

The value-plane redesign folded the FIB's next-hop interning into the
typed :class:`~repro.net.values.ValueTable` API: :class:`Fib` is now the
``"nexthop"``-kinded table defined there.  :data:`NO_ROUTE` and
:class:`NextHop` remain plain re-exports (they are imported throughout
the library and their meaning did not change); the table types —
``Fib`` and ``synthetic_fib`` — are PEP 562 deprecation shims pointing
at the new home.
"""

from __future__ import annotations

import warnings

from repro.net.values import NO_ROUTE, NextHop

__all__ = ["NO_ROUTE", "NextHop"]

#: Deprecated module attributes: name -> migration advice.
_DEPRECATED = ("Fib", "synthetic_fib")


def __getattr__(name: str):
    if name in _DEPRECATED:
        warnings.warn(
            f"repro.net.fib.{name} is deprecated; import it from "
            "repro.net.values (the typed ValueTable home)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.net import values

        return getattr(values, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED))
