"""The RIB: a binary radix tree over prefixes.

The paper keeps the routes "in a separate routing table (RIB: Routing
Information Base) such as radix or Patricia trie" (Section 3) and compiles
Poptrie — and, in our reproduction, every baseline structure — from it.
This module implements that substrate as a plain binary radix tree (one bit
per level).  It also provides:

- longest-prefix-match lookup (the "Radix" baseline row of Tables 2 and 3),
- :meth:`Rib.lookup_with_depth`, which reports the *binary radix depth*:
  the number of bits that had to be examined to decide the longest match.
  Section 4.1 and Figures 7 and 11 of the paper are built on this quantity,
- subtree walking primitives used by the Poptrie / Tree BitMap / SAIL / DXR
  builders (controlled prefix expansion),
- change marking used by the incremental update engine (Section 3.5).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix

#: Bytes we account per radix node: two child pointers, a parent/route word
#: and the route index — comparable to the C implementation the paper
#: benchmarks (its radix occupies ~30 MiB at 520 k routes; ours matches with
#: 24-byte nodes plus per-route overhead).
NODE_BYTES = 24


class RibNode:
    """One node of the binary radix tree.

    ``route`` is a FIB index (``NO_ROUTE`` when the node carries no route).
    ``marked`` supports the incremental-update protocol of Section 3.5: the
    update engine marks the nodes whose effective next hop changed and the
    Poptrie updater rebuilds only the corresponding subtrie.
    """

    __slots__ = ("left", "right", "route", "marked")

    def __init__(self) -> None:
        self.left: Optional[RibNode] = None
        self.right: Optional[RibNode] = None
        self.route: int = NO_ROUTE
        self.marked: bool = False

    def child(self, bit: int) -> Optional["RibNode"]:
        return self.right if bit else self.left

    def set_child(self, bit: int, node: Optional["RibNode"]) -> None:
        if bit:
            self.right = node
        else:
            self.left = node

    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class Rib:
    """A binary radix tree mapping prefixes to FIB indices.

    >>> rib = Rib(width=32)
    >>> rib.insert(Prefix.parse("10.0.0.0/8"), 1)
    0
    >>> rib.insert(Prefix.parse("10.1.0.0/16"), 2)
    0
    >>> rib.lookup(int(__import__("ipaddress").ip_address("10.1.2.3")))
    2
    >>> rib.lookup(int(__import__("ipaddress").ip_address("10.2.0.1")))
    1
    """

    def __init__(self, width: int = 32, values=None) -> None:
        self.width = width
        self.root = RibNode()
        self._route_count = 0
        self._node_count = 1
        #: Optional :class:`~repro.net.values.ValueTable` giving meaning
        #: to the route ids stored in the nodes.  ``None`` means the ids
        #: are opaque (the historical FIB-index-only mode); builders and
        #: the registry propagate a table when one is attached.
        self.values = values

    def __len__(self) -> int:
        """Number of routes currently installed."""
        return self._route_count

    @property
    def node_count(self) -> int:
        return self._node_count

    def memory_bytes(self) -> int:
        """Approximate memory footprint, for the Table 2/3 "Radix" row."""
        return self._node_count * NODE_BYTES

    # -- mutation ----------------------------------------------------------

    def insert(self, prefix: Prefix, fib_index: int) -> int:
        """Insert or replace a route; returns the previous FIB index."""
        self._check(prefix)
        if fib_index == NO_ROUTE:
            raise ValueError("use delete() to remove a route")
        node = self._descend_create(prefix)
        previous = node.route
        node.route = fib_index
        if previous == NO_ROUTE:
            self._route_count += 1
        return previous

    def delete(self, prefix: Prefix) -> int:
        """Remove a route; returns the FIB index it had.

        Raises :class:`KeyError` if the prefix is not present.  Interior
        nodes left without routes or children are pruned so the node count
        tracks the live tree.
        """
        self._check(prefix)
        path: List[Tuple[RibNode, int]] = []
        node = self.root
        for i in range(prefix.length):
            bit = prefix.bit(i)
            nxt = node.child(bit)
            if nxt is None:
                raise KeyError(prefix.text)
            path.append((node, bit))
            node = nxt
        if node.route == NO_ROUTE:
            raise KeyError(prefix.text)
        previous = node.route
        node.route = NO_ROUTE
        self._route_count -= 1
        # Prune childless, routeless nodes bottom-up.
        while path and node.is_leaf() and node.route == NO_ROUTE:
            parent, bit = path.pop()
            parent.set_child(bit, None)
            self._node_count -= 1
            node = parent
        return previous

    def get(self, prefix: Prefix) -> int:
        """Exact-match: FIB index of ``prefix`` or ``NO_ROUTE``."""
        self._check(prefix)
        node: Optional[RibNode] = self.root
        for i in range(prefix.length):
            if node is None:
                return NO_ROUTE
            node = node.child(prefix.bit(i))
        return node.route if node is not None else NO_ROUTE

    # -- lookup ------------------------------------------------------------

    def lookup(self, address: int) -> int:
        """Longest-prefix-match ``address`` to a FIB index."""
        node: Optional[RibNode] = self.root
        best = NO_ROUTE
        shift = self.width - 1
        while node is not None:
            if node.route != NO_ROUTE:
                best = node.route
            if shift < 0:
                break
            node = node.child((address >> shift) & 1)
            shift -= 1
        return best

    def lookup_with_depth(self, address: int) -> Tuple[int, int, int]:
        """LPM plus the paper's depth metrics.

        Returns ``(fib_index, matched_prefix_length, binary_radix_depth)``.
        The binary radix depth is the number of bits examined before the
        search bottomed out — i.e. the depth of the deepest node visited —
        which the paper shows (Figure 7) is often much larger than the
        matched prefix length because longer prefixes punch holes in
        shorter ones.
        """
        node: Optional[RibNode] = self.root
        best = NO_ROUTE
        best_len = 0
        depth = 0
        shift = self.width - 1
        while True:
            if node.route != NO_ROUTE:
                best = node.route
                best_len = depth
            if shift < 0:
                break
            nxt = node.child((address >> shift) & 1)
            if nxt is None:
                break
            node = nxt
            depth += 1
            shift -= 1
        return best, best_len, depth

    # -- iteration / walking -----------------------------------------------

    def routes(self) -> Iterator[Tuple[Prefix, int]]:
        """Yield ``(prefix, fib_index)`` in lexicographic bit order."""
        stack: List[Tuple[RibNode, int, int]] = [(self.root, 0, 0)]
        while stack:
            node, value, length = stack.pop()
            if node.route != NO_ROUTE:
                yield Prefix(value, length, self.width), node.route
            # Push right first so left pops (and yields) first.
            if node.right is not None:
                stack.append(
                    (node.right, value | (1 << (self.width - length - 1)), length + 1)
                )
            if node.left is not None:
                stack.append((node.left, value, length + 1))

    def node_at(self, prefix: Prefix) -> Optional[RibNode]:
        """The radix node exactly at ``prefix``, or ``None``."""
        self._check(prefix)
        node: Optional[RibNode] = self.root
        for i in range(prefix.length):
            if node is None:
                return None
            node = node.child(prefix.bit(i))
        return node

    def best_route_on_path(self, prefix: Prefix) -> int:
        """FIB index of the longest route covering ``prefix``'s network address
        with length ≤ ``prefix.length`` (the inherited next hop at that point
        in the tree).  Used by the builders when expanding subtrees.
        """
        self._check(prefix)
        node: Optional[RibNode] = self.root
        best = NO_ROUTE
        for i in range(prefix.length):
            if node is None:
                return best
            if node.route != NO_ROUTE:
                best = node.route
            node = node.child(prefix.bit(i))
        if node is not None and node.route != NO_ROUTE:
            best = node.route
        return best

    # -- incremental-update marking (Section 3.5) ---------------------------

    def mark_subtree(self, prefix: Prefix) -> int:
        """Mark every node in the subtree rooted at ``prefix``.

        Returns the number of nodes marked.  The Poptrie updater consumes the
        marks to decide which internal nodes must be rebuilt.
        """
        root = self.node_at(prefix)
        if root is None:
            return 0
        count = 0
        stack = [root]
        while stack:
            node = stack.pop()
            if not node.marked:
                node.marked = True
                count += 1
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return count

    def clear_marks(self, prefix: Optional[Prefix] = None) -> None:
        """Clear marks in the subtree at ``prefix`` (whole tree if omitted)."""
        root = self.root if prefix is None else self.node_at(prefix)
        if root is None:
            return
        stack = [root]
        while stack:
            node = stack.pop()
            node.marked = False
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)

    # -- internals -----------------------------------------------------------

    def _check(self, prefix: Prefix) -> None:
        if prefix.width != self.width:
            raise ValueError(
                f"prefix width {prefix.width} does not match RIB width {self.width}"
            )

    def _descend_create(self, prefix: Prefix) -> RibNode:
        node = self.root
        for i in range(prefix.length):
            bit = prefix.bit(i)
            nxt = node.child(bit)
            if nxt is None:
                nxt = RibNode()
                node.set_child(bit, nxt)
                self._node_count += 1
            node = nxt
        return node


def rib_from_routes(
    routes, width: int = 32, values=None
) -> Rib:
    """Build a :class:`Rib` from an iterable of ``(prefix, fib_index)``."""
    rib = Rib(width=width, values=values)
    for prefix, fib_index in routes:
        rib.insert(prefix, fib_index)
    return rib
