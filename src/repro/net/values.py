"""Typed leaf values: the generalized value plane.

Nothing in Poptrie's compressed-trie design is next-hop-specific — the
leaves carry small integer ids, and what an id *means* lives in a side
table.  The paper's side table is the FIB ("Poptrie is only used to look
up a FIB index for the purpose of deciding the next hop", Section 3);
this module generalizes it so the same structures serve any
longest-prefix key→value workload (GeoIP country codes, ACL classes,
DNS split-horizon views...).

The model:

- A :class:`ValueTable` interns arbitrary typed payloads and hands out
  dense integer ids.  Id ``0`` is the :data:`NO_VALUE` sentinel (the
  same number as :data:`NO_ROUTE` — a lookup miss), so every structure's
  miss behaviour is unchanged.
- Each table has a :class:`ValueKind` — ``"u16"``, ``"u32"``, ``"cc"``
  (ISO 3166 two-letter country codes, stored as the swoiow poptrie's
  ``(c0 << 8) | c1`` u16 encoding) or ``"nexthop"`` — that validates
  payloads and provides the segment codec (for
  :class:`~repro.parallel.image.TableImage` travel) and the text codec
  (for the ``# repro-values`` table-snapshot directives).
- :class:`Fib` is now simply the ``"nexthop"``-kinded :class:`ValueTable`;
  its historical module home :mod:`repro.net.fib` keeps deprecation
  shims.

Lookup structures never see payloads: ids flow RIB → leaves → kernels
unchanged, and resolution happens at the edge
(:meth:`repro.lookup.base.LookupStructure.lookup_value`).

>>> table = ValueTable("cc")
>>> table.intern("JP")
1
>>> table.intern("US"), table.intern("JP")
(2, 1)
>>> table[1]
'JP'
>>> fib = Fib()
>>> fib.intern(NextHop("10.0.0.1"))
1
>>> fib[1].gateway
'10.0.0.1'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: FIB index / value id returned when no prefix matches.  One number for
#: both names: a structure miss is a miss regardless of the value kind.
NO_ROUTE = 0
NO_VALUE = NO_ROUTE


@dataclass(frozen=True)
class NextHop:
    """A next hop: gateway address text and egress port.

    Real routers store more (MAC rewrite info, encapsulation, counters); for
    the purposes of lookup benchmarking the identity of the next hop is what
    matters, so this stays a small value object.
    """

    gateway: str
    port: int = 0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.gateway}%{self.port}"


def cc_to_u16(code: str) -> int:
    """Encode a two-letter country code as the swoiow u16: ``(c0<<8)|c1``.

    >>> hex(cc_to_u16("CN"))
    '0x434e'
    """
    if len(code) != 2 or not code.isascii() or not code.isalpha():
        raise ValueError(f"not a two-letter country code: {code!r}")
    code = code.upper()
    return (ord(code[0]) << 8) | ord(code[1])


def u16_to_cc(value: int) -> str:
    """Decode :func:`cc_to_u16`'s encoding back to the two-letter code."""
    hi, lo = (value >> 8) & 0xFF, value & 0xFF
    code = chr(hi) + chr(lo)
    if not ("A" <= code[0] <= "Z" and "A" <= code[1] <= "Z"):
        raise ValueError(f"not an encoded country code: {value:#x}")
    return code


class ValueKind:
    """One payload type: validation plus the segment and text codecs.

    ``pack``/``unpack`` translate the table's payload list to and from
    named unsigned numpy segments (the :class:`~repro.parallel.image
    .TableImage` representation); ``format``/``parse`` are the
    single-token text codec used by the ``# repro-values`` directives in
    table snapshots.  Both are deterministic, so image fingerprints stay
    a pure function of table contents.
    """

    name: str = "abstract"

    def check(self, value):
        """Validate/normalize a payload; raises ``TypeError``/``ValueError``."""
        raise NotImplementedError

    def pack(self, values: Sequence) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def unpack(self, segments: Mapping[str, np.ndarray]) -> List:
        raise NotImplementedError

    def format(self, value) -> str:
        raise NotImplementedError

    def parse(self, token: str):
        raise NotImplementedError


class _IntKind(ValueKind):
    """Plain unsigned integer payloads (``u16``/``u32``)."""

    def __init__(self, name: str, bits: int) -> None:
        self.name = name
        self.bits = bits
        self._dtype = np.uint16 if bits == 16 else np.uint32

    def check(self, value):
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise TypeError(
                f"{self.name} values must be integers, "
                f"not {type(value).__name__}"
            )
        value = int(value)
        if not 0 <= value < (1 << self.bits):
            raise ValueError(
                f"{value} does not fit a {self.name} value"
            )
        return value

    def pack(self, values):
        return {"data": np.asarray(values, dtype=self._dtype)}

    def unpack(self, segments):
        return [int(v) for v in segments["data"]]

    def format(self, value) -> str:
        return str(int(value))

    def parse(self, token: str):
        return self.check(int(token))


class _CountryKind(ValueKind):
    """ISO 3166 alpha-2 country codes, stored as u16 (swoiow encoding)."""

    name = "cc"

    def check(self, value):
        if not isinstance(value, str):
            raise TypeError(
                f"cc values must be two-letter strings, "
                f"not {type(value).__name__}"
            )
        cc_to_u16(value)  # validates
        return value.upper()

    def pack(self, values):
        return {
            "data": np.fromiter(
                (cc_to_u16(v) for v in values), np.uint16, len(values)
            )
        }

    def unpack(self, segments):
        return [u16_to_cc(int(v)) for v in segments["data"]]

    def format(self, value) -> str:
        return value

    def parse(self, token: str):
        return self.check(token)


class _NextHopKind(ValueKind):
    """:class:`NextHop` payloads: gateway text blob + offsets + ports."""

    name = "nexthop"

    def check(self, value):
        if not isinstance(value, NextHop):
            raise TypeError(
                f"nexthop values must be NextHop, not {type(value).__name__}"
            )
        return value

    def pack(self, values):
        blobs = [hop.gateway.encode("utf-8") for hop in values]
        offsets = np.zeros(len(values) + 1, dtype=np.uint32)
        np.cumsum([len(b) for b in blobs], out=offsets[1:])
        return {
            "blob": np.frombuffer(b"".join(blobs), dtype=np.uint8),
            "offsets": offsets,
            "ports": np.fromiter(
                (hop.port for hop in values), np.uint32, len(values)
            ),
        }

    def unpack(self, segments):
        blob = segments["blob"].tobytes()
        offsets = segments["offsets"].tolist()
        ports = segments["ports"].tolist()
        return [
            NextHop(blob[offsets[i]:offsets[i + 1]].decode("utf-8"), ports[i])
            for i in range(len(ports))
        ]

    def format(self, value) -> str:
        return f"{value.gateway}%{value.port}"

    def parse(self, token: str):
        gateway, _, port = token.rpartition("%")
        if not gateway:
            raise ValueError(f"not a gateway%port token: {token!r}")
        return NextHop(gateway, int(port))


#: The kind registry.  Keys are what travels in image meta / snapshot
#: directives, so renaming one is a format break.
VALUE_KINDS: Dict[str, ValueKind] = {
    kind.name: kind
    for kind in (
        _IntKind("u16", 16),
        _IntKind("u32", 32),
        _CountryKind(),
        _NextHopKind(),
    )
}


def value_kind(name: str) -> ValueKind:
    """The :class:`ValueKind` registered under ``name``."""
    try:
        return VALUE_KINDS[name]
    except KeyError:
        known = ", ".join(sorted(VALUE_KINDS))
        raise ValueError(
            f"unknown value kind {name!r} (known: {known})"
        ) from None


class ValueTable:
    """A typed side-table mapping dense integer ids to payloads.

    Generalizes the FIB's next-hop interning: ``intern`` hands out ids
    ``1, 2, ...`` in first-seen order (id 0 is the :data:`NO_VALUE`
    sentinel), lookups by id come back through ``table[id]`` / ``get``.
    Interning order *is* the id assignment, so the segment encoding —
    and every image fingerprint built over it — is deterministic.

    >>> table = ValueTable("u16")
    >>> table.intern(7), table.intern(9), table.intern(7)
    (1, 2, 1)
    >>> table[2], table.get(NO_VALUE)
    (9, None)
    """

    def __init__(self, kind: str = "u32",
                 max_entries: Optional[int] = None) -> None:
        self._kind = value_kind(kind)
        # Slot 0 is the NO_VALUE sentinel; it has no payload.
        self._entries: List[Optional[object]] = [None]
        self._index: Dict[object, int] = {}
        self._max_entries = max_entries

    @property
    def kind(self) -> str:
        """The registered :class:`ValueKind` name ("u16", "cc", ...)."""
        return self._kind.name

    @property
    def codec(self) -> ValueKind:
        """The kind's codec object (segment + text encode/decode)."""
        return self._kind

    def __len__(self) -> int:
        """Number of real payloads (the sentinel is not counted)."""
        return len(self._entries) - 1

    def __getitem__(self, index: int):
        if index == NO_VALUE:
            raise KeyError("id 0 is the NO_VALUE / NO_ROUTE sentinel")
        entry = self._entries[index]
        assert entry is not None
        return entry

    def __iter__(self) -> Iterator:
        return iter(e for e in self._entries[1:] if e is not None)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ValueTable):
            return NotImplemented
        return self.kind == other.kind and self._entries == other._entries

    __hash__ = None  # equality is by contents; tables are mutable

    def intern(self, value) -> int:
        """Return the id for ``value``, allocating one if new."""
        value = self._kind.check(value)
        existing = self._index.get(value)
        if existing is not None:
            return existing
        index = len(self._entries)
        if self._max_entries is not None and index > self._max_entries:
            raise OverflowError(
                f"value table capacity exceeded ({self._max_entries} entries)"
            )
        self._entries.append(value)
        self._index[value] = index
        return index

    def id_of(self, value) -> Optional[int]:
        """The id already assigned to ``value``, or ``None``."""
        return self._index.get(self._kind.check(value))

    def get(self, index: int):
        """Like ``__getitem__`` but returns ``None`` for :data:`NO_VALUE`."""
        if index == NO_VALUE:
            return None
        return self._entries[index]

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary (the ``stats()["values"]`` payload)."""
        return {"kind": self.kind, "count": len(self)}

    # -- image travel --------------------------------------------------------

    def to_segments(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """``(meta, segments)`` for embedding in a ``TableImage``.

        The segments use only unsigned dtypes and the table's id order,
        so two tables with identical contents serialize identically.
        """
        meta = {"kind": self.kind, "count": len(self)}
        return meta, self._kind.pack(self._entries[1:])

    @classmethod
    def from_segments(
        cls, meta: Mapping[str, object], segments: Mapping[str, np.ndarray]
    ) -> "ValueTable":
        """Rebuild a table from :meth:`to_segments` output.

        Returns a :class:`Fib` for ``kind="nexthop"`` so next-hop callers
        get the historical type back.  Raises
        :class:`~repro.errors.SnapshotFormatError` on malformed input.
        """
        from repro.errors import SnapshotFormatError

        try:
            kind = value_kind(str(meta["kind"]))
            count = int(meta["count"])
            values = kind.unpack(segments)
        except (KeyError, ValueError, TypeError, IndexError) as exc:
            raise SnapshotFormatError(
                f"malformed value table: {exc}"
            ) from exc
        if len(values) != count:
            raise SnapshotFormatError(
                f"value table declares {count} entries, "
                f"segments hold {len(values)}"
            )
        table = Fib() if kind.name == "nexthop" else cls(kind=kind.name)
        for value in values:
            table.intern(value)
        if len(table) != count:
            raise SnapshotFormatError(
                "value table entries are not distinct"
            )
        return table


class Fib(ValueTable):
    """The next-hop table: a ``"nexthop"``-kinded :class:`ValueTable`.

    Kept as its own class because "the FIB" is the paper's name for this
    table and half the library passes it around; everything it does is
    now inherited.

    >>> fib = Fib()
    >>> a = fib.intern(NextHop("10.0.0.1"))
    >>> b = fib.intern(NextHop("10.0.0.2"))
    >>> fib.intern(NextHop("10.0.0.1")) == a
    True
    >>> fib[a].gateway
    '10.0.0.1'
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        super().__init__(kind="nexthop", max_entries=max_entries)


def synthetic_fib(count: int, base_port: int = 0) -> Fib:
    """Build a FIB with ``count`` distinct synthetic next hops.

    Used by the dataset generators: Table 1 of the paper characterises each
    RIB by its number of distinct next hops, which is what drives leaf
    compressibility in Poptrie.
    """
    fib = Fib()
    for i in range(count):
        fib.intern(NextHop(f"10.{(i >> 8) & 0xFF}.{i & 0xFF}.1", base_port + i))
    return fib
