"""Tree BitMap (Eatherton, Varghese, Dittia — CCR 2004).

A multibit trie whose nodes carry two bitmaps: the *external* bitmap marks
which of the 2^t children exist, and the *internal* bitmap marks which
prefixes of length 0..t-1 live inside the node (bit ``2^l - 1 + value``
for a length-``l`` prefix).  Children and per-node results are stored in
contiguous arrays indexed by population counts over the bitmaps — the
technique Poptrie borrows for its descendant array.

The paper evaluates the original 16-ary (stride 4) variant and a 64-ary
(stride 6) variant made possible by using the ``popcnt`` instruction
instead of the original's lookup tables (Section 4, Table 3).  Both are
available here through the ``stride`` option.

Why it is slower than Poptrie despite the same popcount trick (Section
4.5): finding the best internal prefix within a node is O(t) bit probes
per level, and the result fetch needs an extra indirection, while Poptrie
resolves a leaf in O(1) with one popcount.
"""

from __future__ import annotations

from dataclasses import dataclass

from array import array
from typing import List, Optional, Tuple

from repro.lookup.base import LookupStructure, StructureConfig
from repro.lookup.registry import register
from repro.mem.layout import AccessTrace, MemoryMap
from repro.net.fib import NO_ROUTE
from repro.net.rib import Rib, RibNode


class _TmpNode:
    __slots__ = ("intbitmap", "extbitmap", "results", "children")

    def __init__(self) -> None:
        self.intbitmap = 0
        self.extbitmap = 0
        self.results: List[int] = []
        self.children: List[_TmpNode] = []


@dataclass(frozen=True)
class TreeBitmapConfig(StructureConfig):
    """Build options: ``stride`` (4 = original 16-ary, 6 = 64-ary)."""

    stride: int = 4


@register("Tree BitMap", stride=4)
class TreeBitmap(LookupStructure):
    """Tree BitMap with configurable stride (4 = original, 6 = 64-ary)."""

    name = "Tree BitMap"

    def __init__(self, stride: int, width: int) -> None:
        if not 1 <= stride <= 6:
            raise ValueError("stride must be in 1..6 (bitmaps must fit 64 bits)")
        self.stride = stride
        self.width = width
        self.name = "Tree BitMap" if stride == 4 else f"Tree BitMap ({1 << stride}-ary)"
        self.ext = array("Q")
        self.intb = array("Q")
        self.child_base = array("I")
        self.result_base = array("I")
        self.results = array("H")
        # Node byte size: two bitmaps + two base pointers.  The 16-ary
        # original packs its 16+15 bitmap bits tighter; we account 12 bytes
        # for it and 24 for the 64-ary variant, matching Table 3's ratios.
        self.node_bytes = 12 if stride == 4 else 8 + 8 + 4 + 4
        self.memmap = MemoryMap()
        self._node_region: Optional[object] = None
        self._result_region: Optional[object] = None

    @classmethod
    def from_rib(cls, rib: Rib, config=None, **options) -> "TreeBitmap":
        config = TreeBitmapConfig.resolve(config, options)
        tbm = cls(config.stride, rib.width)
        tmp_root = tbm._build_tmp(rib.root)
        tbm._serialize(tmp_root)
        tbm._node_region = tbm.memmap.add_region(
            "tbm.nodes", tbm.node_bytes, max(len(tbm.ext), 1)
        )
        tbm._result_region = tbm.memmap.add_region(
            "tbm.results", 2, max(len(tbm.results), 1)
        )
        return tbm

    # -- construction ------------------------------------------------------

    def _build_tmp(self, rnode: RibNode) -> _TmpNode:
        t = self.stride
        tmp = _TmpNode()
        found: List[Tuple[int, int]] = []  # (internal bit position, route)
        pending: List[Tuple[int, RibNode]] = []  # (slot value, radix child)
        stack: List[Tuple[Optional[RibNode], int, int]] = [(rnode, 0, 0)]
        while stack:
            node, depth, value = stack.pop()
            if node is None:
                continue
            if depth == t:
                pending.append((value, node))
                continue
            if node.route != NO_ROUTE:
                found.append(((1 << depth) - 1 + value, node.route))
            stack.append((node.left, depth + 1, value << 1))
            stack.append((node.right, depth + 1, (value << 1) | 1))
        for bit, route in sorted(found):
            tmp.intbitmap |= 1 << bit
            tmp.results.append(route)
        for value, child in sorted(pending, key=lambda item: item[0]):
            tmp.extbitmap |= 1 << value
            tmp.children.append(self._build_tmp(child))
        return tmp

    def _serialize(self, root: _TmpNode) -> None:
        """Lay nodes out breadth-first; each node's children contiguous."""
        self._append_node_slots(1)
        queue: List[Tuple[_TmpNode, int]] = [(root, 0)]
        while queue:
            tmp, at = queue.pop(0)
            child_base = 0
            if tmp.children:
                child_base = self._append_node_slots(len(tmp.children))
                for i, child in enumerate(tmp.children):
                    queue.append((child, child_base + i))
            result_base = len(self.results)
            self.results.extend(tmp.results)
            self.ext[at] = tmp.extbitmap
            self.intb[at] = tmp.intbitmap
            self.child_base[at] = child_base
            self.result_base[at] = result_base

    def _append_node_slots(self, count: int) -> int:
        base = len(self.ext)
        self.ext.extend([0] * count)
        self.intb.extend([0] * count)
        self.child_base.extend([0] * count)
        self.result_base.extend([0] * count)
        return base

    # -- lookup --------------------------------------------------------------

    def _best_internal(self, index: int, v: int) -> Tuple[int, int]:
        """Longest internal prefix of chunk value ``v`` in node ``index``;
        returns ``(result_index, found)`` with ``found`` false if none."""
        intbitmap = self.intb[index]
        t = self.stride
        for length in range(t - 1, -1, -1):
            bit = (1 << length) - 1 + (v >> (t - length))
            if (intbitmap >> bit) & 1:
                rank = (intbitmap & ((2 << bit) - 1)).bit_count() - 1
                return self.result_base[index] + rank, True
        return 0, False

    def lookup(self, key: int) -> int:
        t = self.stride
        width = self.width
        index = 0
        offset = 0
        best = -1
        while True:
            if offset >= width:
                v = 0
            elif offset + t <= width:
                v = (key >> (width - offset - t)) & ((1 << t) - 1)
            else:
                v = (key << (offset + t - width)) & ((1 << t) - 1)
            result_index, found = self._best_internal(index, v)
            if found:
                best = result_index
            ext = self.ext[index]
            if not (ext >> v) & 1:
                break
            rank = (ext & ((2 << v) - 1)).bit_count() - 1
            index = self.child_base[index] + rank
            offset += t
        return self.results[best] if best >= 0 else NO_ROUTE

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        t = self.stride
        width = self.width
        index = 0
        offset = 0
        best = -1
        while True:
            trace.read(self._node_region, index)
            trace.work(3 + t)  # O(t) internal-bitmap probes per node
            trace.mispredict(0.3)  # data-dependent probe/descend branches
            if offset >= width:
                v = 0
            elif offset + t <= width:
                v = (key >> (width - offset - t)) & ((1 << t) - 1)
            else:
                v = (key << (offset + t - width)) & ((1 << t) - 1)
            result_index, found = self._best_internal(index, v)
            if found:
                best = result_index
            ext = self.ext[index]
            if not (ext >> v) & 1:
                break
            rank = (ext & ((2 << v) - 1)).bit_count() - 1
            index = self.child_base[index] + rank
            offset += t
        if best < 0:
            return NO_ROUTE
        trace.work(2)
        trace.read(self._result_region, best)
        return self.results[best]

    def memory_bytes(self) -> int:
        return self.node_bytes * len(self.ext) + 2 * len(self.results)


register("Tree BitMap (64-ary)", TreeBitmap, stride=6)
