"""The algorithm registry: one canonical roster of lookup structures.

Before this module existed the roster was hand-rolled in four places
(``bench/harness.py``, the CLI, ``benchmarks/conftest.py`` and the
property tests); adding a structure meant four edits.  Now a structure
registers itself once, next to its class definition::

    from repro.lookup.registry import register

    @register("SAIL")
    class Sail(LookupStructure):
        ...

and variants (same class, different build options) register explicitly::

    register("D16R", Dxr, s=16)
    register("D18R", Dxr, s=18)

Consumers resolve entries by name:

- :func:`get` -> an :class:`AlgorithmEntry` whose :meth:`~AlgorithmEntry.from_rib`
  builds the structure with its registered default options;
- :func:`available` -> all registered names (registration order);
- :func:`standard_roster` / :func:`build_structures` -> the paper's
  Figure 9 comparison roster, built from one RIB with the paper's
  aggregation policy (canonical home of what ``bench.harness`` used to
  hand-roll; the old imports still work through a deprecation shim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "AlgorithmEntry",
    "available",
    "build_structures",
    "get",
    "register",
    "standard_roster",
    "STANDARD_ALGORITHMS",
]

#: The Figure 9 roster, in the paper's plotting order.
STANDARD_ALGORITHMS: Tuple[str, ...] = (
    "Radix",
    "Tree BitMap",
    "SAIL",
    "D16R",
    "Poptrie16",
    "D18R",
    "Poptrie18",
)

#: Entries whose class accepts DXR's ``modified`` (flag-absorbing) option.
_DXR_NAMES = frozenset({"D16R", "D18R"})


@dataclass(frozen=True)
class AlgorithmEntry:
    """One registered structure (or variant): class + default options.

    ``aggregate`` marks entries the paper compiles from the
    route-aggregated table (Poptrie, Section 3); ``pass_fib_size`` marks
    entries whose builder validates an explicit FIB size against its leaf
    width.  Both are roster policy knobs — a plain :meth:`from_rib`
    ignores them.
    """

    name: str
    cls: type
    options: Mapping[str, object] = field(default_factory=dict)
    aggregate: bool = False
    pass_fib_size: bool = False

    def from_rib(self, rib, **overrides):
        """Build this structure from ``rib`` with the registered defaults.

        Keyword ``overrides`` win over the registered options; unknown
        option names raise ``TypeError`` (the uniform constructor
        contract of :class:`repro.lookup.base.LookupStructure`).

        ``values=`` is the one option every entry accepts identically:
        a :class:`~repro.net.values.ValueTable` to attach to the built
        structure (``None`` detaches).  When omitted, the RIB's own
        attached table (``rib.values``) carries over — structures never
        read the table, so the build itself is unchanged either way.

        The built structure comes back with ``rib`` bound for updates
        (:meth:`~repro.lookup.base.LookupStructure.bind_rib`, with a
        rebuild closure reproducing these exact build options), so
        ``structure.apply_updates(batch)`` works out of the box on every
        registry entry.
        """
        from repro.lookup.base import LookupStructure
        from repro.net.values import ValueTable

        has_values = "values" in overrides
        values = overrides.pop("values", None)
        if values is not None and not isinstance(values, ValueTable):
            raise TypeError(
                f"values must be a ValueTable or None, "
                f"not {type(values).__name__}"
            )
        merged = {**self.options, **overrides}
        structure = self.cls.from_rib(rib, **merged)
        if not has_values:
            values = getattr(rib, "values", None)
        if isinstance(structure, LookupStructure):
            if values is not None:
                structure.attach_values(values)
            structure.bind_rib(
                rib, rebuild=lambda r: self.cls.from_rib(r, **merged)
            )
        return structure

    @property
    def supports_image(self) -> bool:
        """True when instances round-trip through the zero-copy
        :class:`~repro.parallel.image.TableImage` API (``to_image()`` /
        ``from_image()``) — the capability gate for snapshotting and the
        shared-memory :class:`~repro.parallel.WorkerPool`."""
        probe = getattr(self.cls, "supports_image", None)
        return bool(probe()) if callable(probe) else False

    @property
    def supports_incremental(self) -> bool:
        """True when instances service :meth:`apply_updates` with a real
        incremental engine (Poptrie's transactional subtree surgery);
        False means the correct, measured rebuild fallback — see
        ``stats()["update_engine"]`` and docs/ALGORITHMS.md."""
        probe = getattr(self.cls, "supports_incremental", None)
        return bool(probe()) if callable(probe) else False

    @property
    def supports_kernel(self) -> bool:
        """True when a stateless branchless batch kernel is registered
        for this structure class (see :mod:`repro.lookup.kernels`) — the
        capability gate for serving straight off image views."""
        return self.kernel is not None

    @property
    def kernel(self):
        """The :class:`~repro.lookup.kernels.LookupKernel` registered for
        this structure class, or ``None``."""
        from repro.lookup import kernels

        return kernels.kernel_for_class(self.cls)


_ENTRIES: Dict[str, AlgorithmEntry] = {}


def register(
    name: str,
    cls: Optional[type] = None,
    *,
    aggregate: bool = False,
    pass_fib_size: bool = False,
    **options,
):
    """Register ``cls`` (or decorate a class) under ``name``.

    Usable as a decorator factory (``@register("SAIL")``) or called
    directly for variants (``register("D16R", Dxr, s=16)``).  Duplicate
    names are rejected — the registry is the single source of truth.
    """

    def _add(target: type) -> type:
        if name in _ENTRIES:
            raise ValueError(f"algorithm {name!r} is already registered")
        _ENTRIES[name] = AlgorithmEntry(
            name=name,
            cls=target,
            options=dict(options),
            aggregate=aggregate,
            pass_fib_size=pass_fib_size,
        )
        return target

    if cls is not None:
        return _add(cls)
    return _add


def _ensure_builtins() -> None:
    """Import the modules whose classes self-register."""
    import repro.lookup  # noqa: F401  (imports every baseline module)
    import repro.core.poptrie  # noqa: F401  (registers the Poptrie variants)


def get(name: str) -> AlgorithmEntry:
    """The registered entry for ``name``; raises ``KeyError`` if unknown."""
    _ensure_builtins()
    try:
        return _ENTRIES[name]
    except KeyError:
        known = ", ".join(sorted(_ENTRIES))
        raise KeyError(f"unknown algorithm {name!r} (known: {known})") from None


def available() -> List[str]:
    """All registered algorithm names, in registration order."""
    _ensure_builtins()
    return list(_ENTRIES)


def standard_roster(
    rib,
    names: Sequence[str] = STANDARD_ALGORITHMS,
    aggregate_for_poptrie: bool = True,
    modified_dxr: bool = False,
) -> Dict[str, Optional[object]]:
    """Build the paper's comparison roster from one RIB.

    Entries flagged ``aggregate`` compile from the route-aggregated table
    (the paper's Poptrie default, Section 3); the baselines see the raw
    table, as they did in the paper.  A structure whose structural limit
    is exceeded maps to ``None`` — the Table 5 "N/A" case.
    """
    from repro.core.aggregate import aggregated_rib
    from repro.errors import StructuralLimitError

    aggregated = None
    fib_size = max((idx for _, idx in rib.routes()), default=0) + 1
    roster: Dict[str, Optional[object]] = {}
    for name in names:
        entry = get(name)
        overrides: Dict[str, object] = {}
        if modified_dxr and name in _DXR_NAMES:
            overrides["modified"] = True
        if entry.pass_fib_size:
            overrides["fib_size"] = fib_size
        build_rib = rib
        if entry.aggregate and aggregate_for_poptrie:
            if aggregated is None:
                aggregated = aggregated_rib(rib)
            build_rib = aggregated
        try:
            roster[name] = entry.from_rib(build_rib, **overrides)
        except StructuralLimitError:
            roster[name] = None
    return roster


def build_structures(
    rib, names: Sequence[str] = STANDARD_ALGORITHMS, **kwargs
) -> List[object]:
    """Like :func:`standard_roster` but drops the N/A entries."""
    return [s for s in standard_roster(rib, names, **kwargs).values() if s]
