"""SAIL (Yang et al., SIGCOMM 2014) — the SAIL_L variant the paper compares.

SAIL splits lookup into levels 16, 24 and 32.  Prefixes are pushed to those
three levels (the "splitting lookup process" of the original paper).  Each
level-16 and level-24 entry is a 16-bit *BCN* word: the top bit says
whether the entry is a next hop (0) or the identifier of a 256-entry chunk
at the next level (1); the identifier therefore has **15 bits**, which is
the structural limit Section 4.8 of the Poptrie paper exercises: "C16[i]
in SAIL is encoded in the 15 bits of BCN[i], but it exceeds 2^15 for these
datasets" — compiling such a table raises
:class:`~repro.errors.StructuralLimitError` here, and the Table 5 harness
reports "N/A" for SAIL exactly as the paper does.

Level 16 is a flat 2^16 array; levels 24 and 32 are arrays of 256-entry
chunks, allocated only for the level-16/24 entries that need them.  With a
full BGP table most /16s carry longer prefixes, so the structure's
footprint exceeds the L3 cache — the property driving SAIL's cache
behaviour in Figures 10/11.

SAIL_L does not support IPv6 routes more specific than /64 (Section 4.10);
this implementation is IPv4-only like the paper's comparison.
"""

from __future__ import annotations

from array import array
from typing import List

import numpy as np

from repro.errors import StructuralLimitError
from repro.lookup.base import LookupStructure, NoOptions
from repro.lookup.registry import register
from repro.mem.layout import AccessTrace, MemoryMap
from repro.net.fib import NO_ROUTE
from repro.net.rib import Rib

_CHUNK_FLAG = 1 << 15
MAX_CHUNKS = 1 << 15

_INSTRUCTIONS = 3


@register("SAIL")
class Sail(LookupStructure):
    """SAIL_L: level-pushed 16/24/32 arrays with 16-bit BCN entries."""

    name = "SAIL"

    def __init__(self, bcn16: array, bcn24: array, n32: array) -> None:
        self.bcn16 = bcn16
        self.bcn24 = bcn24
        self.n32 = n32
        self.memmap = MemoryMap()
        self._region16 = self.memmap.add_region("sail.bcn16", 2, len(bcn16))
        self._region24 = self.memmap.add_region("sail.bcn24", 2, max(len(bcn24), 1))
        self._region32 = self.memmap.add_region("sail.n32", 2, max(len(n32), 1))

    @classmethod
    def from_rib(cls, rib: Rib, config=None, **options) -> "Sail":
        NoOptions.resolve(config, options)
        if rib.width != 32:
            raise ValueError("SAIL_L is an IPv4 structure")
        max_fib = max((idx for _, idx in rib.routes()), default=0)
        if max_fib >= _CHUNK_FLAG:
            raise StructuralLimitError("SAIL: next-hop indices must fit in 15 bits")

        bcn16 = array("H", bytes(2 << 16))
        chunks24: List[array] = []
        chunks32: List[array] = []

        def new_chunk(chunk_list: List[array], limit_name: str) -> int:
            # Identifiers are 1-based (0 means "next hop"), so at most
            # 2^15 - 1 chunks fit in the 15-bit BCN field.
            if len(chunk_list) >= MAX_CHUNKS - 1:
                raise StructuralLimitError(
                    f"SAIL: more than 2^15 {limit_name} chunk identifiers"
                )
            chunk_list.append(array("H", bytes(2 << 8)))
            return len(chunk_list)

        # Controlled prefix expansion in strides of 16, 8, 8 — the same
        # radix-walk used by every other builder in the library.
        def fill16(node, depth: int, base: int, inherited: int) -> None:
            if node is not None and node.route != NO_ROUTE:
                inherited = node.route
            if depth == 16:
                if node is not None and not node.is_leaf():
                    ident = new_chunk(chunks24, "level-24")
                    bcn16[base] = _CHUNK_FLAG | ident
                    fill8(node, 0, 0, inherited, chunks24[ident - 1], 24)
                else:
                    bcn16[base] = inherited
                return
            if node is None:
                span = 1 << (16 - depth)
                bcn16[base : base + span] = array("H", [inherited]) * span
                return
            half = 1 << (16 - depth - 1)
            fill16(node.left, depth + 1, base, inherited)
            fill16(node.right, depth + 1, base + half, inherited)

        def fill8(node, depth: int, base: int, inherited: int, chunk, level) -> None:
            if node is not None and node.route != NO_ROUTE:
                inherited = node.route
            if depth == 8:
                if level == 24 and node is not None and not node.is_leaf():
                    ident = new_chunk(chunks32, "level-32")
                    chunk[base] = _CHUNK_FLAG | ident
                    fill8(node, 0, 0, inherited, chunks32[ident - 1], 32)
                else:
                    chunk[base] = inherited
                return
            if node is None:
                span = 1 << (8 - depth)
                chunk[base : base + span] = array("H", [inherited]) * span
                return
            half = 1 << (8 - depth - 1)
            fill8(node.left, depth + 1, base, inherited, chunk, level)
            fill8(node.right, depth + 1, base + half, inherited, chunk, level)

        fill16(rib.root, 0, 0, NO_ROUTE)

        bcn24 = array("H")
        for chunk in chunks24:
            bcn24.extend(chunk)
        n32 = array("H")
        for chunk in chunks32:
            n32.extend(chunk)
        return cls(bcn16, bcn24, n32)

    # -- LookupStructure ---------------------------------------------------------

    def lookup(self, key: int) -> int:
        entry = self.bcn16[key >> 16]
        if not entry & _CHUNK_FLAG:
            return entry
        index = (((entry & (_CHUNK_FLAG - 1)) - 1) << 8) | ((key >> 8) & 0xFF)
        entry = self.bcn24[index]
        if not entry & _CHUNK_FLAG:
            return entry
        return self.n32[(((entry & (_CHUNK_FLAG - 1)) - 1) << 8) | (key & 0xFF)]

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        trace.work(_INSTRUCTIONS)
        trace.read(self._region16, key >> 16)
        entry = self.bcn16[key >> 16]
        if not entry & _CHUNK_FLAG:
            return entry
        index = (((entry & (_CHUNK_FLAG - 1)) - 1) << 8) | ((key >> 8) & 0xFF)
        trace.work(_INSTRUCTIONS)
        trace.mispredict(0.15)
        trace.read(self._region24, index)
        entry = self.bcn24[index]
        if not entry & _CHUNK_FLAG:
            return entry
        index = (((entry & (_CHUNK_FLAG - 1)) - 1) << 8) | (key & 0xFF)
        trace.work(_INSTRUCTIONS)
        trace.mispredict(0.15)
        trace.read(self._region32, index)
        return self.n32[index]

    def _lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        from repro.lookup import kernels

        if kernels.dispatch_enabled():
            kernel = kernels.kernel_for_class(type(self))
            if kernel is not None:
                return kernel.lookup_batch(
                    kernel.state_from_structure(self), keys
                )
        return self._lookup_batch_template(keys)

    def _lookup_batch_template(self, keys: np.ndarray) -> np.ndarray:
        """Pre-kernel numpy template, kept as the ``--no-kernel``
        baseline and the kernels' in-repo reference implementation."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        bcn16 = np.frombuffer(self.bcn16, dtype=np.uint16)
        entries = bcn16[(keys >> np.uint64(16)).astype(np.int64)]
        result = entries.astype(np.uint32)
        deep = (entries & np.uint16(_CHUNK_FLAG)) != 0
        if deep.any():
            bcn24 = np.frombuffer(self.bcn24, dtype=np.uint16)
            ident = (entries[deep] & np.uint16(_CHUNK_FLAG - 1)).astype(np.int64) - 1
            index = (ident << 8) | ((keys[deep] >> np.uint64(8)) & np.uint64(0xFF)).astype(np.int64)
            entries24 = bcn24[index]
            result[deep] = entries24
            deeper = (entries24 & np.uint16(_CHUNK_FLAG)) != 0
            if deeper.any():
                n32 = np.frombuffer(self.n32, dtype=np.uint16)
                deep_idx = np.flatnonzero(deep)[deeper]
                ident32 = (entries24[deeper] & np.uint16(_CHUNK_FLAG - 1)).astype(np.int64) - 1
                index32 = (ident32 << 8) | (keys[deep_idx] & np.uint64(0xFF)).astype(np.int64)
                result[deep_idx] = n32[index32]
        return result

    def memory_bytes(self) -> int:
        return 2 * (len(self.bcn16) + len(self.bcn24) + len(self.n32))

    # -- zero-copy images ------------------------------------------------

    def _image_state(self):
        return {}, {"bcn16": self.bcn16, "bcn24": self.bcn24, "n32": self.n32}

    @classmethod
    def _from_image_state(cls, meta, segments, *, copy: bool) -> "Sail":
        from repro.errors import SnapshotFormatError
        from repro.lookup.dir24_8 import _frozen_view

        try:
            bcn16, bcn24, n32 = (
                segments["bcn16"], segments["bcn24"], segments["n32"]
            )
        except KeyError as error:
            raise SnapshotFormatError(
                f"SAIL image lacks segment {error}"
            ) from error
        if len(bcn16) != 1 << 16 or any(
            seg.itemsize != 2 for seg in (bcn16, bcn24, n32)
        ):
            raise SnapshotFormatError("SAIL image segments malformed")
        if copy:
            return cls(
                array("H", bcn16.tobytes()),
                array("H", bcn24.tobytes()),
                array("H", n32.tobytes()),
            )
        return cls(_frozen_view(bcn16), _frozen_view(bcn24), _frozen_view(n32))
