"""The plain 2^k-ary multiway trie with controlled prefix expansion.

This is the structure of the paper's Figure 1 — the starting point
Poptrie compresses (Srinivasan & Varghese's controlled prefix expansion,
cited in Section 2).  Every node stores a full 2^k descendant array whose
entries each hold a next hop *and* a child pointer, so there is no
bit-vector indirection and no compression: lookups are simple and fast
per level, but the memory footprint is k-times-expanded and far exceeds
any cache for real tables.

Included as the natural ablation baseline: comparing it against Poptrie
on the same table isolates what the vector/leafvec compression buys
(Table 2's story told structurally).
"""

from __future__ import annotations

from dataclasses import dataclass

from array import array
from typing import Optional

from repro.lookup.base import LookupStructure, StructureConfig
from repro.lookup.registry import register
from repro.mem.layout import AccessTrace, MemoryMap
from repro.net.fib import NO_ROUTE
from repro.net.rib import Rib, RibNode

_NODE_INSTRUCTIONS = 3


@dataclass(frozen=True)
class MultibitConfig(StructureConfig):
    """Build options: ``k``, the stride in bits (2^k-ary trie)."""

    k: int = 6


@register("Multibit", k=6)
class MultibitTrie(LookupStructure):
    """Uncompressed 2^k-ary trie (k = 6 by default, like Poptrie)."""

    name = "Multibit"

    def __init__(self, k: int, width: int) -> None:
        if not 1 <= k <= 8:
            raise ValueError("k must be in 1..8")
        self.k = k
        self.width = width
        self.name = f"Multibit (k={k})"
        slots = 1 << k
        self._slots = slots
        # Parallel arrays: per node, `slots` next hops and child indices
        # (0 = no child; node 0 is the root so 0 can never be a child).
        self.nexthops = array("H")
        self.children = array("I")
        levels = -(-width // k)
        self._padded_width = k * levels
        self._pad = self._padded_width - width
        self.memmap = MemoryMap()
        self._region = None

    @classmethod
    def from_rib(cls, rib: Rib, config=None, **options) -> "MultibitTrie":
        config = MultibitConfig.resolve(config, options)
        trie = cls(config.k, rib.width)
        trie._append_node()
        trie._build(rib.root, 0, NO_ROUTE)
        trie._region = trie.memmap.add_region(
            "multibit.slots",
            6,  # 2 bytes next hop + 4 bytes child per slot
            max(len(trie.nexthops), 1),
        )
        return trie

    def _append_node(self) -> int:
        index = len(self.nexthops) // self._slots
        self.nexthops.extend([NO_ROUTE] * self._slots)
        self.children.extend([0] * self._slots)
        return index

    def _build(self, rnode: Optional[RibNode], node: int, inherited: int) -> None:
        """Controlled prefix expansion of one chunk, recursing into
        children — the same walk as the Poptrie builder but materialising
        every slot."""
        from repro.core.builder import expand_chunk

        base = node * self._slots
        for v, slot in enumerate(expand_chunk(rnode, inherited, self.k)):
            if isinstance(slot, tuple):
                child_rnode, child_inherited = slot
                # The slot's own next hop: the best route covering exactly
                # this expanded value (for lookups ending here... lookups
                # never end on a slot with a child, so store the inherited
                # value for completeness).
                self.nexthops[base + v] = child_inherited
                child = self._append_node()
                self.children[base + v] = child
                self._build(child_rnode, child, child_inherited)
            else:
                self.nexthops[base + v] = slot

    # -- LookupStructure ---------------------------------------------------

    def lookup(self, key: int) -> int:
        keyp = key << self._pad
        shift = self._padded_width - self.k
        mask = self._slots - 1
        node = 0
        while True:
            slot = node * self._slots + ((keyp >> shift) & mask)
            child = self.children[slot]
            if not child:
                return self.nexthops[slot]
            node = child
            shift -= self.k

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        keyp = key << self._pad
        shift = self._padded_width - self.k
        mask = self._slots - 1
        node = 0
        while True:
            v = (keyp >> shift) & mask
            slot = node * self._slots + v
            trace.read(self._region, slot)
            trace.work(_NODE_INSTRUCTIONS)
            child = self.children[slot]
            if not child:
                return self.nexthops[slot]
            trace.mispredict(0.1)
            node = child
            shift -= self.k

    def memory_bytes(self) -> int:
        return 2 * len(self.nexthops) + 4 * len(self.children)

    @property
    def node_count(self) -> int:
        return len(self.nexthops) // self._slots
