"""Patricia trie (Morrison 1968; Sklower's BSD variant) — path-compressed
longest-prefix match.

The paper names "radix or Patricia trie" as the RIB structures Poptrie
compiles from (Section 3) and cites both among the fundamental LPM
structures that need "some tens of memory accesses" per lookup
(Section 2).  Unlike the plain binary radix tree, Patricia skips runs of
single-child nodes: every internal node tests one *bit index* and has
exactly two children, so the node count is bounded by twice the number
of routes regardless of prefix length — the property that made it the
BSD routing table.

Lookup walks bit tests to a leaf, then verifies against the candidate
prefix and backtracks along the recorded path of shorter matches —
Sklower's algorithm, simplified by keeping each node's list of covering
routes sorted by length (mask list).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lookup.base import LookupStructure, NoOptions
from repro.lookup.registry import register
from repro.mem.layout import AccessTrace, MemoryMap
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib

#: Node accounting: bit index, two child pointers, route list head.
NODE_BYTES = 28
_NODE_INSTRUCTIONS = 3


class _Node:
    __slots__ = ("bit", "left", "right", "routes")

    def __init__(self, bit: int) -> None:
        self.bit = bit
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        #: Routes whose prefix equals this node's key position, sorted by
        #: descending length (most specific first).
        self.routes: List[Tuple[Prefix, int]] = []


@register("Patricia")
class PatriciaTrie(LookupStructure):
    """Path-compressed binary trie with backtracking LPM."""

    name = "Patricia"

    def __init__(self, width: int = 32) -> None:
        self.width = width
        self.root: Optional[_Node] = None
        self._route_count = 0
        self._node_count = 0
        self.memmap = MemoryMap()
        self._region = self.memmap.add_region("patricia.nodes", NODE_BYTES, 1)
        self._numbering = {}

    @classmethod
    def from_rib(cls, rib: Rib, config=None, **options) -> "PatriciaTrie":
        NoOptions.resolve(config, options)
        trie = cls(width=rib.width)
        for prefix, fib_index in rib.routes():
            trie.insert(prefix, fib_index)
        return trie

    def __len__(self) -> int:
        return self._route_count

    @property
    def node_count(self) -> int:
        return self._node_count

    # -- mutation ------------------------------------------------------------

    def insert(self, prefix: Prefix, fib_index: int) -> None:
        """Insert or replace a route."""
        if prefix.width != self.width:
            raise ValueError("prefix width mismatch")
        if self.root is None:
            self.root = self._leaf_node(prefix, fib_index)
            return
        # Find the divergence point between the prefix and the trie path.
        node = self.root
        path: List[_Node] = []
        while True:
            path.append(node)
            if node.bit >= prefix.length:
                break
            nxt = node.right if prefix.bit(node.bit) else node.left
            if nxt is None:
                break
            node = nxt

        # Check whether an existing node already sits at this key/length.
        for existing in path:
            for i, (p, _) in enumerate(existing.routes):
                if p == prefix:
                    existing.routes[i] = (prefix, fib_index)
                    return

        # Find the first bit where `prefix` diverges from the deepest
        # node's representative route (or its key path).
        anchor = self._representative(path[-1]) or prefix
        diverge = self._first_difference(prefix, anchor)

        # Walk again to the attachment point for `diverge`.
        parent: Optional[_Node] = None
        node = self.root
        while node is not None and node.bit < diverge and node.bit < prefix.length:
            parent = node
            node = node.right if prefix.bit(node.bit) else node.left
        new = _Node(min(diverge, prefix.length))
        new.routes.append((prefix, fib_index))
        self._route_count += 1
        self._node_count += 1
        if node is not None and node.bit == new.bit:
            # Same test position: merge the route into the existing node.
            node.routes.append((prefix, fib_index))
            node.routes.sort(key=lambda item: -item[0].length)
            self._node_count -= 1
            return
        # Splice `new` between parent and node.
        if node is not None:
            branch = self._branch_bit(node, new.bit)
            if branch:
                new.right = node
            else:
                new.left = node
        if parent is None:
            self.root = new
        elif prefix.length > parent.bit and prefix.bit(parent.bit):
            parent.right = new
        else:
            parent.left = new

    def _leaf_node(self, prefix: Prefix, fib_index: int) -> _Node:
        node = _Node(prefix.length)
        node.routes.append((prefix, fib_index))
        self._route_count += 1
        self._node_count += 1
        return node

    def _representative(self, node: _Node) -> Optional[Prefix]:
        if node.routes:
            return node.routes[0][0]
        if node.left is not None:
            return self._representative(node.left)
        if node.right is not None:
            return self._representative(node.right)
        return None

    @staticmethod
    def _first_difference(a: Prefix, b: Prefix) -> int:
        limit = min(a.length, b.length)
        for i in range(limit):
            if a.bit(i) != b.bit(i):
                return i
        return limit

    def _branch_bit(self, node: _Node, at: int) -> int:
        rep = self._representative(node)
        if rep is None or rep.length <= at:
            return 0
        return rep.bit(at)

    # -- lookup --------------------------------------------------------------

    def lookup(self, key: int) -> int:
        best = NO_ROUTE
        best_len = -1
        node = self.root
        while node is not None:
            for prefix, fib_index in node.routes:
                if prefix.length > best_len and prefix.contains_address(key):
                    best = fib_index
                    best_len = prefix.length
                    break  # routes sorted most-specific first
            if node.bit >= self.width:
                break
            bit = (key >> (self.width - 1 - node.bit)) & 1
            node = node.right if bit else node.left
        return best

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        best = NO_ROUTE
        best_len = -1
        node = self.root
        numbering = self._numbering
        while node is not None:
            trace.read(
                self._region, numbering.setdefault(id(node), len(numbering))
            )
            trace.work(_NODE_INSTRUCTIONS + len(node.routes))
            trace.mispredict(0.05)
            for prefix, fib_index in node.routes:
                if prefix.length > best_len and prefix.contains_address(key):
                    best = fib_index
                    best_len = prefix.length
                    break
            if node.bit >= self.width:
                break
            bit = (key >> (self.width - 1 - node.bit)) & 1
            node = node.right if bit else node.left
        return best

    def memory_bytes(self) -> int:
        return self._node_count * NODE_BYTES
