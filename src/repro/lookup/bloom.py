"""Longest prefix matching with Bloom filters (Dharmapurikar et al., 2006).

Cited in the paper's Section 2 among the approaches that "fail to provide
either a good performance or a reasonable management cost".  One Bloom
filter per prefix length summarises, on chip, which prefixes exist; the
off-chip hash tables are probed from the longest length whose filter
answers "maybe" downwards, until a real entry is found.  In the expected
case exactly one off-chip access suffices; false positives cost extra
probes at a rate set by the filter sizing.

The implementation keeps the hardware split visible in the cost model:
filter queries are register work (instructions), hash-table probes are
memory accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

import hashlib
from typing import Dict, List, Optional

from repro.lookup.base import LookupStructure, StructureConfig
from repro.lookup.registry import register
from repro.mem.layout import AccessTrace, MemoryMap
from repro.net.fib import NO_ROUTE
from repro.net.rib import Rib

ENTRY_BYTES = 12
_FILTER_INSTRUCTIONS = 4
_PROBE_INSTRUCTIONS = 3


class BloomFilter:
    """A classic Bloom filter with double hashing.

    >>> f = BloomFilter(bits=1024, hashes=4)
    >>> f.add(42)
    >>> f.may_contain(42)
    True
    """

    def __init__(self, bits: int, hashes: int) -> None:
        if bits <= 0 or hashes <= 0:
            raise ValueError("bits and hashes must be positive")
        self.bits = bits
        self.hashes = hashes
        self._array = bytearray((bits + 7) // 8)
        self.added = 0

    def _positions(self, item: int) -> List[int]:
        digest = hashlib.blake2b(
            item.to_bytes(20, "big"), digest_size=16
        ).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        return [(h1 + i * h2) % self.bits for i in range(self.hashes)]

    def add(self, item: int) -> None:
        for position in self._positions(item):
            self._array[position >> 3] |= 1 << (position & 7)
        self.added += 1

    def may_contain(self, item: int) -> bool:
        return all(
            self._array[position >> 3] & (1 << (position & 7))
            for position in self._positions(item)
        )

    def size_bytes(self) -> int:
        return len(self._array)


@dataclass(frozen=True)
class BloomConfig(StructureConfig):
    """Build options: on-chip filter density and hash count."""

    bits_per_entry: int = 12
    hashes: int = 4


@register("Bloom")
class BloomLpm(LookupStructure):
    """Bloom-filter-guided longest prefix matching."""

    name = "Bloom-LPM"

    def __init__(self, width: int, bits_per_entry: int = 12, hashes: int = 4):
        self.width = width
        self.bits_per_entry = bits_per_entry
        self.hashes = hashes
        self.lengths: List[int] = []
        self.filters: Dict[int, BloomFilter] = {}
        self.tables: Dict[int, Dict[int, int]] = {}
        self.default = NO_ROUTE
        #: Off-chip probes that found nothing (false positives), counted so
        #: the tests can pin the expected false-positive behaviour.
        self.false_positive_probes = 0
        self.probes = 0
        self.lookups = 0
        self.memmap = MemoryMap()
        self._region: Optional[object] = None

    @classmethod
    def from_rib(cls, rib: Rib, config=None, **options) -> "BloomLpm":
        config = BloomConfig.resolve(config, options)
        structure = cls(rib.width, config.bits_per_entry, config.hashes)
        per_length: Dict[int, Dict[int, int]] = {}
        for prefix, fib_index in rib.routes():
            if prefix.length == 0:
                structure.default = fib_index
                continue
            key = prefix.value >> (rib.width - prefix.length)
            per_length.setdefault(prefix.length, {})[key] = fib_index
        structure.lengths = sorted(per_length, reverse=True)
        for length, table in per_length.items():
            bloom = BloomFilter(
                bits=max(len(table) * config.bits_per_entry, 64),
                hashes=config.hashes,
            )
            for key in table:
                bloom.add((length << 40) ^ key)
            structure.filters[length] = bloom
            structure.tables[length] = table
        total = sum(len(t) for t in per_length.values())
        structure._region = structure.memmap.add_region(
            "bloom.entries", ENTRY_BYTES, max(total, 1)
        )
        return structure

    # -- lookup --------------------------------------------------------------

    def lookup(self, key: int) -> int:
        width = self.width
        self.lookups += 1
        for length in self.lengths:
            item = key >> (width - length)
            if self.filters[length].may_contain((length << 40) ^ item):
                self.probes += 1
                entry = self.tables[length].get(item)
                if entry is not None:
                    return entry
                self.false_positive_probes += 1
        return self.default

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        width = self.width
        for length in self.lengths:
            item = key >> (width - length)
            trace.work(_FILTER_INSTRUCTIONS)  # on-chip filter query
            if self.filters[length].may_contain((length << 40) ^ item):
                trace.work(_PROBE_INSTRUCTIONS)
                trace.mispredict(0.2)
                slot = hash((length, item)) % max(self._region.length, 1)
                trace.read(self._region, slot)
                entry = self.tables[length].get(item)
                if entry is not None:
                    return entry
        return self.default

    def false_positive_rate(self) -> float:
        """Observed share of off-chip probes wasted on false positives."""
        return self.false_positive_probes / self.probes if self.probes else 0.0

    def false_positives_per_lookup(self) -> float:
        """Expected wasted off-chip probes per lookup — the quantity the
        filter sizing controls (≈ #filters × per-filter FP probability)."""
        return self.false_positive_probes / self.lookups if self.lookups else 0.0

    def memory_bytes(self) -> int:
        filters = sum(f.size_bytes() for f in self.filters.values())
        entries = ENTRY_BYTES * sum(len(t) for t in self.tables.values())
        return filters + entries
