"""Binary search on prefix lengths (Waldvogel et al., SIGCOMM 1997).

Cited in the paper's Section 2: "Waldvogel et al. reduced the memory
access both for IPv4 and IPv6 routing table lookup using binary search on
prefix length."  One hash table per distinct prefix length; lookup binary
searches over the sorted lengths, probing the table at the midpoint
length with the key's prefix of that length:

- hit  → remember the entry's precomputed best-matching prefix (BMP) and
  search *longer*;
- miss → search *shorter*.

Correctness relies on *markers*: every prefix deposits, at each midpoint
length where the search for its own length would branch "longer", a
marker entry carrying the BMP at that point — so a miss really does mean
"nothing longer exists down this path", with no backtracking.

O(log W) hashed probes per lookup (5 for IPv4, 7 for IPv6) against the
radix tree's O(W); the trade is marker storage and update complexity —
one reason the paper's generation of structures moved on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lookup.base import LookupStructure, NoOptions
from repro.lookup.registry import register
from repro.mem.layout import AccessTrace, MemoryMap
from repro.net.fib import NO_ROUTE
from repro.net.rib import Rib

#: Hash-table entry: key (up to 16 bytes), BMP index, chain pointer.
ENTRY_BYTES = 16
_PROBE_INSTRUCTIONS = 5


@register("BSearch-Lengths")
class BinarySearchLengths(LookupStructure):
    """Waldvogel's scheme: per-length hash tables + markers + BMPs."""

    name = "BSearch-Lengths"

    def __init__(self, width: int) -> None:
        self.width = width
        self.lengths: List[int] = []
        #: length -> {prefix value (top `length` bits) -> BMP fib index}
        self.tables: Dict[int, Dict[int, int]] = {}
        self.marker_count = 0
        self.prefix_count = 0
        self.default = NO_ROUTE
        self.memmap = MemoryMap()
        self._region: Optional[object] = None

    @classmethod
    def from_rib(cls, rib: Rib, config=None, **options) -> "BinarySearchLengths":
        NoOptions.resolve(config, options)
        structure = cls(rib.width)
        routes = [(p, fib) for p, fib in rib.routes()]
        lengths = sorted({p.length for p, _ in routes if p.length > 0})
        structure.lengths = lengths
        structure.tables = {length: {} for length in lengths}
        for prefix, fib_index in routes:
            if prefix.length == 0:
                structure.default = fib_index

        # Real prefixes first: their BMP is themselves.
        for prefix, fib_index in routes:
            if prefix.length == 0:
                continue
            key = prefix.value >> (rib.width - prefix.length)
            structure.tables[prefix.length][key] = fib_index
            structure.prefix_count += 1

        # Markers along each prefix's binary-search path.  A marker's BMP
        # is the longest *real* prefix covering it (precomputed from the
        # RIB so lookups never backtrack).
        index_of = {length: i for i, length in enumerate(lengths)}
        for prefix, _ in routes:
            if prefix.length == 0:
                continue
            lo, hi = 0, len(lengths) - 1
            target = index_of[prefix.length]
            while lo <= hi:
                mid = (lo + hi) // 2
                if mid == target:
                    break
                if mid < target:
                    marker_len = lengths[mid]
                    key = prefix.value >> (rib.width - marker_len)
                    table = structure.tables[marker_len]
                    if key not in table:
                        from repro.net.prefix import Prefix

                        marker_prefix = Prefix(
                            key << (rib.width - marker_len), marker_len, rib.width
                        )
                        table[key] = rib.best_route_on_path(marker_prefix)
                        structure.marker_count += 1
                    lo = mid + 1
                else:
                    hi = mid - 1

        total = sum(len(t) for t in structure.tables.values())
        structure._region = structure.memmap.add_region(
            "bsearch.entries", ENTRY_BYTES, max(total, 1)
        )
        return structure

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: int) -> int:
        best = self.default
        lengths = self.lengths
        lo, hi = 0, len(lengths) - 1
        width = self.width
        while lo <= hi:
            mid = (lo + hi) // 2
            length = lengths[mid]
            entry = self.tables[length].get(key >> (width - length))
            if entry is not None:
                if entry != NO_ROUTE:
                    best = entry
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        best = self.default
        lengths = self.lengths
        lo, hi = 0, len(lengths) - 1
        width = self.width
        slot = 0
        while lo <= hi:
            mid = (lo + hi) // 2
            length = lengths[mid]
            trace.work(_PROBE_INSTRUCTIONS)
            trace.mispredict(0.5)  # hit/miss is data-dependent
            # One hash-bucket access per probe; bucket position modeled by
            # hashing the probe key into the entry region.
            slot = hash((length, key >> (width - length))) % max(
                self._region.length, 1
            )
            trace.read(self._region, slot)
            entry = self.tables[length].get(key >> (width - length))
            if entry is not None:
                if entry != NO_ROUTE:
                    best = entry
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def memory_bytes(self) -> int:
        return ENTRY_BYTES * sum(len(t) for t in self.tables.values())
