"""DXR (Zec, Rizzo, Mikuc — CCR 2012): D16R and D18R.

DXR transforms the routing table into per-chunk arrays of address ranges.
A 2^s-entry lookup table (s = 16 for D16R, 18 for D18R) either resolves
the query directly (chunks whose address space maps to one next hop) or
points at a slice of the global range array, which is binary-searched for
the last range starting at or below the queried offset.

Structural limits, exactly as Section 4.8 of the Poptrie paper describes:
the range index is 19 bits, so at most 2^19 ranges are supported; the
paper's "modified" DXR absorbs the short-format flag bit to reach 2^20
(``modified=True`` here).  Section 4.10's IPv6 variant extends the
per-chunk entry budget to 2^13 (``ipv6 tables are accepted when
modified=True``); range starts then cover the remaining ``width - s`` bits.

Each range is one 4-byte record on IPv4 — 16-bit start offset and 16-bit
next hop packed together — so one binary-search probe costs exactly one
memory access, which is what makes DXR's cache behaviour in Figures 10/11
reproducible from traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from array import array
from bisect import bisect_right
from typing import List, Tuple

import numpy as np

from repro.errors import StructuralLimitError
from repro.lookup.base import LookupStructure, StructureConfig
from repro.lookup.registry import register
from repro.mem.layout import AccessTrace, MemoryMap
from repro.net.fib import NO_ROUTE
from repro.net.rib import Rib

_DIRECT_FLAG = 1 << 31

MAX_RANGES = 1 << 19
MAX_RANGES_MODIFIED = 1 << 20
MAX_CHUNK_RANGES = 1 << 12
MAX_CHUNK_RANGES_IPV6 = 1 << 13

_TABLE_INSTRUCTIONS = 4
_PROBE_INSTRUCTIONS = 4


@dataclass(frozen=True)
class DxrConfig(StructureConfig):
    """Build options: direct-lookup bits ``s`` and the paper's "modified"
    (flag-absorbing) range format (required for IPv6, Section 4.10)."""

    s: int = 18
    modified: bool = False


@register("D18R", s=18)
class Dxr(LookupStructure):
    """DXR with configurable direct-table width ``s`` (D16R / D18R)."""

    name = "DXR"

    def __init__(
        self,
        s: int,
        width: int,
        table: array,
        starts: List[int],
        nexthops: array,
        chunk_bounds: List[Tuple[int, int]],
        modified: bool,
    ) -> None:
        self.s = s
        self.width = width
        self.offset_bits = width - s
        self.table = table
        self.starts = starts      # range start offsets (within chunk)
        self.nexthops = nexthops  # parallel next-hop array
        self.chunk_bounds = chunk_bounds
        self.modified = modified
        self.name = f"D{s}R" + (" (modified)" if modified else "")
        range_bytes = 2 + max(2, (self.offset_bits + 7) // 8)
        self._range_bytes = range_bytes
        self.memmap = MemoryMap()
        self._table_region = self.memmap.add_region("dxr.table", 4, len(table))
        self._range_region = self.memmap.add_region(
            "dxr.ranges", range_bytes, max(len(starts), 1)
        )
        # Global sorted keys for the vectorised engine (IPv4 only).
        self._gkeys = None
        if width == 32 and starts:
            chunk_of = np.zeros(len(starts), dtype=np.uint64)
            for chunk, (base, count) in enumerate(chunk_bounds):
                if count:
                    chunk_of[base : base + count] = chunk
            self._gkeys = (chunk_of << np.uint64(self.offset_bits)) | np.array(
                starts, dtype=np.uint64
            )
            self._gnh = np.frombuffer(self.nexthops, dtype=np.uint16)

    @classmethod
    def from_rib(cls, rib: Rib, config=None, **options) -> "Dxr":
        config = DxrConfig.resolve(config, options)
        s, modified = config.s, config.modified
        width = rib.width
        if width != 32 and not modified:
            raise StructuralLimitError(
                "DXR requires the modified (flag-absorbing) format for IPv6"
            )
        offset_bits = width - s
        table = array("I", bytes(4 << s))
        starts: List[int] = []
        nexthops = array("H")
        chunk_bounds: List[Tuple[int, int]] = [(0, 0)] * (1 << s)
        range_limit = MAX_RANGES_MODIFIED if modified else MAX_RANGES
        # Section 4.10: the IPv6 variant widens the per-chunk entry budget by
        # one bit; the IPv4 "modified" variant only widens the global index.
        chunk_limit = MAX_CHUNK_RANGES_IPV6 if width != 32 else MAX_CHUNK_RANGES

        def emit_ranges(node, depth: int, pos: int, inherited: int, out) -> None:
            """Append (start, nexthop) runs for the subtree at ``node``,
            merging adjacent runs with equal next hops."""
            if node is not None and node.route != NO_ROUTE:
                inherited = node.route
            if node is None or node.is_leaf() or depth == width:
                if not out or out[-1][1] != inherited:
                    out.append((pos, inherited))
                return
            half = 1 << (width - depth - 1)
            emit_ranges(node.left, depth + 1, pos, inherited, out)
            emit_ranges(node.right, depth + 1, pos + half, inherited, out)

        def fill(node, depth: int, base: int, inherited: int) -> None:
            if node is not None and node.route != NO_ROUTE:
                inherited = node.route
            if depth == s:
                if node is None or node.is_leaf():
                    table[base] = _DIRECT_FLAG | inherited
                    return
                runs: List[Tuple[int, int]] = []
                emit_ranges(node, depth, 0, inherited, runs)
                if len(runs) == 1:
                    table[base] = _DIRECT_FLAG | runs[0][1]
                    return
                if len(runs) > chunk_limit:
                    raise StructuralLimitError(
                        f"DXR: {len(runs)} ranges in one chunk exceed the "
                        f"{chunk_limit}-entry chunk format"
                    )
                range_base = len(starts)
                if range_base + len(runs) > range_limit:
                    raise StructuralLimitError(
                        f"DXR: range table exceeds {range_limit} entries"
                        + ("" if modified else " (try modified=True)")
                    )
                for start, nexthop in runs:
                    starts.append(start)
                    nexthops.append(nexthop)
                chunk_bounds[base] = (range_base, len(runs))
                table[base] = range_base  # flag bit clear ⇒ range format
                return
            if node is None:
                value = _DIRECT_FLAG | inherited
                span = 1 << (s - depth)
                table[base : base + span] = array("I", [value]) * span
                return
            half = 1 << (s - depth - 1)
            fill(node.left, depth + 1, base, inherited)
            fill(node.right, depth + 1, base + half, inherited)

        fill(rib.root, 0, 0, NO_ROUTE)
        return cls(s, width, table, starts, nexthops, chunk_bounds, modified)

    # -- LookupStructure -----------------------------------------------------

    def lookup(self, key: int) -> int:
        chunk = key >> self.offset_bits
        entry = self.table[chunk]
        if entry & _DIRECT_FLAG:
            return entry & (_DIRECT_FLAG - 1)
        base, count = self.chunk_bounds[chunk]
        offset = key & ((1 << self.offset_bits) - 1)
        i = bisect_right(self.starts, offset, base, base + count) - 1
        return self.nexthops[i]

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        chunk = key >> self.offset_bits
        trace.work(_TABLE_INSTRUCTIONS)
        trace.read(self._table_region, chunk)
        entry = self.table[chunk]
        if entry & _DIRECT_FLAG:
            return entry & (_DIRECT_FLAG - 1)
        base, count = self.chunk_bounds[chunk]
        offset = key & ((1 << self.offset_bits) - 1)
        # Explicit binary search so every probe is traced.  Each comparison
        # is a data-dependent 50/50 branch — the defining cost of the
        # search stage (Section 4.6's analysis of DXR's deep lookups).
        lo, hi = base, base + count
        while lo < hi:
            mid = (lo + hi) // 2
            trace.work(_PROBE_INSTRUCTIONS)
            trace.mispredict(0.5)
            trace.read(self._range_region, mid)
            if self.starts[mid] <= offset:
                lo = mid + 1
            else:
                hi = mid
        return self.nexthops[lo - 1]

    def _lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        if self.width != 32:
            return super()._lookup_batch(keys)
        from repro.lookup import kernels

        if kernels.dispatch_enabled():
            kernel = kernels.kernel_for_class(type(self))
            if kernel is not None:
                return kernel.lookup_batch(
                    kernel.state_from_structure(self), keys
                )
        return self._lookup_batch_template(keys)

    def _lookup_batch_template(self, keys: np.ndarray) -> np.ndarray:
        """Pre-kernel numpy template, kept as the ``--no-kernel``
        baseline and the kernels' in-repo reference implementation."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        table = np.frombuffer(self.table, dtype=np.uint32)
        chunk = keys >> np.uint64(self.offset_bits)
        entries = table[chunk.astype(np.int64)]
        direct = (entries & np.uint32(_DIRECT_FLAG)) != 0
        result = entries & np.uint32(_DIRECT_FLAG - 1)
        deep = ~direct
        if deep.any():
            gkey = keys[deep]  # (chunk << offset_bits) | offset == the key itself
            index = np.searchsorted(self._gkeys, gkey, side="right") - 1
            result[deep] = self._gnh[index]
        return result.astype(np.uint32)

    def memory_bytes(self) -> int:
        return 4 * len(self.table) + self._range_bytes * len(self.starts)

    # -- zero-copy images ------------------------------------------------

    def _image_state(self):
        meta = {"s": self.s, "width": self.width, "modified": self.modified}
        chunk_base = np.fromiter(
            (base for base, _ in self.chunk_bounds),
            dtype=np.uint32,
            count=len(self.chunk_bounds),
        )
        chunk_count = np.fromiter(
            (count for _, count in self.chunk_bounds),
            dtype=np.uint32,
            count=len(self.chunk_bounds),
        )
        segments = {
            "table": self.table,
            "starts": np.array(self.starts, dtype=np.uint64),
            "nexthops": self.nexthops,
            "chunk_base": chunk_base,
            "chunk_count": chunk_count,
        }
        return meta, segments

    @classmethod
    def _from_image_state(cls, meta, segments, *, copy: bool) -> "Dxr":
        from repro.errors import SnapshotFormatError
        from repro.lookup.dir24_8 import _frozen_view

        try:
            s = int(meta["s"])
            width = int(meta["width"])
            modified = bool(meta["modified"])
            table = segments["table"]
            starts = segments["starts"]
            nexthops = segments["nexthops"]
            chunk_base = segments["chunk_base"]
            chunk_count = segments["chunk_count"]
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotFormatError(f"invalid DXR image: {error}") from error
        if (
            len(table) != 1 << s
            or table.itemsize != 4
            or len(nexthops) != len(starts)
            or nexthops.itemsize != 2
            or len(chunk_base) != 1 << s
            or len(chunk_count) != 1 << s
        ):
            raise SnapshotFormatError("DXR image segments inconsistent")
        # ``starts`` and ``chunk_bounds`` are always materialized as
        # Python lists — the scalar path binary-searches them with
        # ``bisect`` — so only the two flat arrays attach zero-copy.
        starts_list = starts.tolist()
        chunk_bounds = list(
            zip(chunk_base.tolist(), chunk_count.tolist())
        )
        if copy:
            table_arr = array("I", table.tobytes())
            nexthop_arr = array("H", nexthops.tobytes())
        else:
            table_arr = _frozen_view(table)
            nexthop_arr = _frozen_view(nexthops)
        return cls(
            s, width, table_arr, starts_list, nexthop_arr, chunk_bounds,
            modified,
        )


register("D16R", Dxr, s=16)
