"""DIR-24-8-BASIC (Gupta, Lin, McKeown — INFOCOM 1998).

The related-work baseline of Section 2: a 2^24-entry table resolves every
prefix of length ≤ 24 in one access; longer prefixes spill into 256-entry
second-level chunks.  Entry encoding follows the original paper: the top
bit of a first-level entry selects between "next hop" and "index of a
second-level chunk".

The structure is famously memory-hungry (the 2^24 table alone is 32 MiB at
16-bit entries), which is exactly why the cache-conscious designs the paper
studies exist; including it grounds the memory-footprint comparisons.
"""

from __future__ import annotations

from array import array
from typing import List

import numpy as np

from repro.errors import StructuralLimitError
from repro.lookup.base import LookupStructure, NoOptions
from repro.lookup.registry import register
from repro.mem.layout import AccessTrace, MemoryMap
from repro.net.fib import NO_ROUTE
from repro.net.rib import Rib

_CHUNK_FLAG = 1 << 15
_INSTRUCTIONS = 4

#: 15 bits address second-level chunks, mirroring the original encoding.
MAX_CHUNKS = 1 << 15


@register("DIR-24-8")
class Dir24_8(LookupStructure):
    """DIR-24-8-BASIC with 16-bit table entries."""

    name = "DIR-24-8"

    def __init__(self, tbl24: array, tbl_long: array) -> None:
        self.tbl24 = tbl24
        self.tbl_long = tbl_long
        self.memmap = MemoryMap()
        self._region24 = self.memmap.add_region("dir.tbl24", 2, len(tbl24))
        self._region_long = self.memmap.add_region(
            "dir.tbllong", 2, max(len(tbl_long), 1)
        )

    @classmethod
    def from_rib(cls, rib: Rib, config=None, **options) -> "Dir24_8":
        NoOptions.resolve(config, options)
        if rib.width != 32:
            raise ValueError("DIR-24-8 is an IPv4 structure")
        max_fib = max((idx for _, idx in rib.routes()), default=0)
        if max_fib >= _CHUNK_FLAG:
            raise StructuralLimitError(
                "DIR-24-8: next-hop indices must fit in 15 bits"
            )
        tbl24 = array("H", bytes(2 << 24))
        chunks: List[array] = []

        # Walk the radix tree to depth 24, filling ranges (same controlled
        # prefix expansion the Poptrie builder uses, at stride 24+8).
        def fill(node, depth: int, base: int, inherited: int) -> None:
            if node is not None and node.route != NO_ROUTE:
                inherited = node.route
            if depth == 24:
                if node is not None and not node.is_leaf():
                    if len(chunks) >= MAX_CHUNKS:
                        raise StructuralLimitError(
                            "DIR-24-8: more than 2^15 second-level chunks"
                        )
                    chunk = array("H", bytes(2 << 8))
                    fill_chunk(node, 0, 0, inherited, chunk)
                    tbl24[base] = _CHUNK_FLAG | len(chunks)
                    chunks.append(chunk)
                else:
                    tbl24[base] = inherited
                return
            if node is None:
                span = 1 << (24 - depth)
                tbl24[base : base + span] = array("H", [inherited]) * span
                return
            half = 1 << (24 - depth - 1)
            fill(node.left, depth + 1, base, inherited)
            fill(node.right, depth + 1, base + half, inherited)

        def fill_chunk(node, depth: int, base: int, inherited: int, chunk) -> None:
            if node is not None and node.route != NO_ROUTE:
                inherited = node.route
            if depth == 8 or node is None:
                span = 1 << (8 - depth)
                chunk[base : base + span] = array("H", [inherited]) * span
                return
            half = 1 << (8 - depth - 1)
            fill_chunk(node.left, depth + 1, base, inherited, chunk)
            fill_chunk(node.right, depth + 1, base + half, inherited, chunk)

        fill(rib.root, 0, 0, NO_ROUTE)
        tbl_long = array("H")
        for chunk in chunks:
            tbl_long.extend(chunk)
        return cls(tbl24, tbl_long)

    # -- LookupStructure -------------------------------------------------------

    def lookup(self, key: int) -> int:
        entry = self.tbl24[key >> 8]
        if entry & _CHUNK_FLAG:
            return self.tbl_long[((entry & (_CHUNK_FLAG - 1)) << 8) | (key & 0xFF)]
        return entry

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        trace.work(_INSTRUCTIONS)
        trace.read(self._region24, key >> 8)
        entry = self.tbl24[key >> 8]
        if entry & _CHUNK_FLAG:
            index = ((entry & (_CHUNK_FLAG - 1)) << 8) | (key & 0xFF)
            trace.work(_INSTRUCTIONS)
            trace.mispredict(0.1)
            trace.read(self._region_long, index)
            return self.tbl_long[index]
        return entry

    def _lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        from repro.lookup import kernels

        if kernels.dispatch_enabled():
            kernel = kernels.kernel_for_class(type(self))
            if kernel is not None:
                return kernel.lookup_batch(
                    kernel.state_from_structure(self), keys
                )
        return self._lookup_batch_template(keys)

    def _lookup_batch_template(self, keys: np.ndarray) -> np.ndarray:
        """Pre-kernel numpy template, kept as the ``--no-kernel``
        baseline and the kernels' in-repo reference implementation."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        tbl24 = np.frombuffer(self.tbl24, dtype=np.uint16)
        entries = tbl24[(keys >> np.uint64(8)).astype(np.int64)]
        result = entries.astype(np.uint32)
        deep = (entries & np.uint16(_CHUNK_FLAG)) != 0
        if deep.any():
            tbl_long = np.frombuffer(self.tbl_long, dtype=np.uint16)
            chunk = (entries[deep] & np.uint16(_CHUNK_FLAG - 1)).astype(np.int64)
            index = (chunk << 8) | (keys[deep] & np.uint64(0xFF)).astype(np.int64)
            result[deep] = tbl_long[index]
        return result

    def memory_bytes(self) -> int:
        return 2 * len(self.tbl24) + 2 * len(self.tbl_long)

    # -- zero-copy images ------------------------------------------------

    def _image_state(self):
        return {}, {"tbl24": self.tbl24, "tbl_long": self.tbl_long}

    @classmethod
    def _from_image_state(cls, meta, segments, *, copy: bool) -> "Dir24_8":
        from repro.errors import SnapshotFormatError

        try:
            tbl24, tbl_long = segments["tbl24"], segments["tbl_long"]
        except KeyError as error:
            raise SnapshotFormatError(
                f"DIR-24-8 image lacks segment {error}"
            ) from error
        if len(tbl24) != 1 << 24 or tbl24.itemsize != 2 or tbl_long.itemsize != 2:
            raise SnapshotFormatError("DIR-24-8 image segments malformed")
        if copy:
            return cls(array("H", tbl24.tobytes()), array("H", tbl_long.tobytes()))
        return cls(_frozen_view(tbl24), _frozen_view(tbl_long))


def _frozen_view(arr: np.ndarray) -> np.ndarray:
    view = np.asarray(arr).view()
    view.flags.writeable = False
    return view
