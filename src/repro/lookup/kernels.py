"""Branchless vectorized lookup kernels over TableImage views.

The paper's thesis is that one lookup is a handful of branch-free
popcount+index operations; this module is the batch equivalent.  A
:class:`LookupKernel` is *stateless*: it holds no table, only the
compute.  All table state travels as a **view state** — a plain dict of
numpy arrays (the zero-copy segment views of a
:class:`~repro.parallel.image.TableImage`) plus a few precomputed
scalars.  Because the state is just arrays-over-a-buffer, the identical
kernel object runs

- in-process, fed a live structure's own arrays
  (:meth:`LookupKernel.state_from_structure` — this is what every
  image-capable structure's ``_lookup_batch`` wrapper does);
- inside a :class:`~repro.parallel.WorkerPool` forked worker, fed views
  over a ``multiprocessing.shared_memory`` segment;
- against an mmapped (or plain ``bytes``) image file,

with no live :class:`~repro.lookup.base.LookupStructure` required.
:func:`attach` resolves and binds a kernel to an image in one call.

**How the batch descends.**  The whole key batch moves through the trie
level-by-level as index arithmetic: a gather (``array.take``) per level,
a popcount over masked 64-bit vectors, and lane *compaction*
(``flatnonzero`` + ``take``) instead of per-key branching.  Popcount
uses ``np.bitwise_count`` (single fused SIMD pass) when numpy provides
it, else the classic 256-entry byte-LUT gather (:data:`POP8`).
Unsigned→signed index casts are free ``.view(int64)`` reinterpretations,
never copies.  See docs/KERNELS.md for the per-engine view layouts and
the measured cost model.

**Derived-array exception.**  Kernels compute on the image's segments
as-is, with one documented exception: :class:`DxrKernel` derives the
globally-sorted key column ``(chunk << offset_bits) | start`` from the
``starts``/``chunk_count`` segments at prepare time (DXR's binary search
needs a sorted probe array; the derivation is one ``np.repeat`` + shift,
done once per attach, never per batch).

Engines keep their pre-kernel numpy batch code as the *legacy template*
(``repro.core.vectorized`` for Poptrie, ``_lookup_batch_template`` on
the baselines).  :func:`kernels_disabled` switches the structure
wrappers back to it — the benchmark harness measures scalar, template
and kernel side by side, and the property tests hold all three to the
scalar oracle.
"""

from __future__ import annotations

import abc
import contextlib
from functools import lru_cache
from typing import Dict, Iterator, Optional

import numpy as np

__all__ = [
    "LookupKernel",
    "BoundKernel",
    "PoptrieKernel",
    "Dir24_8Kernel",
    "SailKernel",
    "DxrKernel",
    "attach",
    "kernel_for",
    "kernel_for_class",
    "register_kernel",
    "available_kernels",
    "dispatch_enabled",
    "kernels_disabled",
    "popcount64",
]

#: 256-entry byte-wise popcount table (the paper's Section 3.2 trick,
#: vectorized: gather 8 bytes per lane, sum).  Fallback only — numpy 2's
#: ``bitwise_count`` does the same in one fused pass.
POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

_FULL64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_SIXTY3 = np.uint64(63)
_ONE64 = np.uint64(1)

#: MSB tag of a Poptrie direct-pointing entry (mirrors
#: ``repro.core.poptrie.DIRECT_LEAF``; duplicated here so the kernel
#: module imports no structure module — registration is by class path).
_DIRECT_LEAF = 1 << 31
_NODE_MASK32 = np.uint32(_DIRECT_LEAF - 1)

#: 16-bit chunk flag shared by DIR-24-8 and SAIL entries.
_CHUNK_FLAG16 = 1 << 15

#: DXR direct-entry flag.
_DXR_DIRECT = 1 << 31


if hasattr(np, "bitwise_count"):

    def popcount64(values: np.ndarray) -> np.ndarray:
        """Per-lane population count (uint8 result, one fused pass)."""
        return np.bitwise_count(values)

else:  # pragma: no cover - numpy < 2.0

    def popcount64(values: np.ndarray) -> np.ndarray:
        """Per-lane population count via the byte LUT (uint8 result)."""
        as_bytes = values.view(np.uint8).reshape(values.shape + (8,))
        return POP8[as_bytes].sum(axis=-1, dtype=np.uint8)


# -- dispatch switch -------------------------------------------------------

_DISPATCH = True


def dispatch_enabled() -> bool:
    """True while structure ``_lookup_batch`` wrappers route through
    kernels (the default).  See :func:`kernels_disabled`."""
    return _DISPATCH


@contextlib.contextmanager
def kernels_disabled() -> Iterator[None]:
    """Temporarily route batch lookups through the legacy numpy
    templates instead of the kernels — the ``bench --no-kernel`` switch
    and the template half of every template-vs-kernel comparison."""
    global _DISPATCH
    previous = _DISPATCH
    _DISPATCH = False
    try:
        yield
    finally:
        _DISPATCH = previous


# -- the kernel contract ---------------------------------------------------


class LookupKernel(abc.ABC):
    """One engine's stateless batch-lookup compute.

    A kernel never holds table data.  Its two state builders return the
    same **view state** (a dict of numpy arrays + precomputed scalars):

    - :meth:`prepare` — from an image's ``(meta, segments, width)``,
      with format validation (the attach path);
    - :meth:`state_from_structure` — from a live structure's own
      arrays, trusted (the in-process ``_lookup_batch`` wrapper path;
      states are rebuilt per call because live arrays may be
      reallocated by updates — image-bound states are built once).

    :meth:`lookup_batch` then computes FIB indices for a batch of
    *normalized* uint64 keys against either state.  Results are
    lane-for-lane identical to the structure's scalar ``lookup`` — the
    registry-wide oracle test in ``tests/test_kernels.py`` enforces it.
    """

    #: Short kernel identifier ("poptrie", "dxr", ...) used in pool
    #: observability labels and stats.
    name: str = "abstract"

    @abc.abstractmethod
    def prepare(self, meta, segments, *, width: int) -> Dict[str, object]:
        """Build a view state from image metadata + segment views.

        Raises :class:`~repro.errors.SnapshotFormatError` when the
        segments are inconsistent with the metadata.
        """

    @abc.abstractmethod
    def state_from_structure(self, structure) -> Dict[str, object]:
        """Build a view state over a live structure's own arrays."""

    @abc.abstractmethod
    def lookup_batch(self, state: Dict[str, object], keys: np.ndarray) -> np.ndarray:
        """Resolve normalized uint64 ``keys`` to FIB indices (uint32)."""

    def supports_width(self, width: int) -> bool:
        """Address widths this kernel computes (keys are uint64 lanes)."""
        return width <= 64


# -- registry --------------------------------------------------------------

_KERNELS: Dict[str, LookupKernel] = {}


def register_kernel(class_path: str, kernel: LookupKernel) -> None:
    """Register ``kernel`` for the structure class at ``class_path``
    (the ``"module:QualName"`` form stored in image headers)."""
    if class_path in _KERNELS:
        raise ValueError(f"kernel for {class_path!r} is already registered")
    _KERNELS[class_path] = kernel


def available_kernels() -> Dict[str, str]:
    """``class_path -> kernel name`` for every registered kernel."""
    return {path: kernel.name for path, kernel in _KERNELS.items()}


def kernel_for_class(cls) -> Optional[LookupKernel]:
    """The kernel registered for a structure class (or the nearest
    registered ancestor), or ``None``."""
    for klass in getattr(cls, "__mro__", (cls,)):
        kernel = _KERNELS.get(f"{klass.__module__}:{klass.__qualname__}")
        if kernel is not None:
            return kernel
    return None


def kernel_for(image) -> Optional[LookupKernel]:
    """The kernel that can serve ``image``, or ``None`` (wrong kind,
    unregistered class, or a width outside the kernel's support)."""
    if image.kind != "structure":
        return None
    kernel = _KERNELS.get(image.class_path)
    if kernel is None or not kernel.supports_width(image.width):
        return None
    return kernel


class BoundKernel:
    """A kernel bound to one prepared view state — structure-shaped
    (``lookup`` / ``lookup_batch`` / ``name`` / ``memory_bytes``), so a
    pool worker or server can serve from it without any live
    :class:`~repro.lookup.base.LookupStructure`."""

    def __init__(
        self,
        kernel: LookupKernel,
        state: Dict[str, object],
        *,
        algorithm: str,
        width: int,
        nbytes: int = 0,
    ) -> None:
        self.kernel = kernel
        self.state = state
        self.name = algorithm
        self.width = width
        self.kernel_name = kernel.name
        self._nbytes = nbytes

    def lookup_batch(self, keys) -> np.ndarray:
        from repro.lookup.base import normalize_batch_keys

        return self.kernel.lookup_batch(
            self.state, normalize_batch_keys(keys, self.width)
        )

    def lookup(self, key: int) -> int:
        return int(
            self.kernel.lookup_batch(
                self.state, np.array([key], dtype=np.uint64)
            )[0]
        )

    def memory_bytes(self) -> int:
        return self._nbytes

    def stats(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": type(self).__name__,
            "kernel": self.kernel_name,
            "width": self.width,
            "memory_bytes": self._nbytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundKernel({self.kernel_name}, {self.name})"


def attach(image) -> BoundKernel:
    """Bind the registered kernel to ``image``'s zero-copy segment
    views.  Works identically over ``bytes``, an ``mmap``, or a
    ``SharedMemory`` buffer — whatever the image was opened on.  Raises
    ``TypeError`` when no kernel serves the image's class/width."""
    kernel = kernel_for(image)
    if kernel is None:
        raise TypeError(
            f"no lookup kernel registered for {image.class_path!r} "
            f"(width {image.width})"
        )
    segments = {name: image.segment(name) for name in image.segment_names()}
    state = kernel.prepare(image.meta, segments, width=image.width)
    return BoundKernel(
        kernel,
        state,
        algorithm=image.algorithm,
        width=image.width,
        nbytes=image.nbytes,
    )


# -- Poptrie ---------------------------------------------------------------


@lru_cache(maxsize=None)
def _poptrie_plan(width: int, k: int, s: int):
    """Per-(width, k, s) constants: the direct shift, the chunk mask and
    one (left?, amount) shift per trie level.

    Algorithm 1 extracts chunk ``i`` from the *zero-padded* key at bit
    offset ``s + k*i``; rather than materialize ``key << pad`` per batch
    (a full-array pass), each level folds the pad into its own shift —
    a right shift while the chunk lies inside the real key, a left
    shift for the final, partially-padded chunk.
    """
    levels_n = -(-(width - s) // k) if width > s else 1
    padded = s + k * levels_n
    pad = padded - width
    shift = padded - k - s
    levels = []
    for _ in range(levels_n):
        sh = shift - pad
        if sh >= 0:
            levels.append((False, np.uint64(sh)))
        else:
            levels.append((True, np.uint64(-sh)))
        shift -= k
    return (
        np.uint64(width - s),
        np.uint64((1 << k) - 1),
        tuple(levels),
    )


class PoptrieKernel(LookupKernel):
    """Poptrie (Algorithms 1–3) as pure index arithmetic.

    Stage 1 (direct pointing): one gather into the 2^s array; the MSB
    tag is stripped in place — leaf lanes are then *final* in the result
    array, and node lanes are compacted into an active set.  Stage 2
    walks the active lanes one trie level per iteration: gather vectors,
    test the chunk bit, popcount the masked vector/leafvec, and either
    scatter resolved leaves into the result or advance ``base1 +
    popcount - 1``.  When no active lane descends further — the common
    case at the first level with real tables — the level resolves in a
    single unsplit pass.
    """

    name = "poptrie"

    def prepare(self, meta, segments, *, width: int) -> Dict[str, object]:
        from repro.errors import SnapshotFormatError

        try:
            k = int(meta["k"])
            s = int(meta["s"])
            use_leafvec = bool(meta["use_leafvec"])
            leaf_bits = int(meta["leaf_bits"])
            root = int(meta["root_index"])
            node_count = int(meta["node_count"])
            leaf_count = int(meta["leaf_count"])
            vec, lvec = segments["vec"], segments["lvec"]
            base0, base1 = segments["base0"], segments["base1"]
            leaves, direct = segments["leaves"], segments["direct"]
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotFormatError(
                f"invalid poptrie image: {error}"
            ) from error
        if (
            not 1 <= k <= 6
            or not 0 <= s <= width
            or leaf_bits not in (16, 32)
            or len(vec) != node_count
            or len(lvec) != node_count
            or len(base0) != node_count
            or len(base1) != node_count
            or len(leaves) != leaf_count
            or leaves.itemsize != leaf_bits // 8
            or len(direct) != ((1 << s) if s else 0)
        ):
            raise SnapshotFormatError(
                "poptrie image segments inconsistent with header"
            )
        return self._state(
            width, k, s, use_leafvec, root,
            vec, lvec, base0, base1, leaves, direct,
        )

    def state_from_structure(self, trie) -> Dict[str, object]:
        leaf_dtype = np.uint16 if trie.config.leaf_bits == 16 else np.uint32
        return self._state(
            trie.width,
            trie.k,
            trie.s,
            trie.config.use_leafvec,
            trie.root_index,
            np.frombuffer(trie.vec, dtype=np.uint64),
            np.frombuffer(trie.lvec, dtype=np.uint64),
            np.frombuffer(trie.base0, dtype=np.uint32),
            np.frombuffer(trie.base1, dtype=np.uint32),
            np.frombuffer(trie.leaves, dtype=leaf_dtype),
            np.frombuffer(trie.direct, dtype=np.uint32),
        )

    @staticmethod
    def _state(width, k, s, use_leafvec, root,
               vec, lvec, base0, base1, leaves, direct):
        dshift, kmask, levels = _poptrie_plan(width, k, s)
        return {
            "s": s,
            "root": root,
            "use_leafvec": use_leafvec,
            "dshift": dshift,
            "kmask": kmask,
            "levels": levels,
            "vec": np.asarray(vec),
            "lvec": np.asarray(lvec),
            "base0": np.asarray(base0),
            "base1": np.asarray(base1),
            "leaves": np.asarray(leaves),
            "direct": np.asarray(direct),
        }

    def lookup_batch(self, state, keys: np.ndarray) -> np.ndarray:
        n = keys.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.uint32)
        vec = state["vec"]
        lvec = state["lvec"]
        base0 = state["base0"]
        base1 = state["base1"]
        leaves = state["leaves"]
        kmask = state["kmask"]
        use_leafvec = state["use_leafvec"]

        if state["s"]:
            # Stage 1: one gather resolves every direct-leaf lane.  The
            # uint64→int64 index cast is a zero-copy reinterpretation
            # (indices are < 2^s).  Stripping the tag bit in place is
            # safe: the tag is only ever set on leaf entries, so node
            # indices pass through unchanged.
            idx = (keys >> state["dshift"]).view(np.int64)
            entries = state["direct"].take(idx)
            active = np.flatnonzero(entries < np.uint32(_DIRECT_LEAF))
            np.bitwise_and(entries, _NODE_MASK32, out=entries)
            result = entries
            if active.size == 0:
                return result
            index = entries.take(active).astype(np.int64)
            akeys = keys.take(active)
        else:
            result = np.zeros(n, dtype=np.uint32)
            active = np.arange(n, dtype=np.int64)
            index = np.full(n, state["root"], dtype=np.int64)
            akeys = keys

        # Stage 2: all still-active lanes descend one level per
        # iteration.  A valid trie terminates every lane within the
        # planned levels (the final level's vectors carry no descend
        # bits by construction).
        for left, sh in state["levels"]:
            v = ((akeys << sh) if left else (akeys >> sh)) & kmask
            vectors = vec.take(index)
            descend = ((vectors >> v) & _ONE64) != 0
            mask = _FULL64 >> (_SIXTY3 - v)
            if not descend.any():
                # Whole active set resolves here: one unsplit pass.
                if use_leafvec:
                    bits = lvec.take(index) & mask
                else:
                    bits = ~vectors & mask
                leaf = (base0.take(index) + popcount64(bits)).astype(
                    np.int64
                ) - 1
                result[active] = leaves.take(leaf)
                return result
            if not descend.all():
                done = np.flatnonzero(~descend)
                done_index = index.take(done)
                if use_leafvec:
                    bits = lvec.take(done_index) & mask.take(done)
                else:
                    bits = ~vectors.take(done) & mask.take(done)
                leaf = (base0.take(done_index) + popcount64(bits)).astype(
                    np.int64
                ) - 1
                result[active.take(done)] = leaves.take(leaf)
                going = np.flatnonzero(descend)
                active = active.take(going)
                akeys = akeys.take(going)
                bc = popcount64(vectors.take(going) & mask.take(going))
                index = (base1.take(index.take(going)) + bc).astype(
                    np.int64
                ) - 1
            else:
                bc = popcount64(vectors & mask)
                index = (base1.take(index) + bc).astype(np.int64) - 1
        raise ValueError(
            "poptrie walk exceeded the padded key width (corrupt table)"
        )


# -- DIR-24-8 --------------------------------------------------------------


class Dir24_8Kernel(LookupKernel):
    """DIR-24-8-BASIC: one gather for /24 hits, a compacted second
    gather into the 256-entry chunks for the long-prefix lanes."""

    name = "dir24-8"

    def prepare(self, meta, segments, *, width: int) -> Dict[str, object]:
        from repro.errors import SnapshotFormatError

        try:
            tbl24, tbl_long = segments["tbl24"], segments["tbl_long"]
        except KeyError as error:
            raise SnapshotFormatError(
                f"DIR-24-8 image lacks segment {error}"
            ) from error
        if len(tbl24) != 1 << 24 or tbl24.itemsize != 2 or tbl_long.itemsize != 2:
            raise SnapshotFormatError("DIR-24-8 image segments malformed")
        return {"tbl24": np.asarray(tbl24), "tbl_long": np.asarray(tbl_long)}

    def state_from_structure(self, structure) -> Dict[str, object]:
        return {
            "tbl24": np.frombuffer(structure.tbl24, dtype=np.uint16),
            "tbl_long": np.frombuffer(structure.tbl_long, dtype=np.uint16),
        }

    def supports_width(self, width: int) -> bool:
        return width == 32

    def lookup_batch(self, state, keys: np.ndarray) -> np.ndarray:
        if keys.shape[0] == 0:
            return np.empty(0, dtype=np.uint32)
        entries = state["tbl24"].take((keys >> np.uint64(8)).view(np.int64))
        result = entries.astype(np.uint32)
        deep = np.flatnonzero(entries >= np.uint16(_CHUNK_FLAG16))
        if deep.size:
            chunk = entries.take(deep).astype(np.int64) & (_CHUNK_FLAG16 - 1)
            low = (keys.take(deep) & np.uint64(0xFF)).view(np.int64)
            result[deep] = state["tbl_long"].take((chunk << 8) | low)
        return result


# -- SAIL ------------------------------------------------------------------


class SailKernel(LookupKernel):
    """SAIL_L: levels 16/24/32 as successive compacted gathers.  Chunk
    identifiers are 1-based 15-bit BCN values, exactly as the scalar
    path reads them."""

    name = "sail"

    def prepare(self, meta, segments, *, width: int) -> Dict[str, object]:
        from repro.errors import SnapshotFormatError

        try:
            bcn16, bcn24, n32 = (
                segments["bcn16"], segments["bcn24"], segments["n32"]
            )
        except KeyError as error:
            raise SnapshotFormatError(
                f"SAIL image lacks segment {error}"
            ) from error
        if len(bcn16) != 1 << 16 or any(
            seg.itemsize != 2 for seg in (bcn16, bcn24, n32)
        ):
            raise SnapshotFormatError("SAIL image segments malformed")
        return {
            "bcn16": np.asarray(bcn16),
            "bcn24": np.asarray(bcn24),
            "n32": np.asarray(n32),
        }

    def state_from_structure(self, structure) -> Dict[str, object]:
        return {
            "bcn16": np.frombuffer(structure.bcn16, dtype=np.uint16),
            "bcn24": np.frombuffer(structure.bcn24, dtype=np.uint16),
            "n32": np.frombuffer(structure.n32, dtype=np.uint16),
        }

    def supports_width(self, width: int) -> bool:
        return width == 32

    def lookup_batch(self, state, keys: np.ndarray) -> np.ndarray:
        if keys.shape[0] == 0:
            return np.empty(0, dtype=np.uint32)
        flag = np.uint16(_CHUNK_FLAG16)
        entries = state["bcn16"].take((keys >> np.uint64(16)).view(np.int64))
        result = entries.astype(np.uint32)
        deep = np.flatnonzero(entries >= flag)
        if deep.size:
            dkeys = keys.take(deep)
            ident = (
                entries.take(deep).astype(np.int64) & (_CHUNK_FLAG16 - 1)
            ) - 1
            mid = ((dkeys >> np.uint64(8)) & np.uint64(0xFF)).view(np.int64)
            entries24 = state["bcn24"].take((ident << 8) | mid)
            result[deep] = entries24
            deeper = np.flatnonzero(entries24 >= flag)
            if deeper.size:
                ident32 = (
                    entries24.take(deeper).astype(np.int64)
                    & (_CHUNK_FLAG16 - 1)
                ) - 1
                low = (dkeys.take(deeper) & np.uint64(0xFF)).view(np.int64)
                result[deep.take(deeper)] = state["n32"].take(
                    (ident32 << 8) | low
                )
        return result


# -- DXR (D16R / D18R) -----------------------------------------------------


class DxrKernel(LookupKernel):
    """DXR: one gather for direct chunks, one ``searchsorted`` over the
    globally-sorted range keys for the rest.

    The sorted probe column is *derived* at prepare time (the documented
    exception to compute-on-segments-as-is): ranges are appended in
    chunk order at build time, so ``(chunk << offset_bits) | start`` is
    globally sorted, and the whole binary-search stage collapses to a
    single vectorized ``np.searchsorted``.
    """

    name = "dxr"

    def prepare(self, meta, segments, *, width: int) -> Dict[str, object]:
        from repro.errors import SnapshotFormatError

        try:
            s = int(meta["s"])
            table = segments["table"]
            starts = segments["starts"]
            nexthops = segments["nexthops"]
            chunk_count = segments["chunk_count"]
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotFormatError(f"invalid DXR image: {error}") from error
        if (
            len(table) != 1 << s
            or table.itemsize != 4
            or len(nexthops) != len(starts)
            or nexthops.itemsize != 2
            or len(chunk_count) != 1 << s
        ):
            raise SnapshotFormatError("DXR image segments inconsistent")
        counts = np.asarray(chunk_count).astype(np.int64)
        if int(counts.sum()) != len(starts):
            raise SnapshotFormatError("DXR chunk counts disagree with ranges")
        chunk_of = np.repeat(
            np.arange(1 << s, dtype=np.uint64), counts
        )
        gkeys = (chunk_of << np.uint64(width - s)) | np.asarray(starts)
        return {
            "offset_bits": np.uint64(width - s),
            "table": np.asarray(table),
            "gkeys": gkeys,
            "gnh": np.asarray(nexthops),
        }

    def state_from_structure(self, structure) -> Dict[str, object]:
        # The live structure precomputes the same sorted columns in its
        # constructor; reuse them rather than re-deriving per batch.  A
        # table with no range chunks has no columns at all — every lane
        # resolves in the direct stage, so empty arrays are never probed.
        gkeys = structure._gkeys
        if gkeys is None:
            gkeys = np.empty(0, dtype=np.uint64)
            gnh = np.empty(0, dtype=np.uint16)
        else:
            gnh = structure._gnh
        return {
            "offset_bits": np.uint64(structure.offset_bits),
            "table": np.frombuffer(structure.table, dtype=np.uint32),
            "gkeys": gkeys,
            "gnh": gnh,
        }

    def supports_width(self, width: int) -> bool:
        return width == 32

    def lookup_batch(self, state, keys: np.ndarray) -> np.ndarray:
        if keys.shape[0] == 0:
            return np.empty(0, dtype=np.uint32)
        entries = state["table"].take(
            (keys >> state["offset_bits"]).view(np.int64)
        )
        result = entries & np.uint32(_DXR_DIRECT - 1)
        deep = np.flatnonzero(entries < np.uint32(_DXR_DIRECT))
        if deep.size:
            # gkey == the key itself: (chunk << offset_bits) | offset.
            index = np.searchsorted(
                state["gkeys"], keys.take(deep), side="right"
            ) - 1
            result[deep] = state["gnh"].take(index)
        return result


# -- built-in registrations ------------------------------------------------

register_kernel("repro.core.poptrie:Poptrie", PoptrieKernel())
register_kernel("repro.lookup.dir24_8:Dir24_8", Dir24_8Kernel())
register_kernel("repro.lookup.sail:Sail", SailKernel())
register_kernel("repro.lookup.dxr:Dxr", DxrKernel())
