"""The common interface of every lookup structure in the library.

Poptrie and each baseline compile from a :class:`repro.net.rib.Rib` and
resolve integer addresses to FIB indices.  The benchmark harness, the
cross-algorithm equivalence tests and the cycle simulator all program
against this interface only.
"""

from __future__ import annotations

import abc
from typing import Iterable, List

import numpy as np

from repro.mem.layout import AccessTrace
from repro.net.rib import Rib


class LookupStructure(abc.ABC):
    """Abstract base for longest-prefix-match structures.

    Subclasses must implement :meth:`lookup`, :meth:`memory_bytes` and the
    :meth:`from_rib` constructor.  :meth:`lookup_traced` (for the cycle
    simulator) and :meth:`lookup_batch` (numpy engine) default to the
    scalar path so partial implementations stay usable.
    """

    #: Human-readable name used in benchmark reports ("Poptrie18", "D16R"...).
    name: str = "abstract"

    @classmethod
    @abc.abstractmethod
    def from_rib(cls, rib: Rib, **options) -> "LookupStructure":
        """Compile the structure from a RIB."""

    @abc.abstractmethod
    def lookup(self, key: int) -> int:
        """Longest-prefix-match ``key`` to a FIB index (0 = no route)."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Data-structure footprint in bytes, as compared in Table 3."""

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        """Lookup while recording memory accesses; default: no trace."""
        return self.lookup(key)

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised batch lookup; default: scalar loop."""
        lookup = self.lookup
        return np.fromiter(
            (lookup(int(key)) for key in keys), dtype=np.uint32, count=len(keys)
        )

    def supports_batch(self) -> bool:
        """True when :meth:`lookup_batch` is a real vectorised engine."""
        return type(self).lookup_batch is not LookupStructure.lookup_batch

    def memory_mib(self) -> float:
        return self.memory_bytes() / (1 << 20)

    def verify_against(
        self, rib: Rib, keys: Iterable[int]
    ) -> List[int]:
        """Return the keys (if any) where this structure disagrees with the
        RIB — the paper validated all algorithms against each other over the
        whole IPv4 space; the integration tests use this hook."""
        return [key for key in keys if self.lookup(key) != rib.lookup(key)]
