"""The common interface of every lookup structure in the library.

Poptrie and each baseline compile from a :class:`repro.net.rib.Rib` and
resolve integer addresses to FIB indices.  The benchmark harness, the
cross-algorithm equivalence tests and the cycle simulator all program
against this interface only.

Four contracts live here:

- **Uniform constructors.**  Every ``from_rib(rib, config=None,
  **options)`` accepts the structure's typed config dataclass (a
  :class:`StructureConfig` subclass, like ``PoptrieConfig``) or the same
  options as keywords; unknown option names raise ``TypeError``.  The
  per-structure options are tabulated in docs/API.md.
- **Batch input.**  :meth:`LookupStructure.lookup_batch` accepts any
  sequence of integer addresses — a plain ``list[int]``, any integer
  numpy array, or an object-dtype array of Python ints — and normalizes
  it once (:func:`normalize_batch_keys`) before dispatching to the
  structure's vectorised engine (:meth:`_lookup_batch`).  IPv4 keys
  travel as ``uint64`` arrays; IPv6 keys stay arbitrary-precision
  Python ints in an object array, which the engines split into
  ``(hi, lo)`` uint64 columns (``repro.core.vectorized.split_v6``).
- **Observability.**  :meth:`LookupStructure.stats` returns a stable
  per-structure snapshot, and :meth:`enable_obs` installs per-instance
  lookup instrumentation (counts, depth histograms) against the active
  :mod:`repro.obs` registry.  While disabled, the scalar lookup path is
  byte-for-byte the uninstrumented method — zero overhead.
- **Registration.**  Structures self-register with
  :mod:`repro.lookup.registry` so the benchmark harness, the CLI and the
  tests share one roster.
"""

from __future__ import annotations

import abc
import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import UpdateRejectedError
from repro.mem.layout import AccessTrace
from repro.net.rib import Rib


def normalize_batch_keys(keys, width: int = 32) -> np.ndarray:
    """Normalize a batch-key sequence to the engines' canonical dtype.

    The :meth:`LookupStructure.lookup_batch` input contract: callers may
    pass a plain Python sequence of ints, any integer-dtype numpy array,
    or an object-dtype array of Python ints; this helper converts all of
    them to the one representation the vectorised engines consume:

    - ``width <= 64`` (IPv4): a contiguous ``uint64`` array.  Every key
      is a machine word; engines index arrays with it directly.
    - ``width > 64`` (IPv6): an object-dtype array of Python ints.
      128-bit keys do not fit a numpy scalar, so engines split them into
      ``(hi, lo)`` uint64 columns (``repro.core.vectorized.split_v6``).

    Float or otherwise non-integer inputs raise ``TypeError`` — silently
    truncating 10.5 to address 10 would mask caller bugs.
    """
    if isinstance(keys, np.ndarray) and keys.dtype != object:
        if not np.issubdtype(keys.dtype, np.integer):
            raise TypeError(
                f"batch keys must be integers, not {keys.dtype}"
            )
        if width <= 64:
            if keys.dtype == np.uint64:
                return np.ascontiguousarray(keys)
            return keys.astype(np.uint64)
        out = np.empty(len(keys), dtype=object)
        for i, key in enumerate(keys):
            out[i] = int(key)
        return out
    # list/tuple of ints, or an object-dtype array of Python ints.
    if width <= 64:
        return np.fromiter(
            (_as_int_key(key) for key in keys),
            dtype=np.uint64,
            count=len(keys),
        )
    out = np.empty(len(keys), dtype=object)
    for i, key in enumerate(keys):
        out[i] = _as_int_key(key)
    return out


def _as_int_key(key) -> int:
    if isinstance(key, (int, np.integer)):
        return int(key)
    raise TypeError(f"batch keys must be integers, not {type(key).__name__}")


@dataclass(frozen=True)
class StructureConfig:
    """Base class for per-structure build options.

    Subclasses are frozen dataclasses whose fields *are* the structure's
    option surface; :meth:`resolve` merges an optional config instance
    with keyword overrides and — because dataclass constructors reject
    unknown names — raises ``TypeError`` on any misspelled option.
    """

    @classmethod
    def resolve(
        cls, config: Optional["StructureConfig"], options: Dict[str, object]
    ) -> "StructureConfig":
        if config is None:
            return cls(**options)
        if not isinstance(config, cls):
            raise TypeError(
                f"expected {cls.__name__}, got {type(config).__name__}"
            )
        if options:
            return dataclasses.replace(config, **options)
        return config


@dataclass(frozen=True)
class NoOptions(StructureConfig):
    """The empty config of structures without build options."""


class LookupStructure(abc.ABC):
    """Abstract base for longest-prefix-match structures.

    Subclasses must implement :meth:`lookup`, :meth:`memory_bytes` and the
    :meth:`from_rib` constructor.  :meth:`lookup_traced` (for the cycle
    simulator) and :meth:`lookup_batch` (numpy engine) default to the
    scalar path so partial implementations stay usable.
    """

    #: Human-readable name used in benchmark reports ("Poptrie18", "D16R"...).
    name: str = "abstract"

    #: Address width in bits (32 = IPv4, 128 = IPv6).  IPv4-only
    #: structures inherit the default; the others set it from the RIB.
    width: int = 32

    #: The registry the instance was instrumented against (None = not
    #: observed; the hot path is then completely untouched).
    _obs_registry = None

    #: The attached :class:`~repro.net.values.ValueTable` (None = the
    #: historical mode: leaf ids are opaque FIB indices).  The structure
    #: itself never reads it — leaves store ids either way — so the
    #: lookup hot paths and the kernels are unaffected.
    values = None

    @classmethod
    @abc.abstractmethod
    def from_rib(cls, rib: Rib, config=None, **options) -> "LookupStructure":
        """Compile the structure from a RIB.

        ``config`` is the structure's :class:`StructureConfig` subclass;
        the same options may be given as keywords instead.  Unknown
        option names raise ``TypeError``.
        """

    @abc.abstractmethod
    def lookup(self, key: int) -> int:
        """Longest-prefix-match ``key`` to a FIB index (0 = no route)."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Data-structure footprint in bytes, as compared in Table 3."""

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        """Lookup while recording memory accesses; default: no trace."""
        return self.lookup(key)

    def lookup_batch(self, keys) -> np.ndarray:
        """Resolve a batch of keys to FIB indices (uint32 array).

        The public batch entry point.  ``keys`` may be a plain sequence
        of Python ints, any integer numpy array, or an object-dtype
        array — :func:`normalize_batch_keys` converts it once to the
        engine's canonical dtype (uint64 for widths up to 64 bits,
        object array of Python ints beyond) before dispatching to
        :meth:`_lookup_batch`.  Results are identical to calling
        :meth:`lookup` per key; the conformance test in
        ``tests/test_batch_contract.py`` holds every registered
        algorithm to this.
        """
        return self._lookup_batch(normalize_batch_keys(keys, self.width))

    def _lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        """Engine hook: batch lookup over *normalized* keys.

        Subclasses with a vectorised engine override this (not
        :meth:`lookup_batch`, which owns input normalization); the
        default is the scalar loop.
        """
        lookup = self.lookup
        return np.fromiter(
            (lookup(int(key)) for key in keys), dtype=np.uint32, count=len(keys)
        )

    def supports_batch(self) -> bool:
        """True when :meth:`lookup_batch` is a real vectorised engine."""
        return type(self)._lookup_batch is not LookupStructure._lookup_batch

    @classmethod
    def supports_kernel(cls) -> bool:
        """True when a stateless branchless kernel is registered for this
        structure class (see :mod:`repro.lookup.kernels`).  The registry
        mirrors this as ``AlgorithmEntry.supports_kernel``."""
        from repro.lookup import kernels

        return kernels.kernel_for_class(cls) is not None

    def batch_engine(self) -> str:
        """Which engine a :meth:`lookup_batch` call would use right now:
        ``"kernel:<name>"``, ``"template"`` (the pre-kernel per-engine
        numpy path), or ``"scalar"`` (the per-key fallback loop)."""
        from repro.lookup import kernels

        if kernels.dispatch_enabled():
            kernel = kernels.kernel_for_class(type(self))
            if kernel is not None and kernel.supports_width(self.width):
                return f"kernel:{kernel.name}"
        return "template" if self.supports_batch() else "scalar"

    def memory_mib(self) -> float:
        return self.memory_bytes() / (1 << 20)

    # -- the value plane -----------------------------------------------------

    def attach_values(self, values) -> None:
        """Attach (or detach, with ``None``) a typed value side-table.

        The table gives meaning to the ids :meth:`lookup` returns; it
        travels with the structure through :meth:`to_image` /
        :meth:`from_image` and is resolved only at the edge
        (:meth:`lookup_value`, the CLI, service clients).
        """
        from repro.net.values import ValueTable

        if values is not None and not isinstance(values, ValueTable):
            raise TypeError(
                f"values must be a ValueTable or None, "
                f"not {type(values).__name__}"
            )
        self.values = values

    def lookup_value(self, key: int):
        """Longest-prefix-match ``key`` to its *payload*.

        With a value table attached this resolves the leaf id through it
        (``None`` on a miss); without one it returns the raw id — the
        identity value plane, which is also how images without a value
        segment load (docs/VALUES.md).
        """
        index = self.lookup(key)
        if self.values is None:
            return index
        return self.values.get(index)

    def verify_against(
        self, rib: Rib, keys: Iterable[int]
    ) -> List[int]:
        """Return the keys (if any) where this structure disagrees with the
        RIB — the paper validated all algorithms against each other over the
        whole IPv4 space; the integration tests use this hook."""
        return [key for key in keys if self.lookup(key) != rib.lookup(key)]

    # -- route updates -------------------------------------------------------

    #: The RIB :meth:`apply_updates` keeps in sync (None = not updatable;
    #: :meth:`bind_rib` or the registry's ``from_rib`` set it).
    update_rib = None

    #: Rebuild closure installed by :meth:`bind_rib` — recompiles this
    #: structure from the (mutated) RIB with its original build options.
    #: None falls back to ``type(self).from_rib`` with default options.
    _update_rebuild = None

    #: Update accounting for :meth:`stats` (class attrs double as zeros
    #: for never-updated instances).
    _update_batches = 0
    _updates_applied = 0

    def bind_rib(self, rib: Rib, rebuild=None) -> "LookupStructure":
        """Bind the RIB that :meth:`apply_updates` mutates.

        ``rebuild``, when given, is a callable ``rib -> structure``
        recompiling this structure class with the same build options —
        the rebuild-fallback engine uses it to stay faithful to how the
        instance was originally built.  The registry's
        ``AlgorithmEntry.from_rib`` binds both automatically, so
        registry-built structures are updatable out of the box.
        Returns ``self`` for chaining.
        """
        self.update_rib = rib
        self._update_rebuild = rebuild
        return self

    @classmethod
    def supports_incremental(cls) -> bool:
        """True when this structure has a real incremental update engine
        (it overrides the :meth:`_apply_updates` hook, like Poptrie's
        transactional subtree surgery).  Structures without one still
        accept :meth:`apply_updates` — through the correct, measured
        rebuild fallback — so the flag distinguishes *cost*, not
        *capability*.  The registry mirrors this as
        ``AlgorithmEntry.supports_incremental``."""
        return cls._apply_updates is not LookupStructure._apply_updates

    def update_engine(self) -> str:
        """Which engine an :meth:`apply_updates` call would use:
        ``"incremental"`` (surgical subtree replacement) or ``"rebuild"``
        (mutate the bound RIB, recompile once per batch).  Reported in
        ``stats()["update_engine"]``."""
        return "incremental" if self.supports_incremental() else "rebuild"

    def apply_updates(self, updates) -> Dict[str, object]:
        """Apply a batch of route updates through one uniform surface.

        ``updates`` is an iterable of :class:`repro.data.updates.Update`
        messages.  Requires a bound RIB (:meth:`bind_rib`); the batch is
        dispatched to the :meth:`_apply_updates` engine hook — Poptrie
        routes to the transactional incremental engine, everything else
        mutates the RIB and recompiles once per batch.  Returns a report
        dict with at least ``applied``, ``rejected`` and ``engine``
        keys.  Individually malformed or inapplicable messages (unknown
        kind, withdraw of an absent prefix) are counted in ``rejected``,
        never raised — one bad message must not take down the batch.
        """
        if self.update_rib is None:
            raise UpdateRejectedError(
                f"{type(self).__name__} has no RIB bound; call "
                "bind_rib(rib) (the registry's from_rib does this "
                "automatically)"
            )
        started = time.perf_counter()
        report = self._apply_updates(list(updates))
        self._update_batches += 1
        self._updates_applied += int(report.get("applied", 0))
        from repro import obs

        if obs.enabled():
            obs.registry().histogram(
                "repro_update_latency_us",
                "Route-update batch latency by pipeline stage.",
                buckets=obs.LATENCY_US_BUCKETS,
                table=self.name,
                stage="apply",
            ).observe((time.perf_counter() - started) * 1e6)
        return report

    def _apply_updates(self, updates: list) -> Dict[str, object]:
        """Engine hook: apply a batch of updates against the bound RIB.

        The default is the rebuild fallback: validate and fold every
        message into :attr:`update_rib`, then recompile the structure
        once per batch and adopt the result in place (callers holding a
        reference — a server handle, a bench roster — keep seeing the
        same object).  Subclasses with a cheaper engine override this
        (and thereby flip :meth:`supports_incremental`).
        """
        from repro.data.updates import validate_update

        rib = self.update_rib
        applied = rejected = 0
        for update in updates:
            try:
                validate_update(update)
                if update.kind == "A":
                    rib.insert(update.prefix, update.nexthop)
                else:
                    rib.delete(update.prefix)
            except (UpdateRejectedError, KeyError):
                rejected += 1
            else:
                applied += 1
        if applied:
            self._rebuild_from_rib()
        return {"applied": applied, "rejected": rejected,
                "engine": "rebuild"}

    def _rebuild_from_rib(self) -> None:
        """Recompile from the bound RIB and adopt the result in place."""
        rebuild = self._update_rebuild
        if rebuild is not None:
            rebuilt = rebuild(self.update_rib)
        else:
            rebuilt = type(self).from_rib(self.update_rib)
        self._adopt_state(rebuilt)

    def _adopt_state(self, rebuilt: "LookupStructure") -> None:
        """Take over ``rebuilt``'s state while keeping ``self``'s identity.

        Works for every structure in the registry because none of them
        define ``__slots__`` — instance state lives entirely in
        ``__dict__``.  The update bindings, counters and per-instance
        observability survive the adoption (wrappers are re-installed
        against the new state).

        The replacement state is assembled off to the side and published
        with a single ``__dict__`` rebind: under the GIL that store is
        atomic, so a concurrent reader (a served structure mid
        ``lookup_batch`` on another thread) sees either the old complete
        state or the new complete state, never an empty or half-copied
        one.
        """
        if type(rebuilt) is not type(self):
            raise TypeError(
                f"cannot adopt {type(rebuilt).__name__} state into "
                f"{type(self).__name__}"
            )
        reg = self._obs_registry
        values = self.values
        new = dict(rebuilt.__dict__)
        # The donor's own wrappers/bindings must not leak through.
        for key in ("lookup", "lookup_batch", "_obs_registry"):
            new.pop(key, None)
        new["update_rib"] = self.update_rib
        new["_update_rebuild"] = self._update_rebuild
        new["_update_batches"] = self._update_batches
        new["_updates_applied"] = self._updates_applied
        if new.get("values") is None and values is not None:
            new["values"] = values
        self.__dict__ = new
        if reg is not None:
            self.enable_obs(reg)

    # -- zero-copy table images ----------------------------------------------

    @classmethod
    def supports_image(cls) -> bool:
        """True when this structure can round-trip through a
        :class:`~repro.parallel.image.TableImage` (it overrides the
        :meth:`_image_state` / :meth:`_from_image_state` hooks).  The
        registry mirrors this as ``AlgorithmEntry.supports_image``."""
        return cls._image_state is not LookupStructure._image_state

    def to_image(self):
        """Export this structure's backing arrays as a
        :class:`~repro.parallel.image.TableImage`.

        The image is versioned, checksummed and self-describing; it is
        the one blessed persistence surface (see docs/PARALLEL.md) and
        the unit the shared-memory :class:`~repro.parallel.WorkerPool`
        distributes to lookup workers.  Raises ``TypeError`` for
        structures without image support.
        """
        from repro.parallel.image import TableImage

        if not self.supports_image():
            raise TypeError(
                f"{type(self).__name__} does not support table images"
            )
        meta, segments = self._image_state()
        if self.values is not None:
            # The value side-table rides along under a reserved segment
            # prefix plus one meta key.  Kernels and _from_image_state
            # select segments by name, so the extra segments are inert
            # for them; from_image() strips and decodes them.
            vmeta, vsegs = self.values.to_segments()
            meta = {**meta, "values": vmeta}
            segments = dict(segments)
            for name, arr in vsegs.items():
                segments[f"values/{name}"] = arr
        return TableImage.build(
            kind="structure",
            class_path=f"{type(self).__module__}:{type(self).__qualname__}",
            algorithm=self.name,
            width=self.width,
            meta=meta,
            segments=segments,
        )

    @classmethod
    def from_image(cls, image, *, copy: bool = True) -> "LookupStructure":
        """Reconstruct a structure from a :class:`TableImage`.

        ``copy=True`` materializes private, mutable arrays (the
        persistence path — equivalent to the historical snapshot load);
        ``copy=False`` wraps the image's buffer in read-only views, so
        the structure shares memory with the image (the data-plane path
        used by pool workers attaching to shared memory; the structure
        must then be treated as frozen).
        """
        from repro.errors import SnapshotFormatError

        if not cls.supports_image():
            raise TypeError(
                f"{cls.__name__} does not support table images"
            )
        if image.kind != "structure":
            raise SnapshotFormatError(
                f"image holds a {image.kind!r} payload, not a structure"
            )
        # Split the optional value plane off before the structure hook:
        # pre-value-plane images simply have neither the meta key nor the
        # "values/" segments and load with values=None (identity ids).
        meta = dict(image.meta)
        vmeta = meta.pop("values", None)
        segments = {}
        vsegs = {}
        for name in image.segment_names():
            if name.startswith("values/"):
                vsegs[name[len("values/"):]] = image.segment(name)
            else:
                segments[name] = image.segment(name)
        if vmeta is None and vsegs:
            raise SnapshotFormatError(
                "image has value segments but no 'values' meta"
            )
        structure = cls._from_image_state(meta, segments, copy=copy)
        if vmeta is not None:
            from repro.net.values import ValueTable

            structure.attach_values(ValueTable.from_segments(vmeta, vsegs))
        return structure

    def _image_state(self):
        """Subclass hook: ``(meta, segments)`` for :meth:`to_image`.

        ``meta`` is a dict of JSON scalars, ``segments`` an ordered dict
        of name → ``array.array`` / numpy array.  Only structures whose
        state is flat typed arrays can implement this; pointer-chasing
        structures (Radix, Patricia...) cannot, and inherit the base
        implementation as their "unsupported" marker.
        """
        raise NotImplementedError

    @classmethod
    def _from_image_state(cls, meta, segments, *, copy: bool):
        """Subclass hook: rebuild an instance from image state."""
        raise NotImplementedError

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """A stable snapshot of this structure's state and counters.

        The base schema — ``name``, ``type``, ``memory_bytes``,
        ``memory_mib``, ``observed``, ``lookups``, ``batch_keys``,
        ``batch_engine``, ``update_engine``, ``updates_applied``,
        ``values`` (the attached value table's
        ``describe()``, or None) — is identical for every structure (the lookup counters are 0 unless
        :meth:`enable_obs` is active); subclasses extend it via
        :meth:`_extra_stats`.  When observability is enabled this also
        refreshes the structure's gauges in the active registry, so a
        Prometheus dump taken right after ``stats()`` is current.
        """
        from repro import obs

        observed = self._obs_registry is not None
        lookups = batch_keys = 0
        if observed:
            reg = self._obs_registry
            lookups = reg.counter(
                "repro_lookups_total", structure=self.name
            ).value
            batch_keys = reg.counter(
                "repro_lookup_batch_keys_total", structure=self.name
            ).value
        memory = self.memory_bytes()
        if obs.enabled():
            obs.registry().gauge(
                "repro_structure_memory_bytes",
                "Data-structure footprint as reported in Table 3.",
                structure=self.name,
            ).set(memory)
        data: Dict[str, object] = {
            "name": self.name,
            "type": type(self).__name__,
            "memory_bytes": memory,
            "memory_mib": memory / (1 << 20),
            "observed": observed,
            "lookups": lookups,
            "batch_keys": batch_keys,
            "batch_engine": self.batch_engine(),
            "update_engine": self.update_engine(),
            "updates_applied": self._updates_applied,
            "values": (
                None if self.values is None else self.values.describe()
            ),
        }
        data.update(self._extra_stats())
        return data

    def _extra_stats(self) -> Dict[str, object]:
        """Subclass hook: structure-specific stats() keys."""
        return {}

    def enable_obs(self, registry=None) -> None:
        """Instrument this instance's ``lookup``/``lookup_batch``.

        Installs per-instance wrappers that count lookups, misses and
        batch sizes — and, for structures exposing ``depth_of`` (Poptrie),
        a per-lookup depth histogram plus direct-hit/trie-walk split —
        into ``registry`` (default: the active :func:`repro.obs.registry`).
        The wrappers shadow the class methods through the instance
        ``__dict__``; uninstrumented instances are untouched, so the
        disabled scalar path pays nothing.  Observation roughly doubles
        the per-lookup cost for depth-reporting structures (the depth is
        re-derived by a second traversal).
        """
        from repro import obs

        reg = registry if registry is not None else obs.registry()
        self.disable_obs()
        labels = {"structure": self.name}
        lookups = reg.counter(
            "repro_lookups_total", "Scalar lookups served.", **labels
        )
        misses = reg.counter(
            "repro_lookup_no_route_total", "Lookups that matched no route.",
            **labels,
        )
        batches = reg.counter(
            "repro_lookup_batches_total", "lookup_batch() calls.", **labels
        )
        batch_keys = reg.counter(
            "repro_lookup_batch_keys_total", "Keys resolved in batches.",
            **labels,
        )
        depth_of = getattr(self, "depth_of", None)
        if depth_of is not None:
            depth_hist = reg.histogram(
                "repro_lookup_depth",
                "Internal nodes traversed per lookup (0 = direct hit).",
                buckets=obs.DEPTH_BUCKETS,
                **labels,
            )
            direct_hits = reg.counter(
                "repro_lookup_direct_hits_total",
                "Lookups resolved by the direct-pointing array.",
                **labels,
            )
            trie_walks = reg.counter(
                "repro_lookup_trie_walks_total",
                "Lookups that descended into the trie.",
                **labels,
            )
        scalar = type(self).lookup.__get__(self)
        if self.supports_batch():
            batch = type(self).lookup_batch.__get__(self)
        else:
            # The default _lookup_batch loops over self.lookup, which would
            # resolve to the observed wrapper and double-count every key —
            # loop over the unwrapped scalar method instead.
            def batch(keys):
                keys = normalize_batch_keys(keys, self.width)
                return np.fromiter(
                    (scalar(int(key)) for key in keys),
                    dtype=np.uint32,
                    count=len(keys),
                )

        def observed_lookup(key: int) -> int:
            result = scalar(key)
            lookups.inc()
            if not result:
                misses.inc()
            if depth_of is not None:
                depth = depth_of(key)
                depth_hist.observe(depth)
                if depth:
                    trie_walks.inc()
                else:
                    direct_hits.inc()
            return result

        def observed_lookup_batch(keys):
            results = batch(keys)
            batches.inc()
            batch_keys.inc(len(results))
            misses.inc(int(np.count_nonzero(results == 0)))
            return results

        self.__dict__["lookup"] = observed_lookup
        self.__dict__["lookup_batch"] = observed_lookup_batch
        self._obs_registry = reg

    def disable_obs(self) -> None:
        """Remove instance instrumentation; the class methods take over."""
        self.__dict__.pop("lookup", None)
        self.__dict__.pop("lookup_batch", None)
        self._obs_registry = None

    def __getstate__(self):
        """Drop per-instance instrumentation: wrappers are closures over
        live registry objects and must not travel across processes.
        The rebuild closure goes for the same reason (it captures build
        options by reference); the bound RIB itself pickles fine."""
        state = self.__dict__.copy()
        for key in ("lookup", "lookup_batch", "_obs_registry",
                    "_update_rebuild", "_txn_engine"):
            state.pop(key, None)
        return state
