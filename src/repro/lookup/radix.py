"""The binary radix tree as a lookup structure (the paper's "Radix" rows).

This is a thin adapter over :class:`repro.net.rib.Rib` that adds the
:class:`~repro.lookup.base.LookupStructure` interface and — for the cycle
simulator — per-node virtual addresses.  Nodes are numbered in depth-first
order at adaptation time, approximating the allocation locality a C
implementation would get from a pool allocator; the defining performance
property (one dependent memory access per bit of depth) is preserved
regardless of numbering.
"""

from __future__ import annotations

from typing import Dict

from repro.lookup.base import LookupStructure, NoOptions
from repro.lookup.registry import register
from repro.mem.layout import AccessTrace, MemoryMap
from repro.net.fib import NO_ROUTE
from repro.net.rib import NODE_BYTES, Rib

#: Per-node work: bit extract, compare, branch, pointer chase.
_NODE_INSTRUCTIONS = 4


@register("Radix")
class RadixLookup(LookupStructure):
    """Longest-prefix match by walking the binary radix tree."""

    name = "Radix"

    def __init__(self, rib: Rib) -> None:
        self.rib = rib
        self.width = rib.width
        self.memmap = MemoryMap()
        self._numbering: Dict[int, int] = {}
        self._number_nodes()
        self._region = self.memmap.add_region(
            "radix.nodes", NODE_BYTES, max(len(self._numbering), 1)
        )

    @classmethod
    def from_rib(cls, rib: Rib, config=None, **options) -> "RadixLookup":
        NoOptions.resolve(config, options)
        return cls(rib)

    def _number_nodes(self) -> None:
        stack = [self.rib.root]
        while stack:
            node = stack.pop()
            self._numbering[id(node)] = len(self._numbering)
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    # -- LookupStructure ----------------------------------------------------

    def lookup(self, key: int) -> int:
        return self.rib.lookup(key)

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        node = self.rib.root
        best = NO_ROUTE
        shift = self.width - 1
        numbering = self._numbering
        region = self._region
        while node is not None:
            # setdefault: nodes inserted after adaptation get fresh numbers,
            # exactly as a pool allocator would place fresh allocations.
            trace.read(region, numbering.setdefault(id(node), len(numbering)))
            trace.work(_NODE_INSTRUCTIONS)
            trace.mispredict(0.05)  # bit-direction branch, mildly unpredictable
            if node.route != NO_ROUTE:
                best = node.route
            if shift < 0:
                break
            node = node.child((key >> shift) & 1)
            shift -= 1
        return best

    def memory_bytes(self) -> int:
        return self.rib.memory_bytes()
