"""The Lulea algorithm (Degermark, Brodnik, Carlsson, Pink — SIGCOMM 1997).

Cited in the paper's Section 2: "the Lulea algorithm was proposed to
reduce the memory footprint for the routing table" — it is the direct
intellectual ancestor of Poptrie's leafvec: a three-level (16/8/8) trie
whose expanded per-level arrays are compressed by marking only the
positions where the value *changes* in a bit vector, then locating the
surviving value with a population count.

This implementation keeps Lulea's machinery explicit:

- per level-chunk, a bit vector over the expanded slots with a 1 at each
  run start ("codewords", stored as 64-bit words here);
- a *base index* per 64-bit word (Lulea's "base indices into the code
  word array") so ranks don't require scanning the whole vector;
- a compacted items array whose entries are either next hops or pointers
  to next-level chunks.

What Poptrie adds on top of this (Section 2/3 of the paper): a uniform
64-ary branching factor matched to the popcount register width, the
separation of internal-node and leaf indices (vector vs leafvec), O(1)
in-node search, and incremental updates — Lulea tables are effectively
rebuild-only, which this implementation also is.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Tuple

from repro.errors import StructuralLimitError
from repro.lookup.base import LookupStructure, NoOptions
from repro.lookup.registry import register
from repro.mem.layout import AccessTrace, MemoryMap
from repro.net.fib import NO_ROUTE
from repro.net.rib import Rib, RibNode

#: Items with this bit set point at a next-level chunk id.
_CHUNK_FLAG = 1 << 15
MAX_CHUNKS = 1 << 15

_LEVEL_INSTRUCTIONS = 7  # index split, word fetch, popcount, rank add

#: The classic Lulea level split for IPv4.
LEVEL_BITS = (16, 8, 8)


class _Level:
    """One compressed level: concatenated per-chunk codewords and items.

    Chunk ``c`` of a level with ``2^k`` slots occupies words
    ``[c * 2^k / 64, (c+1) * 2^k / 64)`` of ``masks`` and the item range
    referenced through ``bases``.
    """

    def __init__(self, slots: int) -> None:
        self.slots = slots
        self.words_per_chunk = max(slots // 64, 1)
        self.masks = array("Q")
        self.bases = array("I")  # item rank before each word
        self.items = array("H")

    def append_chunk(self, values: List[int]) -> None:
        """Compress one expanded chunk (run-start marking + base indices)."""
        assert len(values) == self.slots
        word = 0
        previous: Optional[int] = None
        for v, value in enumerate(values):
            bit = v & 63
            if bit == 0:
                if v:
                    self.masks.append(word)
                    word = 0
                self.bases.append(len(self.items))
            if value != previous:
                word |= 1 << bit
                self.items.append(value)
                previous = value
        self.masks.append(word)

    def get(self, chunk: int, slot: int) -> int:
        word_index = chunk * self.words_per_chunk + (slot >> 6)
        bit = slot & 63
        word = self.masks[word_index]
        rank = self.bases[word_index] + (word & ((2 << bit) - 1)).bit_count()
        return self.items[rank - 1]

    def memory_bytes(self) -> int:
        return 8 * len(self.masks) + 4 * len(self.bases) + 2 * len(self.items)


@register("Lulea")
class Lulea(LookupStructure):
    """Three-level Lulea-compressed IPv4 lookup table."""

    name = "Lulea"

    def __init__(self) -> None:
        self.width = 32
        self.levels = [_Level(1 << bits) for bits in LEVEL_BITS]
        self.memmap = MemoryMap()
        self._regions: List[object] = []

    @classmethod
    def from_rib(cls, rib: Rib, config=None, **options) -> "Lulea":
        NoOptions.resolve(config, options)
        if rib.width != 32:
            raise ValueError("Lulea is an IPv4 structure")
        max_fib = max((idx for _, idx in rib.routes()), default=0)
        if max_fib >= _CHUNK_FLAG:
            raise StructuralLimitError("Lulea: next hops must fit in 15 bits")
        structure = cls()
        chunk_counts = [0, 0, 0]

        def expand(node: Optional[RibNode], level: int, inherited: int) -> int:
            """Expand one chunk at ``level``; returns its chunk id."""
            bits = LEVEL_BITS[level]
            values: List[int] = [NO_ROUTE] * (1 << bits)

            def fill(cur: Optional[RibNode], depth: int, base: int, inh: int):
                if cur is not None and cur.route != NO_ROUTE:
                    inh = cur.route
                if depth == bits:
                    if (
                        level + 1 < len(LEVEL_BITS)
                        and cur is not None
                        and not cur.is_leaf()
                    ):
                        child = expand(cur, level + 1, inh)
                        values[base] = _CHUNK_FLAG | child
                    else:
                        values[base] = inh
                    return
                if cur is None:
                    for i in range(base, base + (1 << (bits - depth))):
                        values[i] = inh
                    return
                half = 1 << (bits - depth - 1)
                fill(cur.left, depth + 1, base, inh)
                fill(cur.right, depth + 1, base + half, inh)

            fill(node, 0, 0, inherited)
            if chunk_counts[level] >= MAX_CHUNKS - 1:
                raise StructuralLimitError(
                    f"Lulea: more than 2^15 level-{level + 1} chunks"
                )
            structure.levels[level].append_chunk(values)
            chunk_id = chunk_counts[level]
            chunk_counts[level] += 1
            return chunk_id

        expand(rib.root, 0, NO_ROUTE)
        for i, level in enumerate(structure.levels):
            structure._regions.append(
                structure.memmap.add_region(
                    f"lulea.level{i}", 8, max(len(level.masks), 1)
                )
            )
        return structure

    # -- lookup --------------------------------------------------------------

    def lookup(self, key: int) -> int:
        entry = self.levels[0].get(0, key >> 16)
        if not entry & _CHUNK_FLAG:
            return entry
        entry = self.levels[1].get(entry & (_CHUNK_FLAG - 1), (key >> 8) & 0xFF)
        if not entry & _CHUNK_FLAG:
            return entry
        return self.levels[2].get(entry & (_CHUNK_FLAG - 1), key & 0xFF)

    def lookup_traced(self, key: int, trace: AccessTrace) -> int:
        slots = [(0, key >> 16), None, None]
        entry = 0
        for level_index in range(3):
            if level_index == 1:
                slots[1] = (entry & (_CHUNK_FLAG - 1), (key >> 8) & 0xFF)
            elif level_index == 2:
                slots[2] = (entry & (_CHUNK_FLAG - 1), key & 0xFF)
            chunk, slot = slots[level_index]
            level = self.levels[level_index]
            word_index = chunk * level.words_per_chunk + (slot >> 6)
            trace.work(_LEVEL_INSTRUCTIONS)
            # Codeword + base fetch (adjacent, one line) then the item.
            trace.read(self._regions[level_index], word_index)
            entry = level.get(chunk, slot)
            if not entry & _CHUNK_FLAG:
                return entry
            trace.mispredict(0.15)
        return entry

    def memory_bytes(self) -> int:
        return sum(level.memory_bytes() for level in self.levels)

    @property
    def chunk_counts(self) -> Tuple[int, int, int]:
        return tuple(
            len(level.masks) // level.words_per_chunk for level in self.levels
        )
