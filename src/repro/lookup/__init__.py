"""Baseline lookup structures the paper compares Poptrie against.

Each module implements one published algorithm on top of the same RIB
substrate and the same FIB-index contract as Poptrie:

- :mod:`repro.lookup.radix` — the binary radix tree (the "Radix" rows).
- :mod:`repro.lookup.treebitmap` — Tree BitMap (Eatherton et al. 2004),
  both the original 16-ary and the paper's 64-ary popcount variant.
- :mod:`repro.lookup.dxr` — DXR (Zec et al. 2012): D16R and D18R, the
  2^19-range structural limit, the paper's "modified" 2^20 variant and the
  Section 4.10 IPv6 extension.
- :mod:`repro.lookup.sail` — SAIL_L (Yang et al. 2014) with the 15-bit
  chunk-identifier limit that Section 4.8 exercises.
- :mod:`repro.lookup.dir24_8` — DIR-24-8-BASIC (Gupta et al. 1998).

Plus the rest of Section 2's lineage, for completeness and ablation:

- :mod:`repro.lookup.multibit` — the uncompressed 2^k-ary trie (Figure 1)
  Poptrie compresses (Srinivasan & Varghese's controlled prefix expansion).
- :mod:`repro.lookup.patricia` — the path-compressed Patricia trie
  (Morrison 1968 / Sklower's BSD routing table).
- :mod:`repro.lookup.bsearch_lengths` — binary search on prefix lengths
  with markers and precomputed BMPs (Waldvogel et al. 1997).
- :mod:`repro.lookup.bloom` — Bloom-filter-guided LPM (Dharmapurikar
  et al. 2006).
- :mod:`repro.lookup.lulea` — the Lulea compressed 16/8/8 trie
  (Degermark et al. 1997), the ancestor of the leafvec technique.

All of the above (plus Poptrie itself) self-register with
:mod:`repro.lookup.registry`, the single place that knows how to build the
paper's comparison roster — ``registry.get(name).from_rib(rib)``.

:mod:`repro.lookup.kernels` holds the stateless branchless batch kernels
that serve the flat-array structures (Poptrie, DIR-24-8, SAIL, DXR)
straight off zero-copy ``TableImage`` segment views — the data plane's
hot path (docs/KERNELS.md).
"""

import warnings

from repro.lookup import kernels, registry
from repro.lookup.base import (
    LookupStructure,
    NoOptions,
    StructureConfig,
    normalize_batch_keys,
)
from repro.lookup.radix import RadixLookup
from repro.lookup.treebitmap import TreeBitmap
from repro.lookup.dxr import Dxr
from repro.lookup.sail import Sail
from repro.lookup.dir24_8 import Dir24_8
from repro.lookup.multibit import MultibitTrie
from repro.lookup.patricia import PatriciaTrie
from repro.lookup.bsearch_lengths import BinarySearchLengths
from repro.lookup.bloom import BloomLpm
from repro.lookup.lulea import Lulea

__all__ = [
    "LookupStructure",
    "StructureConfig",
    "NoOptions",
    "normalize_batch_keys",
    "kernels",
    "registry",
    "RadixLookup",
    "TreeBitmap",
    "Dxr",
    "Sail",
    "Dir24_8",
    "MultibitTrie",
    "PatriciaTrie",
    "BinarySearchLengths",
    "BloomLpm",
    "Lulea",
]

#: Names that historically lived in repro.bench.harness and now resolve
#: here; importing them from this package forwards to the registry with a
#: deprecation warning so old call sites keep working for one cycle.
_MOVED = ("STANDARD_ALGORITHMS", "standard_roster", "build_structures")


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.lookup.{name} is provided by repro.lookup.registry; "
            "import it from there",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
