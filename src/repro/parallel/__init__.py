"""Shared-memory multicore data plane behind the zero-copy image API.

Two layers (see docs/PARALLEL.md for the full story):

- :mod:`repro.parallel.image` — :class:`TableImage`, the versioned,
  checksummed, zero-copy export of a lookup structure's backing arrays,
  and the blessed persistence functions (:func:`save_structure` /
  :func:`load_structure`) the legacy ``repro.core.serialize`` entry
  points now shim to.
- :mod:`repro.parallel.pool` — :class:`WorkerPool`, which places an
  image in ``multiprocessing.shared_memory``, attaches N worker
  processes without copying, shards batches across them with ordered
  reassembly, survives ``SIGKILL``-ed workers, and hot-swaps new table
  generations RCU-style (:meth:`WorkerPool.publish`).
"""

from repro.parallel.image import (
    TableImage,
    image_to_structure,
    load_structure,
    save_structure,
    structure_from_bytes,
    structure_to_bytes,
)
from repro.parallel.pool import PoolConfig, PoolView, WorkerPool

__all__ = [
    "TableImage",
    "WorkerPool",
    "PoolConfig",
    "PoolView",
    "image_to_structure",
    "load_structure",
    "save_structure",
    "structure_from_bytes",
    "structure_to_bytes",
]
