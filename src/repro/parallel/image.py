"""`TableImage`: a versioned, checksummed, zero-copy export of a table.

The paper's multicore scaling argument (Section 4.5, Figure 8) rests on
the lookup arrays being immutable and compact: once compiled, a Poptrie
is just a handful of flat typed arrays that any number of cores can read
concurrently.  This module makes that property operational.  A
:class:`TableImage` freezes the backing arrays of any structure that
implements the :meth:`~repro.lookup.base.LookupStructure.to_image` hook
into one self-describing buffer that can be written to disk, shipped
over a socket, or — the point — placed in
:mod:`multiprocessing.shared_memory` and *attached* by worker processes
without copying a byte (:mod:`repro.parallel.pool`).

Image format (``RPIMG001``, little-endian)::

    magic     8 bytes   b"RPIMG001"
    hlen      u32       byte length of the JSON header
    reserved  u32       zero
    header    hlen      canonical JSON (sorted keys, compact separators)
    pad       –         zeros to the first 64-byte boundary
    segments  –         raw arrays, each starting on a 64-byte boundary
    crc32     u32       CRC-32 over everything above

The JSON header carries ``format`` (version), ``kind`` (``"structure"``
or ``"rib"``), ``class`` (``module:QualName`` of the structure), the
registry ``algorithm`` name, the address ``width``, a structure-specific
``meta`` dict of scalars, the ``segments`` table (name, dtype, count,
offset, nbytes per segment) and the total image ``nbytes``.  The header
is serialized canonically, so equal tables produce byte-identical images
— :meth:`TableImage.fingerprint` is a usable table identity.

Segments start on 64-byte boundaries so that attached numpy views are
cache-line aligned, matching the alignment story told in
``repro.mem.layout``.

This module is also the blessed persistence surface: the historical
``repro.core.serialize.save/load`` entry points are deprecation shims
over :func:`save_structure` / :func:`load_structure`, which still read
(but no longer write) the legacy ``POPTRIE1`` format.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import struct
import zlib
from array import array
from typing import BinaryIO, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import SnapshotFormatError

MAGIC = b"RPIMG001"
FORMAT_VERSION = 1

#: Segment alignment: one x86 cache line, so attached views never split
#: their first element across lines.
SEGMENT_ALIGN = 64

_PREAMBLE = struct.Struct("<8sII")
_CRC = struct.Struct("<I")

#: ``array.array`` typecodes appear in image segments as unsigned numpy
#: dtypes of the same width (all backing arrays in this library are
#: unsigned).  Single-byte dtypes spell their (irrelevant) byte order
#: ``"|"``, so ``u1`` appears under both spellings.
_DTYPE_ALLOWED = frozenset({"|u1", "<u1", "<u2", "<u4", "<u8"})


def _align(offset: int) -> int:
    return (offset + SEGMENT_ALIGN - 1) & ~(SEGMENT_ALIGN - 1)


def _as_segment_array(name: str, values) -> np.ndarray:
    """Normalize a backing array to a contiguous little-endian ndarray."""
    if isinstance(values, array):
        out = np.frombuffer(values, dtype=np.dtype(f"<u{values.itemsize}"))
    else:
        out = np.ascontiguousarray(values)
    if out.ndim != 1:
        raise TypeError(f"segment {name!r} must be one-dimensional")
    if out.dtype.str not in _DTYPE_ALLOWED:
        raise TypeError(
            f"segment {name!r} has unsupported dtype {out.dtype.str!r}"
        )
    return out


def _canonical_header(header: Mapping[str, object]) -> bytes:
    return json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("ascii")


class TableImage:
    """One frozen table: a JSON header plus cache-line-aligned segments.

    Build one from live arrays with :meth:`build` (usually via
    ``structure.to_image()``), or attach to an existing serialized image
    — bytes, mmap, or a shared-memory buffer — with :meth:`open`, which
    parses the header and exposes each segment as a read-only numpy view
    into the *original* buffer: opening an image never copies segment
    data.
    """

    def __init__(
        self,
        header: Dict[str, object],
        segments: Dict[str, np.ndarray],
        buffer: Optional[memoryview] = None,
    ) -> None:
        self._header = header
        self._segments = segments
        #: The serialized buffer this image was opened over (None for
        #: freshly built images until :meth:`to_bytes` is called).
        self._buffer = buffer

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        *,
        kind: str,
        algorithm: str,
        width: int,
        meta: Mapping[str, object],
        segments: Mapping[str, object],
        class_path: str = "",
    ) -> "TableImage":
        """Assemble an image from live backing arrays.

        ``segments`` maps names to ``array.array`` or numpy arrays; each
        is normalized to a contiguous little-endian unsigned array.
        ``meta`` must be JSON-scalar only — it travels in the header.
        """
        arrays: Dict[str, np.ndarray] = {}
        specs: List[Dict[str, object]] = []
        for name, values in segments.items():
            arrays[name] = _as_segment_array(name, values)

        # Two-pass layout: header length depends on the offsets, which
        # depend on the header length.  Iterate until stable (the JSON
        # integer widths converge within two rounds).
        header: Dict[str, object] = {
            "format": FORMAT_VERSION,
            "kind": kind,
            "class": class_path,
            "algorithm": algorithm,
            "width": int(width),
            "meta": dict(meta),
            "segments": specs,
            "nbytes": 0,
        }
        hlen = 0
        for _ in range(4):
            specs.clear()
            offset = _align(_PREAMBLE.size + hlen)
            for name, arr in arrays.items():
                specs.append(
                    {
                        "name": name,
                        "dtype": arr.dtype.str,
                        "count": int(arr.size),
                        "offset": offset,
                        "nbytes": int(arr.nbytes),
                    }
                )
                offset = _align(offset + arr.nbytes)
            header["nbytes"] = offset + _CRC.size
            encoded = _canonical_header(header)
            if len(encoded) == hlen:
                break
            hlen = len(encoded)
        else:  # pragma: no cover - layout always converges
            raise AssertionError("image header layout did not converge")
        return cls(header, arrays)

    @classmethod
    def open(cls, buffer, *, verify: bool = True) -> "TableImage":
        """Attach to a serialized image without copying segment data.

        ``buffer`` is anything supporting the buffer protocol — bytes, a
        ``mmap``, or ``SharedMemory.buf``.  Trailing slack beyond the
        image's recorded ``nbytes`` is ignored (shared-memory segments
        are page-rounded).  ``verify=True`` (default) checks the CRC over
        the whole image; attach-side callers that already trust the
        buffer (workers attaching to a parent-written segment) may skip
        it.
        """
        view = memoryview(buffer)
        if view.ndim != 1 or view.itemsize != 1:
            view = view.cast("B")
        if len(view) < _PREAMBLE.size + _CRC.size:
            raise SnapshotFormatError("image truncated")
        magic, hlen, reserved = _PREAMBLE.unpack_from(view, 0)
        if magic != MAGIC:
            raise SnapshotFormatError("bad image magic")
        if reserved:
            raise SnapshotFormatError("reserved image field is non-zero")
        header_end = _PREAMBLE.size + hlen
        if header_end + _CRC.size > len(view):
            raise SnapshotFormatError("image truncated in header")
        try:
            header = json.loads(bytes(view[_PREAMBLE.size:header_end]))
        except ValueError as error:
            raise SnapshotFormatError(
                f"unparseable image header: {error}"
            ) from error
        if not isinstance(header, dict):
            raise SnapshotFormatError("image header is not an object")
        if header.get("format") != FORMAT_VERSION:
            raise SnapshotFormatError(
                f"unsupported image format version {header.get('format')!r}"
            )
        total = header.get("nbytes")
        if (
            not isinstance(total, int)
            or total < header_end + _CRC.size
            or total > len(view)
        ):
            raise SnapshotFormatError("image truncated (bad total size)")
        if verify:
            (stored,) = _CRC.unpack_from(view, total - _CRC.size)
            if zlib.crc32(view[: total - _CRC.size]) != stored:
                raise SnapshotFormatError("image CRC mismatch")

        specs = header.get("segments")
        if not isinstance(specs, list):
            raise SnapshotFormatError("image header lacks a segment table")
        segments: Dict[str, np.ndarray] = {}
        for spec in specs:
            try:
                name = spec["name"]
                dtype = np.dtype(spec["dtype"])
                count = spec["count"]
                offset = spec["offset"]
                nbytes = spec["nbytes"]
            except (TypeError, KeyError, ValueError) as error:
                raise SnapshotFormatError(
                    f"malformed segment spec: {error}"
                ) from error
            if dtype.str not in _DTYPE_ALLOWED:
                raise SnapshotFormatError(
                    f"segment {name!r} has unsupported dtype {dtype.str!r}"
                )
            if (
                not isinstance(count, int)
                or not isinstance(offset, int)
                or count < 0
                or offset < header_end
                or count * dtype.itemsize != nbytes
                or offset + nbytes > total - _CRC.size
            ):
                raise SnapshotFormatError(
                    f"segment {name!r} overflows the image"
                )
            arr = np.frombuffer(
                view[offset : offset + nbytes], dtype=dtype, count=count
            )
            arr.flags.writeable = False
            segments[name] = arr
        return cls(header, segments, buffer=view)

    # -- introspection ---------------------------------------------------

    @property
    def kind(self) -> str:
        return str(self._header.get("kind", ""))

    @property
    def class_path(self) -> str:
        return str(self._header.get("class", ""))

    @property
    def algorithm(self) -> str:
        return str(self._header.get("algorithm", ""))

    @property
    def width(self) -> int:
        return int(self._header.get("width", 32))

    @property
    def meta(self) -> Dict[str, object]:
        return dict(self._header.get("meta", {}))

    @property
    def nbytes(self) -> int:
        """Total serialized size, including header, padding and CRC."""
        return int(self._header["nbytes"])

    def segment_names(self) -> List[str]:
        return list(self._segments)

    def segment(self, name: str) -> np.ndarray:
        """The named segment as a numpy array (read-only when attached)."""
        try:
            return self._segments[name]
        except KeyError:
            raise SnapshotFormatError(
                f"image has no segment {name!r}"
            ) from None

    def header(self) -> Dict[str, object]:
        """A copy of the parsed JSON header."""
        return json.loads(_canonical_header(self._header))

    def fingerprint(self) -> str:
        """SHA-256 over the canonical header and every segment's bytes.

        Stable across build → serialize → open: two images fingerprint
        equal iff their headers and segment contents are identical.
        """
        digest = hashlib.sha256(_canonical_header(self._header))
        for arr in self._segments.values():
            digest.update(np.ascontiguousarray(arr).data)
        return digest.hexdigest()

    # -- serialization ---------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to one ``bytes`` blob (buffer-protocol object)."""
        out = bytearray(self.nbytes)
        self.write_into(out)
        return bytes(out)

    def write_into(self, buffer) -> int:
        """Serialize directly into a writable buffer (e.g. shared memory).

        Returns the number of bytes written (== :attr:`nbytes`); the
        buffer may be larger.
        """
        view = memoryview(buffer)
        if view.ndim != 1 or view.itemsize != 1:
            view = view.cast("B")
        total = self.nbytes
        if len(view) < total:
            raise ValueError(
                f"buffer holds {len(view)} bytes, image needs {total}"
            )
        encoded = _canonical_header(self._header)
        _PREAMBLE.pack_into(view, 0, MAGIC, len(encoded), 0)
        end = _PREAMBLE.size + len(encoded)
        view[_PREAMBLE.size:end] = encoded
        view[end:_align(end)] = bytes(_align(end) - end)
        for spec in self._header["segments"]:
            arr = self._segments[spec["name"]]
            offset = spec["offset"]
            stop = offset + spec["nbytes"]
            view[offset:stop] = np.ascontiguousarray(arr).data.cast("B")
            pad_stop = min(_align(stop), total - _CRC.size)
            view[stop:pad_stop] = bytes(pad_stop - stop)
        _CRC.pack_into(view, total - _CRC.size, zlib.crc32(view[: total - _CRC.size]))
        return total


# -- the blessed persistence surface ------------------------------------


def image_to_structure(image: TableImage, *, copy: bool = True):
    """Reconstruct the structure an image was exported from.

    ``copy=True`` (persistence): the structure owns fresh, fully mutable
    arrays — equivalent to the historical snapshot ``load``.
    ``copy=False`` (data plane): the structure wraps read-only views into
    the image's buffer — zero-copy, frozen, exactly what pool workers
    attach to.
    """
    from repro.lookup.base import LookupStructure

    if image.kind != "structure":
        raise SnapshotFormatError(
            f"image holds a {image.kind or 'unknown'!s} payload, "
            "not a lookup structure"
        )
    module_name, _, qualname = image.class_path.partition(":")
    if not module_name or not qualname:
        raise SnapshotFormatError(
            f"image names no structure class ({image.class_path!r})"
        )
    try:
        obj = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as error:
        raise SnapshotFormatError(
            f"image references unknown class {image.class_path!r}: {error}"
        ) from error
    if not (isinstance(obj, type) and issubclass(obj, LookupStructure)):
        raise SnapshotFormatError(
            f"{image.class_path!r} is not a lookup structure"
        )
    return obj.from_image(image, copy=copy)


def structure_to_bytes(structure) -> bytes:
    """Serialize any image-capable structure to an ``RPIMG001`` blob."""
    return structure.to_image().to_bytes()


def structure_from_bytes(blob: bytes, *, copy: bool = True):
    """Load a structure from a binary snapshot, old or new.

    Accepts both the ``RPIMG001`` image format (written by
    :func:`save_structure`) and the legacy ``POPTRIE1`` format (written
    by pre-image releases of ``repro.core.serialize``).
    """
    if blob[: len(MAGIC)] == MAGIC:
        return image_to_structure(TableImage.open(blob), copy=copy)
    from repro.core import serialize

    if blob[: len(serialize.MAGIC)] == serialize.MAGIC:
        return serialize._load_bytes_v1(blob)
    raise SnapshotFormatError("bad magic")


def save_structure(structure, destination: Union[str, BinaryIO]) -> int:
    """Write a structure snapshot to a path or stream; returns byte count.

    The one blessed snapshot writer.  Passes the blob through the
    ``snapshot`` fault-injection point so an armed
    :class:`~repro.robust.faults.FaultPlan` with ``truncate_snapshot``
    models a torn write exactly as the legacy writer did.
    """
    from repro.robust import faults

    blob = faults.mangle_snapshot(structure_to_bytes(structure))
    if isinstance(destination, str):
        with open(destination, "wb") as stream:
            stream.write(blob)
    else:
        destination.write(blob)
    return len(blob)


def load_structure(source: Union[str, BinaryIO], *, copy: bool = True):
    """Read a structure snapshot (``RPIMG001`` or legacy ``POPTRIE1``)."""
    if isinstance(source, str):
        with open(source, "rb") as stream:
            return structure_from_bytes(stream.read(), copy=copy)
    return structure_from_bytes(source.read(), copy=copy)


def sniff_magic(blob: bytes) -> Optional[str]:
    """``"image"``, ``"legacy"`` or ``None`` for the first bytes of a blob."""
    if blob[: len(MAGIC)] == MAGIC:
        return "image"
    from repro.core import serialize

    if blob[: len(serialize.MAGIC)] == serialize.MAGIC:
        return "legacy"
    return None
