"""Shared-memory multicore lookup: the real Figure 8 data plane.

The paper scales Poptrie by running the same immutable arrays on many
cores.  :class:`WorkerPool` does exactly that with processes (the only
route to real parallelism under the GIL): it serializes a structure to a
:class:`~repro.parallel.image.TableImage`, places the image in
:mod:`multiprocessing.shared_memory`, and spawns N workers that *attach*
to the segment.  A worker attaches a stateless branchless kernel
directly to the image's segment views when one is registered
(:func:`repro.lookup.kernels.attach` — no structure is materialized at
all), and falls back to ``from_image(..., copy=False)`` read-only numpy
views otherwise; either way all workers execute lookups against the
same physical pages the parent wrote once.  Which engine each worker
runs is reported in its ``ready`` message, :meth:`WorkerPool.stats` and
the ``repro_pool_engine_batches_total{pool,engine}`` counter.

Batches are sharded across the workers and reassembled in shard order,
so ``pool.lookup_batch(keys)`` is bit-for-bit the array
``structure.lookup_batch(keys)`` would return, just computed on many
cores.

**Crash safety.**  Each worker has a private duplex pipe and at most one
outstanding request.  The parent waits on pipes *and* process sentinels;
a worker that dies mid-batch — including ``SIGKILL`` — is respawned
attached to the current generation and its shard is re-dispatched
(lookups are idempotent), so callers never see a wrong or dropped
response.  A worker that keeps dying trips ``restart_limit`` and raises
:class:`~repro.errors.PoolError`.

**Hot swap (RCU).**  :meth:`WorkerPool.publish` writes the new table
into a fresh shared-memory segment (generation g+1) and sends a swap
message down every pipe.  Pipes are FIFO, so each worker finishes any
in-flight shard against the old generation before switching; once every
worker has acknowledged — the epoch drain — the old segment is
unlinked.  ``repro serve --workers N`` wires this into the server's
``OP_RELOAD`` path through :class:`PoolView` and
:class:`~repro.server.handle.TableHandle`.
"""

from __future__ import annotations

import gc
import os
import secrets
import signal
import threading
import time
import weakref
from dataclasses import dataclass
from multiprocessing import (
    connection,
    get_all_start_methods,
    get_context,
    shared_memory,
)
from typing import Dict, List, Optional

import numpy as np

from repro.errors import PoolError
from repro.lookup.base import normalize_batch_keys
from repro.parallel.image import TableImage, image_to_structure

#: Shard-size histogram buckets (keys per dispatched shard).
SHARD_BUCKETS = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)


@dataclass(frozen=True)
class PoolConfig:
    """Worker-pool tuning knobs.

    ``start_method`` defaults to ``fork`` where available (instant
    startup; workers re-attach to shared memory anyway) and ``spawn``
    elsewhere.  ``min_shard`` stops tiny batches from being split across
    workers — below it, IPC costs more than the parallelism returns.
    ``restart_limit`` bounds respawns *per worker slot* over the pool's
    lifetime; ``batch_timeout`` bounds one ``lookup_batch`` call.
    """

    workers: int = 2
    start_method: Optional[str] = None
    min_shard: int = 256
    batch_timeout: float = 60.0
    restart_limit: int = 8
    #: Verify the image CRC on every worker attach.  Off by default: the
    #: parent wrote the segment moments ago, and a full-image CRC per
    #: attach is the one per-worker cost that grows with table size.
    verify_attach: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.min_shard < 1:
            raise ValueError("min_shard must be >= 1")


def _worker_main(worker_id: int, shm_name: str, generation: int,
                 conn, verify: bool) -> None:
    """Worker process: attach to the image, answer batch requests.

    Protocol (strict request/reply per pipe; the parent never has more
    than one message in flight per worker):

    - ``("batch", task_id, keys)`` → ``("result", task_id, results)``
    - ``("swap", gen, name)``      → ``("swapped", id, gen, engine)``
    - ``("stop",)``                → exit

    On startup the worker sends ``("ready", id, gen, engine)`` where
    ``engine`` describes what serves its batches: ``"kernel:<name>"``
    when a stateless kernel attached straight to the shm segment views,
    else ``"structure:<Type>"`` for the zero-copy structure fallback.
    """
    # The parent owns lifecycle; a Ctrl-C on the foreground process
    # group must not take workers down before the pool's own shutdown.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    from repro.lookup import kernels

    def attach(name):
        shm = shared_memory.SharedMemory(name=name)
        image = TableImage.open(shm.buf, verify=verify)
        try:
            bound = kernels.attach(image)
        except TypeError:
            structure = image_to_structure(image, copy=False)
            return shm, structure, f"structure:{type(structure).__name__}"
        return shm, bound, f"kernel:{bound.kernel_name}"

    shm, structure, engine = attach(shm_name)
    conn.send(("ready", worker_id, generation, engine))
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent went away
            op = message[0]
            if op == "stop":
                break
            if op == "batch":
                _, task_id, keys = message
                results = structure.lookup_batch(keys)
                conn.send(("result", task_id, results))
            elif op == "swap":
                _, generation, name = message
                old_shm, old_structure = shm, structure
                shm, structure, engine = attach(name)
                # Release every view into the old segment before closing
                # its mapping; a stray reference raises BufferError, in
                # which case the mapping is simply left to process exit
                # (the parent unlinks the name regardless).
                del old_structure
                gc.collect()
                try:
                    old_shm.close()
                except BufferError:  # pragma: no cover - defensive
                    pass
                conn.send(("swapped", worker_id, generation, engine))
    finally:
        del structure
        gc.collect()
        try:
            shm.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        conn.close()


class _Worker:
    __slots__ = ("id", "process", "conn", "restarts", "engine")

    def __init__(self, worker_id: int, process, conn) -> None:
        self.id = worker_id
        self.process = process
        self.conn = conn
        self.restarts = 0
        self.engine = "unknown"


def _cleanup_segments(segments: Dict[int, shared_memory.SharedMemory]) -> None:
    for shm in segments.values():
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - racing exit
            pass
    segments.clear()


class WorkerPool:
    """N lookup workers attached to one shared-memory table image.

    >>> from repro.net.prefix import Prefix
    >>> from repro.net.rib import Rib
    >>> from repro.core.poptrie import Poptrie
    >>> rib = Rib()
    >>> rib.insert(Prefix.parse("10.0.0.0/8"), 7)
    0
    >>> with WorkerPool(Poptrie.from_rib(rib), PoolConfig(workers=2)) as pool:
    ...     list(pool.lookup_batch([Prefix.parse("10.1.2.3/32").value, 0]))
    [7, 0]
    """

    def __init__(self, source, config: Optional[PoolConfig] = None) -> None:
        self.config = config or PoolConfig()
        image = source if isinstance(source, TableImage) else source.to_image()
        self.algorithm = image.algorithm
        self.width = image.width
        self._ctx = get_context(
            self.config.start_method
            or ("fork" if "fork" in get_all_start_methods() else "spawn")
        )
        self._lock = threading.RLock()
        self._closed = False
        self._task_counter = 0
        self._generation = 0
        self._uid = f"{os.getpid()}-{secrets.token_hex(4)}"
        self._segments: Dict[int, shared_memory.SharedMemory] = {}
        self._image_nbytes = image.nbytes
        self._write_generation(0, image)
        self._workers: List[_Worker] = []
        try:
            for worker_id in range(self.config.workers):
                self._workers.append(self._spawn(worker_id))
        except Exception:
            self.close()
            raise
        self._finalizer = weakref.finalize(
            self, _cleanup_segments, self._segments
        )
        self._set_gauge()

    # -- lifecycle -------------------------------------------------------

    def _segment_name(self, generation: int) -> str:
        return f"repro-pool-{self._uid}-g{generation}"

    def _write_generation(self, generation: int, image: TableImage) -> None:
        shm = shared_memory.SharedMemory(
            name=self._segment_name(generation), create=True, size=image.nbytes
        )
        try:
            image.write_into(shm.buf)
        except Exception:
            shm.close()
            shm.unlink()
            raise
        self._segments[generation] = shm

    def _spawn(self, worker_id: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._segment_name(self._generation),
                self._generation,
                child_conn,
                self.config.verify_attach,
            ),
            name=f"repro-pool-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(worker_id, process, parent_conn)
        message = self._expect(worker, "ready")
        if len(message) > 3:
            worker.engine = message[3]
        return worker

    def _respawn(self, worker: _Worker) -> _Worker:
        """Replace a dead worker in place, attached to the current
        generation; raises :class:`PoolError` past the restart budget."""
        restarts = worker.restarts + 1
        if restarts > self.config.restart_limit:
            raise PoolError(
                f"worker {worker.id} died {restarts} times; giving up"
            )
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        if worker.process.is_alive():  # pragma: no cover - defensive
            worker.process.terminate()
        worker.process.join(timeout=5)
        fresh = self._spawn(worker.id)
        fresh.restarts = restarts
        self._workers[worker.id] = fresh
        self._count("repro_pool_worker_restarts_total",
                    "Workers respawned after dying.", worker=str(worker.id))
        return fresh

    def close(self) -> None:
        """Stop the workers and unlink every shared-memory generation."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in getattr(self, "_workers", []):
                try:
                    worker.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
            for worker in getattr(self, "_workers", []):
                worker.process.join(timeout=2)
                if worker.process.is_alive():  # pragma: no cover - stuck
                    worker.process.terminate()
                    worker.process.join(timeout=2)
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover
                    pass
            _cleanup_segments(self._segments)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the data plane --------------------------------------------------

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def workers(self) -> int:
        return len(self._workers)

    @property
    def image_nbytes(self) -> int:
        """Serialized size of the currently published image."""
        return self._image_nbytes

    def lookup_batch(self, keys) -> np.ndarray:
        """Resolve a batch across the workers, results in input order.

        Sharding: the batch is split into at most ``workers`` contiguous
        shards of at least ``min_shard`` keys; shard *i* goes to worker
        *i*.  Reassembly concatenates results in shard order, so the
        output is exactly what one worker — or the original structure —
        would have produced.
        """
        keys = normalize_batch_keys(keys, self.width)
        if len(keys) == 0:
            return np.empty(0, dtype=np.uint32)
        with self._lock:
            if self._closed:
                raise PoolError("pool is closed")
            shard_target = max(
                1, -(-len(keys) // max(self.config.min_shard, 1))
            )
            nshards = min(len(self._workers), shard_target, len(keys))
            shards = np.array_split(keys, nshards)
            pending: Dict[int, int] = {}  # task_id -> shard index
            by_worker: Dict[int, int] = {}  # worker slot -> task_id
            results: List[Optional[np.ndarray]] = [None] * nshards
            for index, shard in enumerate(shards):
                worker = self._workers[index]
                task_id = self._dispatch(worker, shard)
                pending[task_id] = index
                by_worker[worker.id] = task_id
                self._observe_shard(len(shard), worker)
            deadline = time.monotonic() + self.config.batch_timeout
            while pending:
                self._collect_one(
                    pending, by_worker, results, shards, deadline
                )
            return np.concatenate(results)

    def _dispatch(self, worker: _Worker, shard: np.ndarray) -> int:
        self._task_counter += 1
        task_id = self._task_counter
        try:
            worker.conn.send(("batch", task_id, shard))
        except (OSError, ValueError):
            # Died before we could even send; respawn and retry once —
            # the fresh worker either takes the shard or PoolError out.
            worker = self._respawn(worker)
            worker.conn.send(("batch", task_id, shard))
        return task_id

    def _collect_one(self, pending, by_worker, results, shards,
                     deadline) -> None:
        """Wait for one result (or one death) and fold it in."""
        waiting = [
            self._workers[slot] for slot, task in by_worker.items()
            if task in pending
        ]
        objects = []
        for worker in waiting:
            objects.append(worker.conn)
            objects.append(worker.process.sentinel)
        timeout = deadline - time.monotonic()
        if timeout <= 0 or not connection.wait(objects, timeout=timeout):
            raise PoolError(
                f"batch timed out after {self.config.batch_timeout}s "
                f"({len(pending)} shards outstanding)"
            )
        for worker in waiting:
            task_id = by_worker.get(worker.id)
            if task_id not in pending:
                continue
            message = None
            if worker.conn.poll():
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    message = None  # died mid-reply: torn pickle → redo
            elif worker.process.is_alive():
                continue  # sentinel of a different worker woke us
            if message is None:
                # The worker is dead (SIGKILL, OOM, crash).  Lookups are
                # idempotent: respawn against the current generation and
                # re-dispatch the lost shard.
                index = pending.pop(task_id)
                fresh = self._respawn(worker)
                new_task = self._dispatch(fresh, shards[index])
                pending[new_task] = index
                by_worker[fresh.id] = new_task
                continue
            kind, got_task, payload = message
            if kind != "result" or got_task != task_id:
                raise PoolError(
                    f"worker {worker.id} answered out of protocol "
                    f"({kind!r}, task {got_task} != {task_id})"
                )
            results[pending.pop(got_task)] = payload
            self._count(
                "repro_pool_batches_total",
                "Shards completed, per worker slot.",
                worker=str(worker.id),
            )
            self._count(
                "repro_pool_engine_batches_total",
                "Shards completed, by the engine that served them.",
                engine=worker.engine,
            )

    # -- RCU hot swap ----------------------------------------------------

    def publish(self, source) -> int:
        """Publish a new table to every worker; returns the generation.

        Writes the image into a fresh shared-memory segment, then swaps
        each worker over its FIFO pipe — in-flight shards finish against
        the old generation first.  The old segment is unlinked only
        after every worker acknowledged (the epoch drain), so no worker
        ever reads unmapped memory.
        """
        image = source if isinstance(source, TableImage) else source.to_image()
        with self._lock:
            if self._closed:
                raise PoolError("pool is closed")
            generation = self._generation + 1
            self._write_generation(generation, image)
            name = self._segment_name(generation)
            drained: List[_Worker] = []
            for worker in list(self._workers):
                try:
                    worker.conn.send(("swap", generation, name))
                except (OSError, ValueError):
                    worker = None  # handled below
                if worker is not None:
                    drained.append(worker)
            old_generation = self._generation
            self._generation = generation
            self._image_nbytes = image.nbytes
            self.algorithm = image.algorithm
            self.width = image.width
            for worker in self._workers:
                if worker in drained:
                    try:
                        message = self._expect(worker, "swapped")
                        if len(message) > 3:
                            worker.engine = message[3]
                        continue
                    except PoolError:
                        pass  # died mid-swap: respawn at the new gen
                self._respawn(worker)
            # Epoch drain complete: every live worker runs generation g;
            # the old segment can disappear from the namespace.
            old = self._segments.pop(old_generation, None)
            if old is not None:
                old.close()
                try:
                    old.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            self._count("repro_pool_swaps_total",
                        "Hot swaps published to the pool.")
            self._set_gauge()
            return generation

    def publish_structure(self, structure) -> "PoolView":
        """:meth:`publish` + a fresh :class:`PoolView` — the shape the
        server's rebuild hook wants (one call returning the new table)."""
        self.publish(structure)
        return self.view()

    def view(self) -> "PoolView":
        """A structure-shaped façade over this pool (see
        :class:`PoolView`), pinned to the current generation for
        bookkeeping (all views share the live pool)."""
        return PoolView(self)

    def _expect(self, worker: _Worker, kind: str, timeout: float = 30.0):
        """Await one specific control message from ``worker``."""
        ready = connection.wait(
            [worker.conn, worker.process.sentinel], timeout=timeout
        )
        if worker.conn in ready and worker.conn.poll():
            try:
                message = worker.conn.recv()
            except (EOFError, OSError) as error:
                raise PoolError(
                    f"worker {worker.id} died during {kind}"
                ) from error
            if message[0] != kind:
                raise PoolError(
                    f"worker {worker.id}: expected {kind!r}, "
                    f"got {message[0]!r}"
                )
            return message
        raise PoolError(
            f"worker {worker.id} did not answer {kind!r} "
            f"(alive={worker.process.is_alive()})"
        )

    # -- observability ---------------------------------------------------

    def _obs(self):
        from repro import obs

        return obs.registry() if obs.enabled() else None

    def _count(self, name: str, help: str, **labels) -> None:
        reg = self._obs()
        if reg is not None:
            reg.counter(name, help, pool=self.algorithm, **labels).inc()

    def _observe_shard(self, size: int, worker: _Worker) -> None:
        reg = self._obs()
        if reg is not None:
            reg.histogram(
                "repro_pool_shard_keys",
                "Keys per dispatched shard.",
                buckets=SHARD_BUCKETS,
                pool=self.algorithm,
            ).observe(size)

    def _set_gauge(self) -> None:
        reg = self._obs()
        if reg is not None:
            reg.gauge(
                "repro_pool_generation",
                "Table generation the workers currently serve.",
                pool=self.algorithm,
            ).set(self._generation)
            reg.gauge(
                "repro_pool_workers",
                "Worker processes in the pool.",
                pool=self.algorithm,
            ).set(len(getattr(self, "_workers", [])))

    def stats(self) -> Dict[str, object]:
        return {
            "name": f"pool({self.algorithm})",
            "type": type(self).__name__,
            "algorithm": self.algorithm,
            "workers": len(self._workers),
            "generation": self._generation,
            "width": self.width,
            "image_nbytes": self._image_nbytes,
            "restarts": sum(w.restarts for w in self._workers),
            "memory_bytes": self._image_nbytes,
            "engines": {str(w.id): w.engine for w in self._workers},
        }


class PoolView:
    """A :class:`~repro.lookup.base.LookupStructure`-shaped façade over a
    :class:`WorkerPool`, so the lookup server (and anything else written
    against the structure interface) can serve from a pool unchanged.

    ``offload_batches`` tells :class:`repro.server.service.LookupServer`
    to run batches in a thread: the event loop must not block on worker
    IPC.  Each :meth:`WorkerPool.publish_structure` returns a *new* view,
    which is what lets :class:`~repro.server.handle.TableHandle` drive
    its RCU generation/epoch accounting over pool swaps exactly as it
    does over plain structures.
    """

    #: The server runs lookup_batch in a worker thread (IPC blocks).
    offload_batches = True

    def __init__(self, pool: WorkerPool) -> None:
        self._pool = pool
        self.name = f"pool({pool.algorithm})×{pool.workers}"
        self.width = pool.width
        self.generation = pool.generation

    def lookup_batch(self, keys) -> np.ndarray:
        return self._pool.lookup_batch(keys)

    def lookup(self, key: int) -> int:
        return int(self._pool.lookup_batch([key])[0])

    def memory_bytes(self) -> int:
        return self._pool.image_nbytes

    def stats(self) -> Dict[str, object]:
        return self._pool.stats()
