"""Command-line interface: generate, compile, look up, serve, benchmark.

Usage examples::

    python -m repro generate --dataset REAL-Tier1-A --scale 0.05 -o rib.txt
    python -m repro generate --routes 50000 --nexthops 64 -o rib.txt
    python -m repro compile rib.txt -o fib.poptrie --s 18
    python -m repro lookup fib.poptrie 192.0.2.7 10.1.2.3
    python -m repro lookup rib.txt 192.0.2.7        # text tables work too
    python -m repro verify fib.poptrie --against rib.txt
    python -m repro info rib.txt                    # per-structure footprints
    python -m repro bench rib.txt --queries 200000  # quick Mlps comparison
    python -m repro bench rib.txt --metrics         # ... plus Prometheus dump
    python -m repro stats                           # observability self-demo
    python -m repro serve --table rib.txt --port 9000   # lookup service
    python -m repro serve --journal wal/ --port 9000    # ... crash-recovered
    python -m repro loadgen --port 9000 --duration 2    # drive it
    python -m repro recover wal/ --compact              # offline journal repair

Argument spelling is unified across subcommands: every command that
reads a table accepts it positionally *or* as ``--table PATH`` (the
shared spelling; ``serve``/``loadgen``/``bench`` also share
``--algorithm NAME``).  ``--snapshot`` is kept as a hidden deprecated
alias of ``--table`` for compiled-snapshot call sites and prints a
deprecation note when used.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data import tableio
from repro.errors import ReproError
from repro.net.ip import parse_address


class _UsageError(ValueError):
    """Bad argument spelling or combination — exits 2, like argparse."""


def _snapshot_kind(path: str) -> Optional[str]:
    """``"structure"`` for a compiled snapshot (RPIMG001 image or legacy
    POPTRIE1 blob), ``"rib"`` for a frozen routing-table image, ``None``
    for anything else (i.e. a text table)."""
    from repro.parallel import image as image_mod

    with open(path, "rb") as stream:
        head = stream.read(8)
    magic = image_mod.sniff_magic(head)
    if magic == "legacy":
        return "structure"
    if magic != "image":
        return None
    with open(path, "rb") as stream:
        return image_mod.TableImage.open(stream.read()).kind


def _load_structure(path: str):
    """Load a compiled snapshot, or compile a table (text or rib image)."""
    if _snapshot_kind(path) == "structure":
        from repro.parallel.image import load_structure

        return load_structure(path)
    rib = tableio.load_table(path)
    trie = Poptrie.from_rib(rib)
    if rib.values is not None:
        trie.attach_values(rib.values)
    return trie


def _is_snapshot(path: str) -> bool:
    return _snapshot_kind(path) == "structure"


# -- shared argument groups ----------------------------------------------------
#
# Every subcommand that reads a table registers the same group through
# _add_table_arg, so the spelling (positional TABLE or --table PATH) is
# identical everywhere; serve/loadgen/bench share _add_algorithm_arg and
# the server endpoint options come from _add_endpoint_args.


def _add_table_arg(
    parser: argparse.ArgumentParser,
    required: bool = True,
    metavar: str = "TABLE",
    help: str = "routing table (text) or compiled snapshot",
) -> None:
    group = parser.add_argument_group("input table")
    group.add_argument("table_pos", nargs="?", metavar=metavar, help=help)
    group.add_argument(
        "--table", dest="table_opt", metavar="PATH",
        help=f"unified spelling of the {metavar} argument",
    )
    # Deprecated alias kept for one cycle (hidden from --help).
    group.add_argument(
        "--snapshot", dest="snapshot_opt", metavar="PATH",
        help=argparse.SUPPRESS,
    )
    parser.set_defaults(_table_required=required)


def _resolve_table(args: argparse.Namespace) -> Optional[str]:
    """The one table path out of positional/--table/--snapshot spellings."""
    if getattr(args, "snapshot_opt", None):
        print(
            "note: --snapshot is a deprecated alias of --table "
            "and will be removed; use --table",
            file=sys.stderr,
        )
    given = [
        value
        for value in (
            getattr(args, "table_pos", None),
            getattr(args, "table_opt", None),
            getattr(args, "snapshot_opt", None),
        )
        if value
    ]
    if len(set(given)) > 1:
        raise _UsageError(
            "expected one table, got conflicting arguments: "
            + ", ".join(sorted(set(given)))
        )
    if not given:
        if getattr(args, "_table_required", True):
            raise _UsageError(
                "a table is required (positional TABLE or --table PATH)"
            )
        return None
    return given[0]


def _require_table(args: argparse.Namespace) -> str:
    """Like :func:`_resolve_table` but a table must have been given."""
    path = _resolve_table(args)
    if path is None:
        raise _UsageError(
            "a table is required (positional TABLE or --table PATH)"
        )
    return path


def _add_algorithm_arg(
    parser: argparse.ArgumentParser, default: Optional[str] = "Poptrie18"
) -> None:
    parser.add_argument(
        "--algorithm", default=default, metavar="NAME",
        help="registry algorithm to build/serve "
             f"(default {default}; see docs/API.md for the roster)",
    )


def _add_endpoint_args(
    parser: argparse.ArgumentParser, default_port: int
) -> None:
    group = parser.add_argument_group("service endpoint")
    group.add_argument("--host", default="127.0.0.1")
    group.add_argument("--port", type=int, default=default_port,
                       help=f"TCP port (default {default_port}; 0 = ephemeral)")


def _add_quorum_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("write durability (see docs/CLUSTER.md)")
    group.add_argument("--min-insync", type=int, default=0, metavar="N",
                       help="hold each OP_UPDATE ack until N replicas ack "
                            "the batch (default 0 = async replication)")
    group.add_argument("--quorum-timeout", type=float, default=1000.0,
                       metavar="MS",
                       help="quorum wait deadline in milliseconds "
                            "(default 1000)")
    group.add_argument("--quorum-degrade", action="store_true",
                       help="on quorum timeout, degrade to async (gauge "
                            "repro_cluster_degraded goes up) instead of "
                            "shedding with STATUS_QUORUM_TIMEOUT")


def cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset:
        from repro.data.datasets import load_dataset

        dataset = load_dataset(args.dataset, scale=args.scale)
        rib = dataset.rib
    elif args.ipv6:
        from repro.data.synth import generate_table_v6

        rib, _ = generate_table_v6(
            n_prefixes=args.routes, n_nexthops=args.nexthops, seed=args.seed
        )
    else:
        from repro.data.synth import generate_table

        rib, _ = generate_table(
            n_prefixes=args.routes,
            n_nexthops=args.nexthops,
            seed=args.seed,
            igp_fraction=args.igp_fraction,
        )
    count = tableio.save_table(rib, args.output)
    print(f"wrote {count} routes to {args.output}")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    rib = tableio.load_table(_resolve_table(args))
    config = PoptrieConfig(
        s=args.s, use_leafvec=not args.no_leafvec, leaf_bits=args.leaf_bits
    )
    start = time.perf_counter()
    if args.aggregate:
        from repro.core.aggregate import aggregated_rib

        rib = aggregated_rib(rib)
    trie = Poptrie.from_rib(rib, config)
    elapsed = time.perf_counter() - start
    from repro.parallel.image import save_structure

    size = save_structure(trie, args.output)
    print(
        f"compiled {len(rib)} routes in {elapsed * 1000:.1f} ms: "
        f"{trie.inode_count} inodes, {trie.leaf_count} leaves, "
        f"{trie.memory_bytes() / 1024:.1f} KiB in-memory, "
        f"{size / 1024:.1f} KiB snapshot -> {args.output}"
    )
    return 0


def cmd_lookup(args: argparse.Namespace) -> int:
    if args.geoip:
        # With --geoip there is no table, so whatever landed in the
        # optional positional slot is really the first address.
        if getattr(args, "table_pos", None):
            args.addresses.insert(0, args.table_pos)
            args.table_pos = None
        if _resolve_table(args):
            raise _UsageError("--geoip synthesises its table; drop --table")
        # The value-plane demo: synthesise a GeoIP RIB (country-code
        # values) and serve lookups from it.
        from repro.data.geoip import generate_geoip_table

        rib, values = generate_geoip_table(
            args.geoip_routes, seed=args.seed
        )
        structure = Poptrie.from_rib(rib)
        structure.attach_values(values)
        print(
            f"geoip demo: {len(rib)} synthetic routes over "
            f"{len(values)} countries (seed {args.seed})",
            file=sys.stderr,
        )
    else:
        path = _resolve_table(args)
        if path is None:
            raise _UsageError(
                "a table is required (positional TABLE or --table PATH), "
                "or pass --geoip for the synthetic demo"
            )
        structure = _load_structure(path)
    values = structure.values
    status = 0
    for text in args.addresses:
        try:
            value, width = parse_address(text)
        except ValueError as error:
            print(f"{text}: {error}", file=sys.stderr)
            status = 2
            continue
        if width != structure.width:
            print(f"{text}: wrong address family for this table",
                  file=sys.stderr)
            status = 2
            continue
        index = structure.lookup(value)
        if not index:
            print(f"{text} -> no route")
        elif values is not None:
            # Edge resolution: the structure returned an id; the value
            # table says what it means (docs/VALUES.md).
            payload = values.codec.format(values[index])
            print(f"{text} -> {payload} (id {index})")
        else:
            print(f"{text} -> FIB[{index}]")
    return status


def cmd_verify(args: argparse.Namespace) -> int:
    """Check structural invariants of a snapshot or table; exit 1 on failure.

    A compiled snapshot is verified as loaded; a text table is compiled
    first (so this also exercises the builder) and verified against its
    own RIB.  ``--against`` supplies a shadow table for semantic
    cross-checking of a snapshot.
    """
    path = _resolve_table(args)
    if _is_snapshot(path):
        trie = _load_structure(path)
        rib = tableio.load_table(args.against) if args.against else None
        if not hasattr(trie, "verify"):
            raise _UsageError(
                f"{path}: {type(trie).__name__} snapshots have no "
                "structural verifier (only Poptrie snapshots do)"
            )
    else:
        rib = tableio.load_table(args.against or path)
        trie = Poptrie.from_rib(rib)
    report = trie.verify(rib, samples=args.samples)
    print(f"{path}: OK ({report.summary()})")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    from repro.bench.report import Table
    from repro.lookup.registry import standard_roster

    path = _resolve_table(args)
    rib = tableio.load_table(path)
    names = (
        "Radix", "Tree BitMap", "Tree BitMap (64-ary)", "SAIL",
        "D16R", "D18R", "Poptrie0", "Poptrie16", "Poptrie18",
    )
    if rib.width != 32:
        names = ("Radix", "Poptrie0", "Poptrie16", "Poptrie18")
    roster = standard_roster(rib, names=names)
    table = Table(["Structure", "KiB", "bytes/route"],
                  title=f"{path}: {len(rib)} routes")
    for name, structure in roster.items():
        if structure is None:
            table.add_row([name, None, None])
        else:
            table.add_row(
                [name, structure.memory_bytes() / 1024,
                 structure.memory_bytes() / max(len(rib), 1)]
            )
    print(table.render())
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import contextlib

    from repro import obs
    from repro.bench.harness import measure_rate_batch
    from repro.bench.report import Table
    from repro.data.traffic import random_addresses
    from repro.lookup import kernels
    from repro.lookup.registry import standard_roster

    if args.kernel and args.no_kernel:
        raise _UsageError("--kernel and --no-kernel are mutually exclusive")
    if args.geoip and (args.kernel or args.workers):
        raise _UsageError(
            "--geoip is its own scenario; drop --kernel/--workers"
        )
    if args.geoip:
        return _bench_geoip(args)
    if args.workers:
        return _bench_multicore(args)
    if args.kernel:
        return _bench_kernels(args)
    if args.metrics:
        obs.enable()
    rib = tableio.load_table(_require_table(args))
    names = tuple(args.algorithm) if args.algorithm else None
    try:
        roster = (
            standard_roster(rib, names=names)
            if names
            else standard_roster(rib)
        )
    except KeyError as error:
        raise _UsageError(error.args[0]) from None
    keys = random_addresses(args.queries, seed=args.seed)
    title = f"random-pattern batch rates ({args.queries} queries)"
    if args.no_kernel:
        title += ", kernels disabled"
    table = Table(["Structure", "KiB", "batch Mlps", "engine"], title=title)
    disable = (
        kernels.kernels_disabled() if args.no_kernel
        else contextlib.nullcontext()
    )
    with disable:
        for name, structure in roster.items():
            if structure is None:
                table.add_row([name, None, None, None])
                continue
            if args.metrics:
                structure.enable_obs()
            result = measure_rate_batch(structure, keys, repeats=args.repeats)
            table.add_row([
                name, structure.memory_bytes() / 1024, result.mlps,
                structure.batch_engine(),
            ])
            if args.metrics:
                structure.stats()  # refresh the per-structure gauges
    print(table.render())
    if args.metrics:
        # One short churn burst against an updatable structure so the
        # update-latency histogram shows up in the dump alongside the
        # lookup metrics (Poptrie exercises the incremental engine; any
        # other entry would demonstrate the rebuild fallback).
        from repro.data.updates import generate_stream

        target = roster.get("Poptrie18") or next(
            (s for s in roster.values() if s is not None), None
        )
        if target is not None and target.update_rib is not None:
            target.apply_updates(
                generate_stream(target.update_rib, count=64, seed=args.seed)
            )
            target.stats()
        print()
        print(obs.registry().render())
        obs.disable()
    return 0


def _bench_geoip(args: argparse.Namespace) -> int:
    """``bench --geoip``: the value-plane aggregation scenario.

    Builds one synthetic GeoIP table (country-code values) raw, with the
    paper's aggregation, and with the swoiow same-value subtree pruning,
    comparing node counts, depth distributions and scalar-vs-kernel
    oracle fingerprints.  ``--json`` writes ``BENCH_geoip.json`` (the CI
    artifact); a kernel/oracle mismatch exits 1.
    """
    import json

    from repro.bench.geoip_scenario import geoip_scenario
    from repro.bench.report import Table

    if _resolve_table(args):
        raise _UsageError("--geoip synthesises its table; drop TABLE")
    names = args.algorithm or ["Poptrie18"]
    if len(names) > 1:
        raise _UsageError(
            "--geoip benches one algorithm; pass --algorithm at most once"
        )
    try:
        payload = geoip_scenario(
            n_prefixes=args.geoip_routes,
            queries=args.queries,
            seed=args.seed,
            algorithm=names[0],
        )
    except KeyError as error:
        raise _UsageError(error.args[0]) from None
    table = Table(
        ["Aggregation", "routes", "inodes", "leaves", "KiB",
         "mean depth", "oracle"],
        title=(
            f"{payload['algorithm']}: GeoIP value plane over "
            f"{payload['prefixes']} routes, {payload['countries']} "
            f"countries ({payload['queries']} queries)"
        ),
    )
    for row in payload["builds"]:
        table.add_row([
            row["aggregation"], row["routes"], row["inodes"],
            row["leaves"], row["memory_bytes"] / 1024, row["mean_depth"],
            {True: "ok", False: "MISMATCH", None: "-"}[row["oracle_match"]],
        ])
    print(table.render())
    if not payload["oracle_agreement"]:
        print("error: kernel results diverge from the scalar oracle",
              file=sys.stderr)
        return 1
    if args.json:
        with open(args.json, "w") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        print(f"wrote {args.json}")
    return 0


def _bench_kernels(args: argparse.Namespace) -> int:
    """``bench --kernel``: scalar vs generic template vs per-engine
    vectorized path vs branchless kernel, all measured in one process
    (interleaved min-of-N — see :mod:`repro.bench.kernels`).  ``--json``
    writes the rows as ``BENCH_kernels.json`` (the CI artifact)."""
    import json

    from repro.bench.kernels import kernel_comparison
    from repro.bench.report import Table
    from repro.data.traffic import random_addresses
    from repro.lookup.registry import available, get, standard_roster

    if args.algorithm:
        names = tuple(args.algorithm)
    else:
        names = tuple(n for n in available() if get(n).supports_kernel)
    try:
        roster = standard_roster(rib := tableio.load_table(
            _require_table(args)), names=names)
    except KeyError as error:
        raise _UsageError(error.args[0]) from None
    keys = random_addresses(args.queries, seed=args.seed)
    table = Table(
        ["Structure", "KiB", "scalar", "template", "engine", "kernel",
         "×template", "×engine", "oracle"],
        title=(
            f"batch engines over {len(rib)} routes "
            f"({args.queries} queries, Mlps, min of {args.repeats})"
        ),
    )
    rows = []
    for name, structure in roster.items():
        if structure is None:
            table.add_row([name] + [None] * 8)
            continue
        row = kernel_comparison(structure, keys, repeats=args.repeats)
        rows.append(row)
        table.add_row([
            name, row["memory_bytes"] / 1024, row["scalar_mlps"],
            row["generic_template_mlps"], row["engine_mlps"],
            row["kernel_mlps"], row["speedup_vs_template"],
            row["speedup_vs_engine"],
            {True: "ok", False: "MISMATCH", None: "-"}[row["oracle_match"]],
        ])
    print(table.render())
    if any(row["oracle_match"] is False for row in rows):
        print("error: kernel results diverge from the scalar oracle",
              file=sys.stderr)
        return 1
    if args.json:
        import numpy

        payload = {
            "scenario": "kernels",
            "routes": len(rib),
            "queries": args.queries,
            "repeats": args.repeats,
            "numpy": numpy.__version__,
            "results": rows,
        }
        with open(args.json, "w") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        print(f"wrote {args.json}")
    return 0


def _bench_multicore(args: argparse.Namespace) -> int:
    """``bench --workers N``: the real Figure 8 measurement.

    Builds one structure, measures the in-process batch rate as the
    single-core reference, then the shared-memory :class:`WorkerPool`
    aggregate rate at 1..N workers.  ``--json`` writes the series as
    ``BENCH_multicore.json`` (the CI artifact).
    """
    import json
    import os

    from repro.bench.harness import measure_rate_batch
    from repro.bench.parallel import pool_scaling_curve
    from repro.bench.report import Table
    from repro.data.traffic import random_addresses
    from repro.lookup.registry import get as get_algorithm

    names = args.algorithm or ["Poptrie18"]
    if len(names) > 1:
        raise _UsageError(
            "--workers benches one algorithm; pass --algorithm at most once"
        )
    try:
        entry = get_algorithm(names[0])
    except KeyError as error:
        raise _UsageError(error.args[0]) from None
    if not entry.supports_image:
        raise _UsageError(
            f"--workers: {names[0]} does not support zero-copy table images"
        )
    rib = tableio.load_table(_require_table(args))
    structure = entry.from_rib(rib)
    keys = random_addresses(args.queries, seed=args.seed)
    single = measure_rate_batch(structure, keys, repeats=args.repeats)
    curve = pool_scaling_curve(
        structure, keys, max_workers=args.workers, rounds=args.repeats
    )
    base = curve[0].mlps or 1e-9
    table = Table(
        ["Workers", "aggregate Mlps", "speedup"],
        title=(
            f"{structure.name}: pool scaling over {len(rib)} routes "
            f"({args.queries} queries; in-process reference "
            f"{single.mlps:.2f} Mlps)"
        ),
    )
    for workers, result in enumerate(curve, start=1):
        table.add_row([workers, result.mlps, result.mlps / base])
    print(table.render())
    if args.json:
        payload = {
            "scenario": "multicore",
            "figure": 8,
            "algorithm": structure.name,
            "routes": len(rib),
            "queries": args.queries,
            "repeats": args.repeats,
            "cpu_count": os.cpu_count(),
            "single_process_mlps": single.mlps,
            "series": [
                {
                    "workers": workers,
                    "mlps": result.mlps,
                    "speedup": result.mlps / base,
                }
                for workers, result in enumerate(curve, start=1)
            ],
        }
        with open(args.json, "w") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        print(f"wrote {args.json}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Exercise every instrumented subsystem once and dump the metrics.

    With no table argument a small synthetic table is generated, so the
    command demonstrates the full observability surface out of the box:
    lookups (scalar + batch), transactional updates, the buddy allocators
    and the forwarding pipeline all leave their marks in the registry.
    """
    import contextlib

    from repro import obs
    from repro.core.aggregate import aggregated_rib
    from repro.data.synth import generate_table
    from repro.data.traffic import random_addresses
    from repro.lookup.registry import standard_roster
    from repro.net.prefix import Prefix
    from repro.robust.txn import TransactionalPoptrie
    from repro.router.pipeline import ForwardingPipeline

    stack = contextlib.ExitStack()
    prof = None
    if args.profile:
        from repro.obs.profiling import profiled

        prof = stack.enter_context(profiled())

    obs.enable()
    try:
        with stack:
            table_path = _resolve_table(args)
            if table_path:
                rib = tableio.load_table(table_path)
                fib = None
            else:
                rib, fib = generate_table(
                    n_prefixes=args.routes, n_nexthops=16, seed=args.seed
                )

            # 1. Lookups through every roster structure (scalar + batch).
            roster = standard_roster(rib)
            keys = random_addresses(args.queries, seed=args.seed)
            for structure in roster.values():
                if structure is None:
                    continue
                structure.enable_obs()
                lookup = structure.lookup
                for key in keys[: min(1000, len(keys))]:
                    lookup(int(key))
                structure.lookup_batch(keys)

            # 2. Transactional updates (commit/withdraw, txn counters).
            txn = TransactionalPoptrie(rib=aggregated_rib(rib))
            txn.trie.enable_obs()
            probe = Prefix.parse("198.51.100.0/24")
            txn.announce(probe, 1)
            txn.withdraw(probe)

            # 2b. The journaled update pipeline: replay a short stream
            # through a write-ahead journal so the update-latency
            # histogram (repro_update_latency_us, per stage) and the
            # journal backpressure signals (pending-fsync-bytes gauge,
            # flush-stall counter) are populated in the dump.
            import tempfile

            from repro.data.updates import generate_stream
            from repro.robust.journal import Journal

            with tempfile.TemporaryDirectory() as jdir:
                journal = Journal(jdir, fsync_every=16)
                jtxn = TransactionalPoptrie(
                    rib=aggregated_rib(rib), journal=journal
                )
                stream = generate_stream(
                    jtxn.rib, count=120, seed=args.seed
                )
                t0 = time.perf_counter()
                jtxn.apply_stream(stream, on_error="skip")
                t1 = time.perf_counter()
                journal.flush()
                t2 = time.perf_counter()
                _observe_update_stages(
                    jtxn.trie.name,
                    {
                        "apply": (t1 - t0) * 1e6,
                        "fsync": (t2 - t1) * 1e6,
                    },
                )
                journal.close()

            # 3. The forwarding pipeline (ring occupancy, latency, drops).
            if fib is not None:
                poptrie = roster.get("Poptrie18") or next(
                    s for s in roster.values() if s is not None
                )
                pipeline = ForwardingPipeline(poptrie, fib, batch_size=32)
                pipeline.run([int(k) for k in keys[:2048]])

            # 4. The shared-memory worker pool (per-worker batch
            # counters, shard-size histogram, generation gauge).
            pool_source = roster.get("Poptrie18") or next(
                (s for s in roster.values() if s is not None), None
            )
            if pool_source is not None:
                from repro.parallel import PoolConfig, WorkerPool

                with WorkerPool(
                    pool_source, PoolConfig(workers=2)
                ) as pool:
                    pool.view().lookup_batch(keys)
                    pool.stats()

            # 5. Refresh pull-model gauges, then dump.
            for structure in roster.values():
                if structure is not None:
                    structure.stats()
            print(obs.registry().render())
        if prof is not None:
            print(prof.report(limit=args.profile_limit))
    finally:
        obs.disable()
    return 0


def _observe_update_stages(table: str, stages_us: dict) -> None:
    """Mirror one update batch's per-stage latencies into the
    ``repro_update_latency_us`` histogram (no-op while observability is
    off).  The server core records ``stage="total"`` for the same batch;
    together they give the wire → fsync → apply → publish breakdown."""
    from repro import obs

    reg = obs.registry()
    for stage, elapsed_us in stages_us.items():
        reg.histogram(
            "repro_update_latency_us",
            "Route-update batch latency by pipeline stage.",
            buckets=obs.LATENCY_US_BUCKETS,
            table=table,
            stage=stage,
        ).observe(elapsed_us)


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a lookup table over TCP (see docs/SERVER.md)."""
    import asyncio

    from repro import obs
    from repro.server import LookupServer, ServerConfig, TableHandle

    path = _resolve_table(args)
    if path is None and not args.journal:
        raise _UsageError(
            "a table (positional TABLE or --table PATH) or --journal DIR "
            "is required"
        )
    if args.repl_port is not None and not args.journal:
        raise _UsageError("--repl-port requires --journal (the shipped WAL)")
    if args.min_insync and args.repl_port is None:
        raise _UsageError(
            "--min-insync requires --repl-port (the quorum is counted "
            "over replication subscribers)"
        )
    rebuild = None
    txn = journal = None
    if args.journal:
        txn, journal, routes = _recover_for_serve(args, path)
        structure = txn.trie
        rebuild = lambda: Poptrie.from_rib(txn.rib)  # noqa: E731
    elif _is_snapshot(path):
        structure = _load_structure(path)
        routes = "snapshot"
    else:
        from repro.lookup.registry import get as get_algorithm

        rib = tableio.load_table(path)
        try:
            entry = get_algorithm(args.algorithm)
        except KeyError as error:
            raise _UsageError(error.args[0]) from None
        structure = entry.from_rib(rib)
        rebuild = lambda: entry.from_rib(rib)  # noqa: E731 (OP_RELOAD hook)
        routes = f"{len(rib)} routes"
    if args.metrics:
        obs.enable()
    pool = None
    if args.workers > 1:
        # The multicore data plane: freeze the structure as a shared-
        # memory image, attach N worker processes zero-copy, and serve
        # batches through the pool view.  OP_RELOAD then publishes the
        # rebuilt table to every worker (RCU hot swap) before the handle
        # swap makes the new view current.
        from repro.parallel import PoolConfig, WorkerPool

        probe = getattr(type(structure), "supports_image", None)
        if not (callable(probe) and probe()):
            raise _UsageError(
                f"--workers: {type(structure).__name__} does not support "
                "zero-copy table images"
            )
        pool = WorkerPool(structure, PoolConfig(workers=args.workers))
        if rebuild is not None:
            inner_rebuild = rebuild
            rebuild = lambda: pool.publish_structure(  # noqa: E731
                inner_rebuild()
            )
        handle = TableHandle(pool.view())
        routes = f"{routes}, {args.workers} workers"
    else:
        handle = TableHandle(structure)
    apply_updates = None
    if txn is not None:
        if journal is not None:
            handle.set_seqno(journal.applied_seqno)

        def apply_updates(updates):
            # Runs in a worker thread, serialised by the server's update
            # lock.  Journal-then-apply, then flush so the batch is
            # durable (and visible to replication tailers) before the
            # acknowledgement goes out.  Stage timings feed the
            # repro_update_latency_us histogram and ride back to the
            # client in the report, so the churn harness can split
            # engine-apply cost from fsync and RCU-publish cost.
            t0 = time.perf_counter()
            report = txn.apply_stream(updates, on_error="skip")
            t1 = time.perf_counter()
            journal.flush()
            t2 = time.perf_counter()
            swapped = False
            if pool is not None:
                # Shared-memory workers serve a frozen image: an applied
                # batch must be republished to the pool (RCU generation
                # swap across every worker), then the handle flips to
                # the fresh view.
                if report.applied:
                    handle.swap(
                        pool.publish_structure(txn.trie), wait=False
                    )
                    swapped = True
            elif txn.trie is not handle.structure:
                # Degraded to a full rebuild: swap the fresh object in.
                handle.swap(txn.trie, wait=False)
                swapped = True
            t3 = time.perf_counter()
            handle.set_seqno(journal.applied_seqno)
            stages_us = {
                "apply": (t1 - t0) * 1e6,
                "fsync": (t2 - t1) * 1e6,
                "publish": (t3 - t2) * 1e6,
            }
            _observe_update_stages(handle.name, stages_us)
            return {
                "applied": report.applied,
                "rejected": report.rejected,
                "seqno": journal.applied_seqno,
                "swapped": swapped,
                "stages_us": {
                    k: round(v, 3) for k, v in stages_us.items()
                },
            }
    server = LookupServer(
        handle,
        ServerConfig(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_us=args.max_wait_us,
        ),
        rebuild=rebuild,
        apply_updates=apply_updates,
    )
    if journal is not None:
        server.stats_extra = lambda: {"journal": journal.describe()}

    async def _main() -> None:
        import signal

        host, port = await server.start()
        publisher = None
        if args.repl_port is not None:
            from repro.cluster import ReplicationPublisher

            publisher = ReplicationPublisher(
                args.journal,
                args.host,
                args.repl_port,
                watermark=lambda: journal.applied_seqno,
            )
            repl_host, repl_bound = await publisher.start()
            print(
                f"replicating {args.journal} on {repl_host}:{repl_bound}",
                flush=True,
            )
            quorum = _quorum_config(args)
            if quorum is not None:
                from repro.cluster import QuorumGate

                server.quorum = QuorumGate(publisher, quorum)
                print(
                    f"quorum: min-insync {quorum.min_insync}, timeout "
                    f"{quorum.timeout_s * 1000:.0f} ms, on timeout "
                    f"{quorum.on_timeout}",
                    flush=True,
                )
        print(f"serving {handle.name} ({routes}) on {host}:{port}", flush=True)
        # SIGTERM (the supervisor/CI stop signal) drains like Ctrl-C so
        # the pool's shared-memory segments are unlinked on the way out.
        loop = asyncio.get_running_loop()
        main_task = asyncio.current_task()
        try:
            loop.add_signal_handler(signal.SIGTERM, main_task.cancel)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
        try:
            await server.serve_forever()
        finally:
            if publisher is not None:
                await publisher.stop()

    try:
        asyncio.run(_main())
    except (KeyboardInterrupt, asyncio.CancelledError):
        print("shutting down", file=sys.stderr)
    finally:
        if pool is not None:
            pool.close()
        if journal is not None:
            # Records appended with fsync_every > 1 may still sit in the
            # stream buffer: SIGTERM must not lose acknowledged updates.
            journal.flush()
            journal.close()
    if args.metrics:
        print(obs.registry().render())
        obs.disable()
    return 0


def _quorum_config(args: argparse.Namespace):
    """The durability policy asked for on the command line, or ``None``.

    Shared by ``serve`` and ``replica``: ``--min-insync 0`` (the
    default) means plain asynchronous replication and returns ``None``
    so no gate is constructed at all.
    """
    if not args.min_insync:
        return None
    from repro.cluster import QuorumConfig

    return QuorumConfig(
        min_insync=args.min_insync,
        timeout_s=args.quorum_timeout / 1000.0,
        on_timeout="degrade" if args.quorum_degrade else "shed",
    )


def _recover_for_serve(args: argparse.Namespace, table_path: Optional[str]):
    """The ``serve --journal DIR`` startup path.

    Recovers the durable state (newest checkpoint + replayed tail,
    verified) and serves it.  A *fresh* journal directory with a
    ``--table`` seeds the journal from the table and writes the initial
    checkpoint, so the next crash-restart cycle already has durable state
    to recover; when the journal holds state, it wins over ``--table``
    (the journal is the authority on what was durably committed).

    Returns ``(txn, journal, routes_text)``: the transactional engine
    stays attached to the *open* journal so OP_UPDATE batches journal
    then apply, and the caller owns flushing + closing it on shutdown.
    """
    from repro.robust.journal import Journal, recover
    from repro.robust.txn import TransactionalPoptrie

    journal = Journal(args.journal, fsync_every=args.fsync_every)
    fresh = journal.last_seqno == 0 and journal.checkpoint_seqno == 0
    if fresh and table_path is not None:
        rib = tableio.load_table(table_path)
        journal.checkpoint(rib)
        txn = TransactionalPoptrie(width=rib.width, rib=rib, journal=journal)
        print(
            f"journal {args.journal}: fresh; seeded from {table_path} "
            f"({len(rib)} routes, initial checkpoint written)"
        )
    else:
        journal.close()
        result = recover(args.journal)
        rib = result.rib
        txn = result.trie
        journal = Journal(args.journal, fsync_every=args.fsync_every)
        txn.journal = journal  # reattach: live updates append here
        summary = result.describe()
        print(
            f"journal {args.journal}: recovered {summary['routes']} routes "
            f"(checkpoint seqno {summary['checkpoint_seqno']}, "
            f"{summary['replayed']} replayed, {summary['skipped']} skipped, "
            f"{summary['torn_bytes']} torn bytes discarded) "
            f"in {summary['duration_s'] * 1000:.1f} ms; "
            f"applied seqno {summary['applied_seqno']}"
        )
        if table_path is not None:
            print(
                f"note: --table {table_path} ignored; the journal already "
                "holds durable state",
                file=sys.stderr,
            )
    return txn, journal, f"{len(rib)} recovered routes"


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running lookup server (or a sharded cluster) with load."""
    import asyncio
    import json

    from repro.data.traffic import random_addresses
    from repro.server import LoadGenConfig, LoadGenerator

    config = LoadGenConfig(
        connections=args.connections,
        rate=args.rate,
        duration=args.duration,
        batch=args.batch,
        schedule=args.schedule,
        seed=args.seed,
        request_timeout=args.timeout,
        deadline_us=args.deadline_us,
        max_retries=args.retries,
    )
    router = None
    width = 32
    if args.shard_map:
        from repro.cluster import ClusterRouter
        from repro.cluster.router import RouterConfig
        from repro.cluster.shard import ShardMap

        shard_map = ShardMap.load(args.shard_map)
        width = shard_map.width
        router = ClusterRouter(
            shard_map,
            RouterConfig(
                request_timeout=args.timeout,
                deadline_us=args.deadline_us,
            ),
        )
    generator = LoadGenerator(
        None if router is not None else args.host,
        None if router is not None else args.port,
        config,
        keys=random_addresses(1 << 15, seed=args.seed),
        width=width,
        router=router,
    )
    reload_at = args.duration / 2 if args.swap_mid_run else None

    async def _run():
        try:
            return await generator.run(reload_at=reload_at)
        finally:
            if router is not None:
                await router.close()

    try:
        report = asyncio.run(_run())
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {args.host}:{args.port} ({error})",
              file=sys.stderr)
        return 1
    if router is not None:
        report.retries += router.failovers
    print(report.render(batch=args.batch))
    if args.json:
        payload = {
            "scenario": "loadgen",
            "target": args.shard_map or f"{args.host}:{args.port}",
            "config": {
                "connections": args.connections,
                "rate": args.rate,
                "duration": args.duration,
                "batch": args.batch,
                "schedule": args.schedule,
                "seed": args.seed,
                "swap_mid_run": args.swap_mid_run,
                "timeout_s": args.timeout,
                "deadline_us": args.deadline_us,
                "retries": args.retries,
            },
            **report.to_dict(args.batch),
        }
        with open(args.json, "w") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        print(f"wrote {args.json}")
    return 1 if report.errors or report.mismatched else 0


def cmd_churn(args: argparse.Namespace) -> int:
    """Measure lookup latency and convergence under sustained churn.

    Two modes (see docs/CHURN.md):

    - ``--port`` drives an already-running ``serve --journal`` process:
      one churn stream is scheduled onto the wire while an open-loop
      load generator measures lookup latency — the CI churn-smoke job's
      mode.  ``--table`` (the file the server was started with) makes
      withdrawals target live routes; without it the stream is
      announce-heavy against the server's unknown table.
    - Without ``--port`` the registry engines are swept through
      in-process servers (:func:`repro.bench.churn_scenario.run_churn_bench`)
      and the per-engine comparison is printed — incremental Poptrie
      surgery versus the measured rebuild fallback.
    """
    import asyncio
    import json

    from repro.bench.churn_scenario import (
        DEFAULT_ENGINES,
        drive_churn,
        run_churn_bench,
    )
    from repro.data.updates import UpdateStream, arrival_offsets, generate_stream
    from repro.server import LoadGenConfig

    regime = args.regime or "steady"
    stream = UpdateStream(
        count=args.updates,
        seed=args.seed,
        regime=regime,
        rate=args.update_rate,
        burst_length=args.burst_length,
        burst_idle_s=args.burst_idle,
    )
    if args.port is not None:
        if args.table_pos or args.table_opt:
            rib = tableio.load_table(_require_table(args))
        else:
            from repro.data.synth import generate_table

            rib, _ = generate_table(
                n_prefixes=2000, n_nexthops=16, seed=args.seed
            )
        updates = generate_stream(rib, stream)
        lookup = LoadGenConfig(
            connections=args.connections,
            rate=args.lookup_rate,
            duration=stream.duration_estimate() + 0.5,
            batch=args.batch,
            seed=args.seed,
        )
        try:
            result = asyncio.run(
                drive_churn(
                    args.host,
                    args.port,
                    updates=updates,
                    offsets=arrival_offsets(stream),
                    update_batch=args.update_batch,
                    lookup=lookup,
                    width=rib.width,
                )
            )
        except (ConnectionError, OSError) as error:
            print(
                f"error: cannot reach {args.host}:{args.port} ({error})",
                file=sys.stderr,
            )
            return 1
        result = {
            "scenario": "churn_convergence",
            "target": f"{args.host}:{args.port}",
            "regime": regime,
            "rows": [result],
        }
        rows = result["rows"]
    else:
        result = run_churn_bench(
            engines=tuple(args.engines) if args.engines else DEFAULT_ENGINES,
            regimes=(args.regime,) if args.regime else ("steady", "bursty"),
            update_count=args.updates,
            update_rate=args.update_rate,
            update_batch=args.update_batch,
            burst_length=args.burst_length,
            burst_idle_s=args.burst_idle,
            lookup_rate=args.lookup_rate,
            lookup_connections=args.connections,
            lookup_batch=args.batch,
            seed=args.seed,
        )
        rows = result["rows"]
    for row in rows:
        updates_ = row["updates"]
        conv = row["convergence"]
        label = row.get("engine", result.get("target", "server"))
        lag = (
            f"{conv['lag_s'] * 1e3:.1f}ms"
            if conv.get("lag_s") is not None
            else "not observed"
        )
        print(
            f"{label:>12} {row.get('regime', regime):>7}: "
            f"updates {updates_['applied']} applied "
            f"{updates_['rejected']} rejected "
            f"(wire p99 {updates_['wire_latency_us']['p99']:.0f}us), "
            f"lookup p99 {row['lookup_during_churn_us']['p99']:.0f}us, "
            f"{row['rcu']['swap_rate_hz']:.1f} swaps/s, "
            f"convergence {lag}"
        )
    total_lookup_errors = sum(r["lookup"]["errors"] for r in rows)
    total_applied = sum(r["updates"]["applied"] for r in rows)
    if args.json:
        with open(args.json, "w") as stream_out:
            json.dump(result, stream_out, indent=2)
            stream_out.write("\n")
        print(f"wrote {args.json}")
    if total_lookup_errors or not total_applied:
        print(
            f"error: {total_lookup_errors} lookup errors, "
            f"{total_applied} updates applied",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Inspect or repair a route-update journal offline.

    Recovers the durable state exactly as ``serve --journal`` would and
    prints what it found.  ``--output`` writes the recovered table;
    ``--compact`` folds the replayed tail into a fresh checkpoint and
    truncates the segments (repair after a crash, or routine journal
    maintenance).  Exits 1 on :class:`~repro.errors.JournalCorrupt`.
    """
    from repro.robust.journal import Journal, recover

    result = recover(
        args.journal, verify=not args.no_verify, samples=args.samples
    )
    summary = result.describe()
    print(f"journal {args.journal}:")
    print(
        f"  checkpoint: seqno {summary['checkpoint_seqno']}"
        + (
            f" ({summary['checkpoint']})"
            if summary["checkpoint"]
            else " (none)"
        )
        + (
            f", {result.checkpoints_skipped} unreadable skipped"
            if result.checkpoints_skipped
            else ""
        )
    )
    print(
        f"  tail: {summary['segments']} segment(s), "
        f"{summary['replayed']} replayed, {summary['skipped']} skipped, "
        f"{summary['torn_bytes']} torn bytes discarded"
    )
    print(
        f"  state: {summary['routes']} routes at seqno "
        f"{summary['last_seqno']}"
        + ("" if args.no_verify else ", verified")
        + f" ({summary['duration_s'] * 1000:.1f} ms)"
    )
    for message in result.errors:
        print(f"  skipped: {message}", file=sys.stderr)
    if args.output:
        count = tableio.save_table(result.rib, args.output)
        print(f"wrote {count} routes to {args.output}")
    if args.compact:
        with Journal(args.journal) as journal:
            path = journal.checkpoint(result.rib)
        print(f"compacted into {path}")
    return 0


def cmd_replica(args: argparse.Namespace) -> int:
    """Run one cluster node: lookup server + WAL-shipping follow loop.

    Without ``--primary`` the node starts as a primary (accepting
    OP_UPDATE writes and publishing its journal); with it, the node
    follows that publisher and serves read-only lookups until promoted
    (``python -m repro promote``).
    """
    import asyncio

    from repro.cluster import Replica
    from repro.cluster.shard import _parse_endpoint

    primary = _parse_endpoint(args.primary) if args.primary else None
    table_path = _resolve_table(args)
    if table_path is not None:
        from repro.robust.journal import Journal

        seed_journal = Journal(args.journal)
        if seed_journal.last_seqno == 0 and seed_journal.checkpoint_seqno == 0:
            rib = tableio.load_table(table_path)
            seed_journal.checkpoint(rib)
            print(
                f"journal {args.journal}: fresh; seeded from {table_path} "
                f"({len(rib)} routes)"
            )
        seed_journal.close()
    node = Replica(
        args.journal,
        primary=primary,
        serve_host=args.host,
        serve_port=args.port,
        repl_host=args.host,
        repl_port=args.repl_port,
        fsync_every=args.fsync_every,
        checkpoint_every=args.checkpoint_every,
        name=args.name,
        quorum=_quorum_config(args),
    )

    async def _main() -> None:
        import signal

        (shost, sport), (rhost, rport) = await node.start()
        print(
            f"{node.role} {args.name}: serving on {shost}:{sport}, "
            f"replication on {rhost}:{rport} "
            f"(applied seqno {node.applied_seqno})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        main_task = asyncio.current_task()
        try:
            loop.add_signal_handler(signal.SIGTERM, main_task.cancel)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
        await node.serve_forever()

    try:
        asyncio.run(_main())
    except (KeyboardInterrupt, asyncio.CancelledError):
        print("shutting down", file=sys.stderr)
    return 0


def cmd_shardmap(args: argparse.Namespace) -> int:
    """Build a skew-aware shard map from a routing table.

    Cut points come from route-count quantiles, so shards carry equal
    route populations even when prefixes bunch (CRAM-style splitting);
    each ``--endpoints`` option assigns one shard's replica set, in
    shard order, as a comma-separated ``host:port`` list.
    """
    from repro.cluster.shard import build_shard_map, shard_balance

    rib = tableio.load_table(_resolve_table(args))
    endpoint_sets = None
    if args.endpoints:
        if len(args.endpoints) != args.shards:
            raise _UsageError(
                f"got {len(args.endpoints)} --endpoints options for "
                f"{args.shards} shards (pass one per shard, in order)"
            )
        endpoint_sets = [spec.split(",") for spec in args.endpoints]
    shard_map = build_shard_map(rib, args.shards, endpoint_sets=endpoint_sets)
    shard_map.save(args.output)
    balance = shard_balance(rib, shard_map)
    digits = shard_map.width // 4
    for position, shard in enumerate(shard_map.shards):
        endpoints = ",".join(shard.endpoints) or "(no endpoints)"
        print(
            f"shard {position}: {shard.low:#0{digits + 2}x}.."
            f"{shard.high:#0{digits + 2}x}  {balance[position]} routes  "
            f"{endpoints}"
        )
    print(f"wrote {len(shard_map)} shards to {args.output}")
    return 0


def cmd_promote(args: argparse.Namespace) -> int:
    """Health-checked failover: elect + promote the best survivor.

    Surveys the given replication endpoints for their applied sequence
    numbers, promotes the most advanced reachable node (stale nodes
    refuse), and retargets the other survivors at it.
    """
    import asyncio
    import json

    from repro.cluster.router import elect_and_promote
    from repro.errors import ClusterError

    try:
        summary = asyncio.run(
            elect_and_promote(args.replicas, timeout=args.timeout)
        )
    except ClusterError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2))
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Failover monitor daemon: probe the primary, promote on loss.

    Prints one JSON event per line (state transitions, the election
    summary, the shard-map rewrite) — a machine-readable stream for
    supervisors and the chaos suite.  With ``--promote-on-failure`` the
    process exits 0 once a failover completes (restart it against the
    new primary); without it the monitor observes forever.
    """
    import asyncio
    import json

    from repro.cluster.router import FailoverMonitor
    from repro.errors import ClusterError

    def emit(event: dict) -> None:
        print(json.dumps(event), flush=True)

    monitor = FailoverMonitor(
        args.primary,
        args.replicas,
        probe_timeout=args.probe_timeout,
        misses_to_fail=args.misses_to_fail,
        interval_s=args.interval,
        promote=args.promote_on_failure,
        shard_map_path=args.shard_map,
        on_event=emit,
    )
    try:
        state = asyncio.run(monitor.run())
    except KeyboardInterrupt:
        print("monitor interrupted", file=sys.stderr)
        return 0
    except ClusterError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0 if state == "failed_over" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Poptrie reproduction toolkit (SIGCOMM 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesise a routing table")
    p.add_argument("--dataset", help="a Table 1 dataset name (see DESIGN.md)")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--routes", type=int, default=10_000)
    p.add_argument("--nexthops", type=int, default=64)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--igp-fraction", type=float, default=0.0)
    p.add_argument("--ipv6", action="store_true",
                   help="generate an IPv6 table (2000::/8)")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("compile", help="compile a table to a FIB snapshot")
    _add_table_arg(p, help="text routing table to compile")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--s", type=int, default=18, help="direct-pointing bits")
    p.add_argument("--no-leafvec", action="store_true")
    p.add_argument("--leaf-bits", type=int, default=16, choices=(16, 32))
    p.add_argument("--aggregate", action="store_true",
                   help="apply route aggregation before compiling")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("lookup", help="look addresses up in a table/snapshot")
    _add_table_arg(p, required=False)
    p.add_argument("addresses", nargs="+")
    p.add_argument("--geoip", action="store_true",
                   help="no table: look up against a synthetic GeoIP "
                        "country-code table (the value-plane demo)")
    p.add_argument("--geoip-routes", type=int, default=20_000,
                   help="synthetic GeoIP table size (default 20000)")
    p.add_argument("--seed", type=int, default=1,
                   help="synthetic GeoIP table seed (default 1)")
    p.set_defaults(func=cmd_lookup)

    p = sub.add_parser(
        "verify", help="check structural/semantic invariants of a table or snapshot"
    )
    _add_table_arg(p, metavar="STRUCTURE",
                   help="compiled snapshot or text table")
    p.add_argument("--against", metavar="TABLE",
                   help="shadow table for semantic cross-checking")
    p.add_argument("--samples", type=int, default=1000,
                   help="random addresses to cross-check (default 1000)")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("info", help="per-structure footprint report")
    _add_table_arg(p)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("bench", help="quick batch-rate comparison")
    _add_table_arg(p, required=False)
    p.add_argument("--algorithm", action="append", metavar="NAME",
                   help="limit the roster to NAME (repeatable; default: "
                        "the paper's Figure 9 roster)")
    p.add_argument("--queries", type=int, default=100_000)
    p.add_argument("--repeats", type=int, default=2)
    p.add_argument("--seed", type=int, default=2463534242)
    p.add_argument("--metrics", action="store_true",
                   help="append a Prometheus-style metrics dump")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="measure shared-memory pool scaling at 1..N "
                        "workers instead of the roster comparison "
                        "(the real Figure 8)")
    p.add_argument("--kernel", action="store_true",
                   help="measure scalar vs numpy-template vs branchless-"
                        "kernel rates per algorithm, in one process")
    p.add_argument("--no-kernel", action="store_true",
                   help="disable kernel dispatch: measure the legacy "
                        "per-engine numpy templates")
    p.add_argument("--geoip", action="store_true",
                   help="run the GeoIP value-plane scenario (synthetic "
                        "country-code table; raw vs aggregated builds)")
    p.add_argument("--geoip-routes", type=int, default=20_000,
                   help="with --geoip: synthetic table size (default 20000)")
    p.add_argument("--json", metavar="PATH",
                   help="with --workers, --kernel or --geoip: also write "
                        "the results as JSON (BENCH_multicore.json / "
                        "BENCH_kernels.json / BENCH_geoip.json)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "stats",
        help="exercise every instrumented subsystem and dump the metrics",
    )
    _add_table_arg(p, required=False,
                   help="text table to use (default: a synthetic one)")
    p.add_argument("--routes", type=int, default=5_000,
                   help="synthetic table size when no table is given")
    p.add_argument("--queries", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--profile", action="store_true",
                   help="also cProfile the run and print the hot functions")
    p.add_argument("--profile-limit", type=int, default=15,
                   help="pstats rows to print with --profile")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "serve",
        help="serve lookups over TCP with coalescing and hot swap",
    )
    _add_table_arg(p, required=False)
    _add_algorithm_arg(p)
    _add_endpoint_args(p, default_port=9000)
    p.add_argument("--max-batch", type=int, default=8192,
                   help="keys per coalesced lookup_batch call (default 8192)")
    p.add_argument("--max-wait-us", type=float, default=200.0,
                   help="coalescing window in microseconds (default 200)")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="serve batches from N shared-memory worker "
                        "processes (default 0 = in-process lookups)")
    p.add_argument("--journal", metavar="DIR",
                   help="recover startup state from this route-update "
                        "journal (fresh directory + --table seeds it)")
    p.add_argument("--fsync-every", type=int, default=1,
                   help="journal fsync batching (default 1 = every append)")
    p.add_argument("--repl-port", type=int, default=None, metavar="PORT",
                   help="with --journal: also publish the WAL to replicas "
                        "on this port (0 = ephemeral)")
    _add_quorum_args(p)
    p.add_argument("--metrics", action="store_true",
                   help="dump Prometheus metrics on shutdown")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive a running lookup server with open-loop load",
    )
    _add_endpoint_args(p, default_port=9000)
    p.add_argument("--duration", type=float, default=2.0,
                   help="seconds of scheduled arrivals (default 2)")
    p.add_argument("--rate", type=float, default=2000.0,
                   help="target request arrivals per second (default 2000)")
    p.add_argument("--connections", type=int, default=4)
    p.add_argument("--batch", type=int, default=16,
                   help="keys per request (default 16)")
    p.add_argument("--schedule", choices=("poisson", "uniform"),
                   default="poisson")
    p.add_argument("--seed", type=int, default=2463534242)
    p.add_argument("--swap-mid-run", action="store_true",
                   help="send one OP_RELOAD halfway through (hot swap)")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="per-attempt response timeout in seconds "
                        "(default 5; 0 disables)")
    p.add_argument("--deadline-us", type=int, default=0,
                   help="deadline budget stamped on every request "
                        "(default 0 = none; needs a v2 server)")
    p.add_argument("--retries", type=int, default=0,
                   help="retries per request after transport errors or "
                        "retryable statuses (default 0)")
    p.add_argument("--shard-map", metavar="PATH",
                   help="route requests through this shard map (see "
                        "'shardmap'); --host/--port are then ignored")
    p.add_argument("--json", metavar="PATH",
                   help="also write the report as JSON (e.g. BENCH_server.json)")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "churn",
        help="measure lookup latency and convergence under route churn",
    )
    _add_table_arg(p, required=False,
                   help="table the target server serves (makes withdrawals "
                        "target live routes; external mode only)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="drive this running 'serve --journal' endpoint; "
                        "omit to sweep registry engines in-process")
    p.add_argument("--engines", nargs="+", metavar="NAME",
                   help="registry engines for the in-process sweep "
                        "(default: Poptrie18 Poptrie16 SAIL DIR-24-8)")
    p.add_argument("--regime", choices=("steady", "bursty"), default=None,
                   help="arrival regime (default: steady externally, "
                        "both in the sweep)")
    p.add_argument("--updates", type=int, default=1024,
                   help="updates in the churn stream (default 1024)")
    p.add_argument("--update-rate", type=float, default=1500.0,
                   help="update arrivals per second (default 1500)")
    p.add_argument("--update-batch", type=int, default=16,
                   help="updates per OP_UPDATE wire batch (default 16)")
    p.add_argument("--burst-length", type=int, default=64,
                   help="updates per flap storm (bursty regime, default 64)")
    p.add_argument("--burst-idle", type=float, default=0.25,
                   help="idle seconds between storms (default 0.25)")
    p.add_argument("--lookup-rate", type=float, default=1200.0,
                   help="concurrent lookup requests per second (default 1200)")
    p.add_argument("--connections", type=int, default=2,
                   help="load-generator connections (default 2)")
    p.add_argument("--batch", type=int, default=16,
                   help="keys per lookup request (default 16)")
    p.add_argument("--seed", type=int, default=52)
    p.add_argument("--json", metavar="PATH",
                   help="also write the result as JSON (e.g. BENCH_churn.json)")
    p.set_defaults(func=cmd_churn)

    p = sub.add_parser(
        "replica",
        help="run one cluster node (primary or read replica)",
    )
    _add_table_arg(p, required=False,
                   help="seed table for a fresh primary journal")
    _add_endpoint_args(p, default_port=9000)
    p.add_argument("--journal", required=True, metavar="DIR",
                   help="this node's journal directory")
    p.add_argument("--primary", metavar="HOST:PORT",
                   help="replication endpoint to follow "
                        "(omit to start as primary)")
    p.add_argument("--repl-port", type=int, default=0, metavar="PORT",
                   help="replication channel port (default 0 = ephemeral)")
    p.add_argument("--fsync-every", type=int, default=32,
                   help="journal fsync batching (default 32)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="local checkpoint after this many applied records "
                        "(default 0 = never)")
    p.add_argument("--name", default="replica",
                   help="node name in logs/metrics (default 'replica')")
    _add_quorum_args(p)
    p.set_defaults(func=cmd_replica)

    p = sub.add_parser(
        "shardmap",
        help="build a skew-aware shard map from a routing table",
    )
    _add_table_arg(p)
    p.add_argument("--shards", type=int, required=True,
                   help="number of contiguous prefix-range shards")
    p.add_argument("--endpoints", action="append", metavar="H:P,H:P,...",
                   help="one shard's replica set (repeat once per shard, "
                        "in shard order)")
    p.add_argument("-o", "--output", required=True,
                   help="shard map JSON path")
    p.set_defaults(func=cmd_shardmap)

    p = sub.add_parser(
        "promote",
        help="elect and promote the most advanced surviving replica",
    )
    p.add_argument("replicas", nargs="+", metavar="HOST:PORT",
                   help="replication endpoints of the candidate replicas")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="per-endpoint survey timeout in seconds (default 5)")
    p.set_defaults(func=cmd_promote)

    p = sub.add_parser(
        "monitor",
        help="failover monitor daemon: probe the primary, promote on loss",
    )
    p.add_argument("--primary", required=True, metavar="HOST:PORT",
                   help="the primary's replication endpoint to probe")
    p.add_argument("--replica", action="append", required=True,
                   dest="replicas", metavar="HOST:PORT",
                   help="candidate replica replication endpoint (repeat "
                        "once per replica)")
    p.add_argument("--shard-map", metavar="PATH",
                   help="rewrite + atomically republish this shard map to "
                        "the survivors' serve endpoints after a promotion")
    p.add_argument("--promote-on-failure", action="store_true",
                   help="drive elect-and-promote when the primary goes "
                        "down (without this the monitor only observes)")
    p.add_argument("--interval", type=float, default=0.5, metavar="S",
                   help="seconds between probes (default 0.5)")
    p.add_argument("--probe-timeout", type=float, default=1.0, metavar="S",
                   help="per-probe timeout in seconds (default 1)")
    p.add_argument("--misses-to-fail", type=int, default=3, metavar="K",
                   help="consecutive failed probes before suspect becomes "
                        "down (default 3; this is the flap damping)")
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser(
        "recover",
        help="inspect or repair a route-update journal offline",
    )
    p.add_argument("journal", metavar="DIR",
                   help="journal directory (as in serve --journal)")
    p.add_argument("-o", "--output", metavar="PATH",
                   help="write the recovered table (text format)")
    p.add_argument("--compact", action="store_true",
                   help="fold the tail into a fresh checkpoint and "
                        "truncate the segments")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the structural/semantic verification pass")
    p.add_argument("--samples", type=int, default=500,
                   help="verification sample addresses (default 500)")
    p.set_defaults(func=cmd_recover)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — normal exit.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except _UsageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (FileNotFoundError, ValueError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
