"""Lookup-rate measurement and the standard algorithm roster.

Rates are reported in Mlps (million lookups per second) as in the paper.
Two engines are measured:

- **scalar** — one ``lookup()`` call per address, generating each random
  address immediately before its lookup with xorshift32, exactly as the
  paper's measurement loop does (Section 4.2, including the generator
  overhead in the result);
- **batch** — the numpy engines, which amortise the interpreter overhead
  and are the better proxy for compiled relative performance.

Absolute numbers are of course far below the paper's C implementation —
the shape comparisons (who wins, by what factor, where the crossovers
fall) are the reproduction target; see EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aggregate import aggregated_rib
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data.xorshift import Xorshift32
from repro.errors import StructuralLimitError
from repro.lookup.base import LookupStructure
from repro.lookup.dir24_8 import Dir24_8
from repro.lookup.dxr import Dxr
from repro.lookup.radix import RadixLookup
from repro.lookup.sail import Sail
from repro.lookup.treebitmap import TreeBitmap
from repro.net.rib import Rib


@dataclass
class RateResult:
    """One measured rate."""

    name: str
    lookups: int
    seconds: float
    memory_bytes: int = 0

    @property
    def mlps(self) -> float:
        return self.lookups / self.seconds / 1e6 if self.seconds else 0.0

    @property
    def memory_mib(self) -> float:
        return self.memory_bytes / (1 << 20)


def measure_rate_scalar(
    structure: LookupStructure,
    count: int,
    seed: int = 2463534242,
    repeats: int = 1,
) -> RateResult:
    """Scalar rate for the paper's random pattern: generate-then-look-up,
    per address, per the Section 4.2 methodology.  ``repeats`` takes the
    best of N timing passes (the paper averages ten runs; min-of-N is the
    standard Python timing hygiene and is what we report)."""
    best = float("inf")
    for _ in range(repeats):
        generator = Xorshift32(seed)
        step = generator.next
        lookup = structure.lookup
        start = time.perf_counter()
        for _ in range(count):
            lookup(step())
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return RateResult(structure.name, count, best, structure.memory_bytes())


def measure_rate_scalar_keys(
    structure: LookupStructure, keys: Sequence[int], repeats: int = 1
) -> RateResult:
    """Scalar rate over a pre-materialised key stream (sequential /
    repeated / real-trace patterns, where the paper also pre-loads the
    destinations into an array)."""
    best = float("inf")
    lookup = structure.lookup
    for _ in range(repeats):
        start = time.perf_counter()
        for key in keys:
            lookup(key)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return RateResult(structure.name, len(keys), best, structure.memory_bytes())


def measure_rate_batch(
    structure: LookupStructure,
    keys: np.ndarray,
    repeats: int = 3,
    chunk: int = 1 << 16,
) -> RateResult:
    """Batch-engine rate over a prepared key array, processed in chunks
    (chunking keeps the working set realistic rather than letting one
    giant gather hide all control flow)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for begin in range(0, len(keys), chunk):
            structure.lookup_batch(keys[begin : begin + chunk])
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return RateResult(structure.name, len(keys), best, structure.memory_bytes())


def measure_compile_time(
    builder: Callable[[], LookupStructure], repeats: int = 3
) -> Tuple[LookupStructure, float]:
    """Build a structure ``repeats`` times; returns (structure, best s)."""
    best = float("inf")
    structure: Optional[LookupStructure] = None
    for _ in range(repeats):
        start = time.perf_counter()
        structure = builder()
        best = min(best, time.perf_counter() - start)
    assert structure is not None
    return structure, best


#: The Figure 9 roster, in the paper's plotting order.
STANDARD_ALGORITHMS = (
    "Radix",
    "Tree BitMap",
    "SAIL",
    "D16R",
    "Poptrie16",
    "D18R",
    "Poptrie18",
)


def standard_roster(
    rib: Rib,
    names: Sequence[str] = STANDARD_ALGORITHMS,
    aggregate_for_poptrie: bool = True,
    modified_dxr: bool = False,
) -> Dict[str, Optional[LookupStructure]]:
    """Build the paper's comparison roster from one RIB.

    Poptrie entries compile from the route-aggregated table (the paper's
    default, Section 3); the baselines see the raw table, as they did in
    the paper.  A structure whose structural limit is exceeded maps to
    ``None`` — the Table 5 "N/A" case.
    """
    poptrie_rib = aggregated_rib(rib) if aggregate_for_poptrie else rib
    fib_size = max((idx for _, idx in rib.routes()), default=0) + 1

    builders: Dict[str, Callable[[], LookupStructure]] = {
        "Radix": lambda: RadixLookup.from_rib(rib),
        "Tree BitMap": lambda: TreeBitmap.from_rib(rib, stride=4),
        "Tree BitMap (64-ary)": lambda: TreeBitmap.from_rib(rib, stride=6),
        "SAIL": lambda: Sail.from_rib(rib),
        "DIR-24-8": lambda: Dir24_8.from_rib(rib),
        "D16R": lambda: Dxr.from_rib(rib, s=16, modified=modified_dxr),
        "D18R": lambda: Dxr.from_rib(rib, s=18, modified=modified_dxr),
        "Poptrie0": lambda: Poptrie.from_rib(
            poptrie_rib, PoptrieConfig(s=0), fib_size=fib_size
        ),
        "Poptrie16": lambda: Poptrie.from_rib(
            poptrie_rib, PoptrieConfig(s=16), fib_size=fib_size
        ),
        "Poptrie18": lambda: Poptrie.from_rib(
            poptrie_rib, PoptrieConfig(s=18), fib_size=fib_size
        ),
    }
    roster: Dict[str, Optional[LookupStructure]] = {}
    for name in names:
        try:
            roster[name] = builders[name]()
        except StructuralLimitError:
            roster[name] = None
    return roster


def build_structures(
    rib: Rib, names: Sequence[str] = STANDARD_ALGORITHMS, **kwargs
) -> List[LookupStructure]:
    """Like :func:`standard_roster` but drops the N/A entries."""
    return [s for s in standard_roster(rib, names, **kwargs).values() if s]
