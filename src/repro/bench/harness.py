"""Lookup-rate measurement.

The standard algorithm roster lives in :mod:`repro.lookup.registry`;
``standard_roster``/``build_structures``/``STANDARD_ALGORITHMS`` are still
importable from here for now, with a :class:`DeprecationWarning`.

Rates are reported in Mlps (million lookups per second) as in the paper.
Two engines are measured:

- **scalar** — one ``lookup()`` call per address, generating each random
  address immediately before its lookup with xorshift32, exactly as the
  paper's measurement loop does (Section 4.2, including the generator
  overhead in the result);
- **batch** — the numpy engines, which amortise the interpreter overhead
  and are the better proxy for compiled relative performance.

Absolute numbers are of course far below the paper's C implementation —
the shape comparisons (who wins, by what factor, where the crossovers
fall) are the reproduction target; see EXPERIMENTS.md.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.data.xorshift import Xorshift32
from repro.lookup.base import LookupStructure


@dataclass
class RateResult:
    """One measured rate."""

    name: str
    lookups: int
    seconds: float
    memory_bytes: int = 0

    @property
    def mlps(self) -> float:
        return self.lookups / self.seconds / 1e6 if self.seconds else 0.0

    @property
    def memory_mib(self) -> float:
        return self.memory_bytes / (1 << 20)


def measure_rate_scalar(
    structure: LookupStructure,
    count: int,
    seed: int = 2463534242,
    repeats: int = 1,
) -> RateResult:
    """Scalar rate for the paper's random pattern: generate-then-look-up,
    per address, per the Section 4.2 methodology.  ``repeats`` takes the
    best of N timing passes (the paper averages ten runs; min-of-N is the
    standard Python timing hygiene and is what we report)."""
    best = float("inf")
    for _ in range(repeats):
        generator = Xorshift32(seed)
        step = generator.next
        lookup = structure.lookup
        start = time.perf_counter()
        for _ in range(count):
            lookup(step())
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return RateResult(structure.name, count, best, structure.memory_bytes())


def measure_rate_scalar_keys(
    structure: LookupStructure, keys: Sequence[int], repeats: int = 1
) -> RateResult:
    """Scalar rate over a pre-materialised key stream (sequential /
    repeated / real-trace patterns, where the paper also pre-loads the
    destinations into an array)."""
    best = float("inf")
    lookup = structure.lookup
    for _ in range(repeats):
        start = time.perf_counter()
        for key in keys:
            lookup(key)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return RateResult(structure.name, len(keys), best, structure.memory_bytes())


def measure_rate_batch(
    structure: LookupStructure,
    keys: np.ndarray,
    repeats: int = 3,
    chunk: int = 1 << 16,
) -> RateResult:
    """Batch-engine rate over a prepared key array, processed in chunks
    (chunking keeps the working set realistic rather than letting one
    giant gather hide all control flow)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for begin in range(0, len(keys), chunk):
            structure.lookup_batch(keys[begin : begin + chunk])
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return RateResult(structure.name, len(keys), best, structure.memory_bytes())


def measure_compile_time(
    builder: Callable[[], LookupStructure], repeats: int = 3
) -> Tuple[LookupStructure, float]:
    """Build a structure ``repeats`` times; returns (structure, best s)."""
    best = float("inf")
    structure: Optional[LookupStructure] = None
    for _ in range(repeats):
        start = time.perf_counter()
        structure = builder()
        best = min(best, time.perf_counter() - start)
    assert structure is not None
    return structure, best


#: Roster names that moved to :mod:`repro.lookup.registry` (kept importable
#: from here for one deprecation cycle).
_MOVED = ("STANDARD_ALGORITHMS", "standard_roster", "build_structures")


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.bench.harness.{name} moved to repro.lookup.registry; "
            "update the import",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.lookup import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
