"""Benchmark harness: rate measurement, multi-core scaling, reporting.

- :mod:`repro.bench.harness` — lookup-rate and compile-time measurement,
  plus the standard algorithm roster used across Tables 2–5 and
  Figures 9/12.
- :mod:`repro.bench.parallel` — the Figure 8 multi-process scaling rig.
- :mod:`repro.bench.report` — fixed-width table rendering for the
  paper-shaped outputs every benchmark prints.
"""

from repro.bench.harness import (
    RateResult,
    measure_compile_time,
    measure_rate_batch,
    measure_rate_scalar,
)
from repro.bench.report import Table
from repro.lookup.registry import build_structures, standard_roster

__all__ = [
    "RateResult",
    "build_structures",
    "measure_compile_time",
    "measure_rate_batch",
    "measure_rate_scalar",
    "standard_roster",
    "Table",
]
