"""Sustained-churn convergence scenario: lookups under live BGP flap.

The §4.9 microbenchmarks time updates against a quiescent trie; this
scenario measures the *served* system under sustained churn — the shape
production actually cares about.  A full update pipeline runs against a
live :class:`~repro.server.service.LookupServer`:

    wire (OP_UPDATE) → journal fsync → engine apply → RCU publish

while an open-loop :class:`~repro.server.loadgen.LoadGenerator` keeps
firing lookups, so the lookup p50/p99 recorded here is the latency
*during* churn, not between storms.  Arrival times come from
:func:`repro.data.updates.arrival_offsets` — steady Poisson churn or
bursty flap storms — and the driver is itself open-loop: update batches
fire at their scheduled instants regardless of how far the pipeline has
fallen behind, which is what exposes journal backpressure (pending
fsync bytes, flush stalls) and RCU drain delay.

Four numbers summarise one run:

- **update latency** p50/p99, end-to-end over the wire, plus the
  per-stage breakdown (fsync / apply / publish) the server reports back
  in each OP_UPDATE ack;
- **lookup latency** p50/p99 during churn, from the concurrent load
  generator;
- **RCU swap rate** and epoch-drain time from the served
  :class:`~repro.server.handle.TableHandle`;
- **convergence lag**: after the last update is acked, a sentinel route
  is announced and lookups poll until they observe it — the time from
  ack to first observation is how stale a data-plane answer can be.

:func:`drive_churn` drives any live server (the CI churn-smoke job
points it at an external ``repro serve --journal`` process);
:func:`run_churn_bench` sweeps registry engines through in-process
servers — the incremental Poptrie pipeline against the measured
rebuild fallback — and emits the committed ``BENCH_churn.json``.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from repro.data.updates import (
    Update,
    UpdateStream,
    arrival_offsets,
    generate_stream,
)
from repro.net.prefix import Prefix
from repro.server import (
    LoadGenConfig,
    LoadGenerator,
    LookupServer,
    ServerConfig,
    TableHandle,
    protocol,
)
from repro.server.loadgen import _Connection

#: The convergence probe's sentinel route (TEST-NET-2 — outside both the
#: synthesised tables' unicast spread and the RouteViews snapshots).
SENTINEL_PREFIX = "198.51.100.0/24"

#: Engines compared by :func:`run_churn_bench`: the incremental Poptrie
#: flagship, the 16-bit variant, and two rebuild-fallback baselines.
DEFAULT_ENGINES = ("Poptrie18", "Poptrie16", "SAIL", "DIR-24-8")


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, math.ceil(len(ordered) * q / 100) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def _latency_summary(values: Sequence[float]) -> dict:
    return {
        "mean": round(sum(values) / len(values), 3) if values else 0.0,
        "p50": round(_percentile(values, 50), 3),
        "p90": round(_percentile(values, 90), 3),
        "p99": round(_percentile(values, 99), 3),
    }


async def drive_churn(
    host: str,
    port: int,
    *,
    updates: Sequence[Update],
    offsets: Sequence[float],
    update_batch: int = 16,
    lookup: Optional[LoadGenConfig] = None,
    keys=None,
    width: int = 32,
    sentinel: str = SENTINEL_PREFIX,
    settle_timeout: float = 30.0,
    stats_poll_s: float = 0.2,
) -> dict:
    """Drive one live server through a churn run; returns the result dict.

    ``updates``/``offsets`` are a stream and its arrival schedule (same
    length); update ``i`` is fired at ``start + offsets[i]``, coalesced
    into wire batches of ``update_batch``.  ``lookup`` configures the
    concurrent load generator (its ``duration`` should cover the
    schedule; :func:`run_churn_bench` sizes it automatically).  The
    server must accept OP_UPDATE (``serve --journal`` or an
    ``apply_updates`` callable) — a STATUS_UNSUPPORTED ack raises
    immediately rather than reporting a silently idle run.
    """
    if len(updates) != len(offsets):
        raise ValueError(
            f"{len(updates)} updates but {len(offsets)} arrival offsets"
        )
    loop = asyncio.get_running_loop()
    control = _Connection()
    probe = _Connection()
    await asyncio.gather(control.open(host, port), probe.open(host, port))
    generator = LoadGenerator(
        host, port, lookup or LoadGenConfig(), keys=keys, width=width
    )
    opcode = protocol.family_opcode(width)

    wire_us: List[float] = []
    stages_us: Dict[str, List[float]] = {}
    applied = rejected = update_errors = 0
    max_pending_fsync = 0
    stats_before = json.loads(
        (await control.request(protocol.OP_STATS)).text
    )

    stop_polling = asyncio.Event()

    async def poll_backpressure() -> None:
        """Sample journal backpressure while the run is hot; the peak
        pending-fsync depth is the number a mean would hide."""
        nonlocal max_pending_fsync
        while not stop_polling.is_set():
            try:
                body = json.loads(
                    (await probe.request(protocol.OP_STATS)).text
                )
            except Exception:
                return
            journal = body.get("journal") or {}
            max_pending_fsync = max(
                max_pending_fsync, int(journal.get("pending_fsync_bytes", 0))
            )
            try:
                await asyncio.wait_for(
                    stop_polling.wait(), timeout=stats_poll_s
                )
            except asyncio.TimeoutError:
                pass

    async def fire_batch(batch: Sequence[Update]) -> None:
        nonlocal applied, rejected, update_errors
        started = time.perf_counter()
        try:
            response = await control.request(
                protocol.OP_UPDATE, updates=batch
            )
        except Exception:
            update_errors += 1
            return
        if response.status == protocol.STATUS_UNSUPPORTED:
            raise RuntimeError(
                "server refused OP_UPDATE — start it with --journal"
            )
        if not response.ok:
            update_errors += 1
            return
        wire_us.append((time.perf_counter() - started) * 1e6)
        report = json.loads(response.text) if response.text else {}
        applied += int(report.get("applied", 0))
        rejected += int(report.get("rejected", 0))
        for stage, elapsed in (report.get("stages_us") or {}).items():
            stages_us.setdefault(stage, []).append(float(elapsed))

    load_task = asyncio.create_task(generator.run())
    poll_task = asyncio.create_task(poll_backpressure())
    update_tasks: List[asyncio.Task] = []
    start = loop.time()
    # Open-loop update schedule: each wire batch fires at its first
    # member's offset, never waiting for the previous ack (the server's
    # update lock serialises applies; the wire latency we record then
    # includes the queueing the schedule caused — that is the point).
    for i in range(0, len(updates), update_batch):
        batch = list(updates[i:i + update_batch])
        delay = start + offsets[i] - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        update_tasks.append(asyncio.create_task(fire_batch(batch)))
    if update_tasks:
        await asyncio.gather(*update_tasks)
    churn_span = loop.time() - start

    convergence = await _probe_convergence(
        control, probe, opcode, sentinel, width, settle_timeout
    )

    report = await load_task
    stop_polling.set()
    await poll_task
    stats_after = json.loads((await probe.request(protocol.OP_STATS)).text)
    await asyncio.gather(control.close(), probe.close())

    handle_before = stats_before.get("handle", {})
    handle_after = stats_after.get("handle", {})
    swaps = handle_after.get("swaps", 0) - handle_before.get("swaps", 0)
    drain_total = handle_after.get(
        "drain_seconds_total", 0.0
    ) - handle_before.get("drain_seconds_total", 0.0)
    journal_before = stats_before.get("journal") or {}
    journal_after = stats_after.get("journal") or {}
    lookup_summary = report.to_dict(generator.config.batch)
    return {
        "duration_s": round(churn_span, 6),
        "updates": {
            "scheduled": len(updates),
            "batches": len(wire_us) + update_errors,
            "applied": applied,
            "rejected": rejected,
            "errors": update_errors,
            "achieved_rate_ups": round(applied / churn_span, 3)
            if churn_span
            else 0.0,
            "wire_latency_us": _latency_summary(wire_us),
            "stages_us": {
                stage: _latency_summary(values)
                for stage, values in sorted(stages_us.items())
            },
        },
        "lookup": lookup_summary,
        "lookup_during_churn_us": lookup_summary["latency_us"],
        "rcu": {
            "swaps": swaps,
            "swap_rate_hz": round(swaps / churn_span, 3)
            if churn_span
            else 0.0,
            "drain_seconds_total": round(drain_total, 6),
            "mean_drain_s": round(drain_total / swaps, 9) if swaps else 0.0,
            "last_drain_s": handle_after.get("last_drain_s", 0.0),
        },
        "journal": {
            "flush_stalls": journal_after.get("flush_stalls", 0)
            - journal_before.get("flush_stalls", 0),
            "max_pending_fsync_bytes": max_pending_fsync,
            "appends": journal_after.get("appends", 0)
            - journal_before.get("appends", 0),
            "fsyncs": journal_after.get("fsyncs", 0)
            - journal_before.get("fsyncs", 0),
        }
        if journal_after
        else None,
        "convergence": convergence,
    }


async def _probe_convergence(
    control: _Connection,
    probe: _Connection,
    opcode: int,
    sentinel: str,
    width: int,
    settle_timeout: float,
) -> dict:
    """Announce a sentinel route, then poll lookups until one observes it.

    The lag from the update's ack to the first lookup returning the new
    next hop is the data plane's convergence time: for the incremental
    engine it is one subtree surgery plus an RCU swap; for a rebuild
    fallback it is a full recompile of the table.
    """
    prefix = Prefix.parse(sentinel)
    if prefix.width != width:
        prefix = Prefix(prefix.value << (width - 32), prefix.length, width)
    key = prefix.value
    before = await probe.request(opcode, [key])
    old_hop = int(before.results[0])
    new_hop = 1 if old_hop != 1 else 2
    started = time.perf_counter()
    ack = await control.request(
        protocol.OP_UPDATE, updates=[Update("A", prefix, new_hop)]
    )
    acked = time.perf_counter()
    if not ack.ok:
        return {
            "observed": False,
            "error": f"sentinel announce failed (status {ack.status})",
        }
    observed_at = None
    while time.perf_counter() - acked < settle_timeout:
        response = await probe.request(opcode, [key])
        if response.ok and int(response.results[0]) == new_hop:
            observed_at = time.perf_counter()
            break
        await asyncio.sleep(0.0005)
    return {
        "observed": observed_at is not None,
        "sentinel": sentinel,
        "old_hop": old_hop,
        "new_hop": new_hop,
        "ack_us": round((acked - started) * 1e6, 3),
        "lag_s": round(observed_at - acked, 6)
        if observed_at is not None
        else None,
    }


def _journaled_pipeline(structure, handle: TableHandle, journal):
    """The serve-side update pipeline for an in-process churn server.

    Mirrors ``repro serve --journal``: journal-then-apply-then-publish,
    with per-stage timings reported back in the OP_UPDATE ack so the
    driver can attribute wire latency.  Runs on the server's update
    worker thread, so the drain wait in ``swap`` blocks nobody.
    """

    def apply(batch):
        t0 = time.perf_counter()
        for update in batch:
            journal.append(update)
        journal.flush()
        t1 = time.perf_counter()
        report = structure.apply_updates(batch)
        t2 = time.perf_counter()
        handle.swap(structure, wait=True, timeout=30.0)
        handle.set_seqno(journal.last_seqno)
        t3 = time.perf_counter()
        report["seqno"] = journal.last_seqno
        report["stages_us"] = {
            "fsync": round((t1 - t0) * 1e6, 1),
            "apply": round((t2 - t1) * 1e6, 1),
            "publish": round((t3 - t2) * 1e6, 1),
        }
        return report

    return apply


async def _run_engine(
    entry,
    rib,
    stream: UpdateStream,
    *,
    update_batch: int,
    lookup: LoadGenConfig,
    keys,
    fsync_every: int,
    settle_timeout: float,
) -> dict:
    from repro.robust.journal import Journal

    structure = entry.from_rib(rib)
    handle = TableHandle(structure)
    journal_dir = tempfile.mkdtemp(prefix="repro-churn-")
    journal = Journal(journal_dir, fsync_every=fsync_every)
    server = LookupServer(
        handle,
        ServerConfig(),
        apply_updates=_journaled_pipeline(structure, handle, journal),
    )
    server.stats_extra = lambda: {"journal": journal.describe()}
    updates = generate_stream(rib, stream)
    offsets = arrival_offsets(stream)
    host, port = await server.start()
    try:
        result = await drive_churn(
            host,
            port,
            updates=updates,
            offsets=offsets,
            update_batch=update_batch,
            lookup=lookup,
            keys=keys,
            sentinel=SENTINEL_PREFIX,
            settle_timeout=settle_timeout,
        )
    finally:
        await server.stop()
        journal.close()
        shutil.rmtree(journal_dir, ignore_errors=True)
    result["update_engine"] = structure.stats()["update_engine"]
    result["updates_applied_by_engine"] = structure.stats()["updates_applied"]
    return result


def run_churn_bench(
    dataset_name: str = "RV-linx-p52",
    scale: Optional[float] = None,
    engines: Sequence[str] = DEFAULT_ENGINES,
    regimes: Sequence[str] = ("steady", "bursty"),
    update_count: int = 1024,
    update_rate: float = 1500.0,
    update_batch: int = 16,
    burst_length: int = 64,
    burst_idle_s: float = 0.25,
    lookup_rate: float = 1200.0,
    lookup_connections: int = 2,
    lookup_batch: int = 16,
    seed: int = 52,
    fsync_every: int = 8,
    settle_timeout: float = 120.0,
) -> dict:
    """Sweep registry engines through the churn scenario.

    Each (engine, regime) cell gets its own RIB copy, journal, handle
    and in-process server, so rebuild fallbacks cannot poison the next
    cell's table.  ``scale`` defaults to ``REPRO_SCALE`` (0.02, the
    tier-2 default); the committed BENCH_churn.json is recorded at 1.0.
    """
    from repro.data.datasets import load_dataset
    from repro.data.traffic import random_addresses
    from repro.lookup.registry import get as get_algorithm
    from repro.net.rib import Rib

    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", "0.02"))
    ds = load_dataset(dataset_name, scale=scale)
    base_routes = list(ds.rib.routes())
    keys = random_addresses(1 << 14, seed=seed)
    rows: List[dict] = []
    for name in engines:
        entry = get_algorithm(name)
        for regime in regimes:
            rib = Rib(width=ds.rib.width)
            for prefix, hop in base_routes:
                rib.insert(prefix, hop)
            stream = UpdateStream(
                count=update_count,
                seed=seed,
                regime=regime,
                rate=update_rate,
                burst_length=burst_length,
                burst_idle_s=burst_idle_s,
            )
            span = stream.duration_estimate()
            lookup = LoadGenConfig(
                connections=lookup_connections,
                rate=lookup_rate,
                duration=span + 0.5,
                batch=lookup_batch,
                seed=seed,
            )
            result = asyncio.run(
                _run_engine(
                    entry,
                    rib,
                    stream,
                    update_batch=update_batch,
                    lookup=lookup,
                    keys=keys,
                    fsync_every=fsync_every,
                    settle_timeout=settle_timeout,
                )
            )
            rows.append(
                {
                    "engine": name,
                    "regime": regime,
                    "supports_incremental": entry.supports_incremental,
                    "routes": len(rib),
                    **result,
                }
            )
    return {
        "scenario": "churn_convergence",
        "dataset": dataset_name,
        "scale": scale,
        "routes": len(ds.rib),
        "config": {
            "engines": list(engines),
            "regimes": list(regimes),
            "update_count": update_count,
            "update_rate_ups": update_rate,
            "update_batch": update_batch,
            "burst_length": burst_length,
            "burst_idle_s": burst_idle_s,
            "lookup_rate_rps": lookup_rate,
            "lookup_connections": lookup_connections,
            "lookup_batch": lookup_batch,
            "fsync_every": fsync_every,
            "seed": seed,
        },
        "rows": rows,
    }


def emit_churn_bench(path: str = "BENCH_churn.json", **kwargs) -> dict:
    """Run the sweep and persist the artifact; returns the result."""
    result = run_churn_bench(**kwargs)
    with open(path, "w") as stream:
        json.dump(result, stream, indent=2, sort_keys=False)
        stream.write("\n")
    return result
