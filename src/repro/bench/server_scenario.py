"""The server-throughput bench scenario: the perf trajectory's baseline.

Everything the other benchmarks measure is an in-process loop; this
scenario measures the *served* system — asyncio server, wire protocol,
request coalescing and an RCU hot swap, all under open-loop load — and
persists one JSON artifact (``BENCH_server.json``) with throughput and
p50/p99/p999 latency so successive PRs can be compared number-for-number.

The mid-run hot swap is driven the way production would drive it: a
:class:`~repro.robust.txn.TransactionalPoptrie` commits a route
announcement on the control plane, and the resulting structure is
published through :meth:`~repro.server.handle.TableHandle.swap_async`
while the load generator keeps firing.  Zero errored responses across
the swap is part of the scenario's contract (the CI smoke job asserts
it).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.core.poptrie import Poptrie
from repro.net.prefix import Prefix
from repro.server import (
    LoadGenConfig,
    LoadGenerator,
    LookupServer,
    ServerConfig,
    TableHandle,
)

#: The prefix the mid-run transaction announces (kept clear of the
#: synthesised tables' 1.0.0.0-223.255.255.255 unicast spread by using a
#: /9 more specific inside 198.0.0.0/8 with a distinctive next hop).
SWAP_PREFIX = "198.128.0.0/9"
SWAP_NEXTHOP = 1


def run_server_bench(
    routes: int = 20_000,
    nexthops: int = 16,
    algorithm: str = "Poptrie18",
    duration: float = 2.0,
    rate: float = 2000.0,
    connections: int = 4,
    batch: int = 16,
    max_batch: int = 8192,
    max_wait_us: float = 200.0,
    schedule: str = "poisson",
    seed: int = 7,
    swap_mid_run: bool = True,
) -> dict:
    """Run the scenario once; returns the JSON-ready result dict."""
    return asyncio.run(
        _run(
            routes=routes,
            nexthops=nexthops,
            algorithm=algorithm,
            duration=duration,
            rate=rate,
            connections=connections,
            batch=batch,
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            schedule=schedule,
            seed=seed,
            swap_mid_run=swap_mid_run,
        )
    )


async def _run(
    routes: int,
    nexthops: int,
    algorithm: str,
    duration: float,
    rate: float,
    connections: int,
    batch: int,
    max_batch: int,
    max_wait_us: float,
    schedule: str,
    seed: int,
    swap_mid_run: bool,
) -> dict:
    from repro.data.synth import generate_table
    from repro.data.traffic import random_addresses
    from repro.lookup.registry import get as get_algorithm

    rib, _ = generate_table(
        n_prefixes=routes, n_nexthops=nexthops, seed=seed
    )
    entry = get_algorithm(algorithm)
    structure = entry.from_rib(rib)
    handle = TableHandle(structure)
    server = LookupServer(
        handle,
        ServerConfig(max_batch=max_batch, max_wait_us=max_wait_us),
        rebuild=lambda: entry.from_rib(rib),
    )
    host, port = await server.start()
    generator = LoadGenerator(
        host,
        port,
        LoadGenConfig(
            connections=connections,
            rate=rate,
            duration=duration,
            batch=batch,
            schedule=schedule,
            seed=seed,
        ),
        keys=random_addresses(1 << 15, seed=seed),
    )
    load = asyncio.create_task(generator.run())
    swap_generation: Optional[int] = None
    if swap_mid_run:
        await asyncio.sleep(duration / 2)
        swap_generation = await _transactional_swap(handle, entry, rib)
    report = await load
    stats = server.describe()
    await server.stop()
    result = {
        "scenario": "server_throughput",
        "algorithm": algorithm,
        "routes": len(rib),
        "config": {
            "duration_s": duration,
            "target_rate_rps": rate,
            "connections": connections,
            "keys_per_request": batch,
            "max_batch": max_batch,
            "max_wait_us": max_wait_us,
            "schedule": schedule,
            "seed": seed,
            "swap_mid_run": swap_mid_run,
        },
        "throughput_rps": round(report.throughput_rps, 3),
        "throughput_klps": round(report.throughput_klps(batch), 3),
        "latency_us": report.to_dict(batch)["latency_us"],
        "errors": report.errors,
        "swap_generation": swap_generation,
        "loadgen": report.to_dict(batch),
        "server": stats,
    }
    return result


async def _transactional_swap(handle: TableHandle, entry, rib) -> int:
    """Commit one route update transactionally and hot-swap the result.

    The transaction owns the control-plane consistency story (validate,
    stage, commit-or-roll-back); the handle owns publication.  For
    Poptrie entries the transaction's own trie is published directly;
    for baseline algorithms the updated RIB is recompiled through the
    registry entry so the served structure stays the benchmarked one.
    """
    from repro.robust.txn import TransactionalPoptrie

    txn = TransactionalPoptrie(rib=rib)
    txn.announce(Prefix.parse(SWAP_PREFIX), SWAP_NEXTHOP)
    if isinstance(handle.structure, Poptrie):
        replacement = txn.trie
    else:
        replacement = await asyncio.to_thread(entry.from_rib, txn.rib)
    return await handle.swap_async(replacement)


def emit_server_bench(path: str = "BENCH_server.json", **kwargs) -> dict:
    """Run the scenario and persist the artifact; returns the result."""
    result = run_server_bench(**kwargs)
    with open(path, "w") as stream:
        json.dump(result, stream, indent=2, sort_keys=False)
        stream.write("\n")
    return result
