"""The GeoIP value-plane scenario: the ``BENCH_geoip.json`` numbers.

One synthetic GeoIP table (country-code values,
:func:`repro.data.geoip.generate_geoip_table`) compiled three ways —

- **raw** — straight from the generated RIB;
- **simple** — after the paper's exact aggregation
  (:func:`repro.core.aggregate.aggregate_simple`);
- **uniform<k>** — after the swoiow same-value subtree pruning at the
  structure's own stride (:func:`repro.core.aggregate.aggregate_uniform`)

— measuring, per build: route/node/leaf counts and memory (how much the
value column's low entropy buys), the lookup depth distribution over the
query stream (aggregation pulls matches up toward the direct-pointing
array), and the scalar-vs-kernel result fingerprints (the oracle
agreement the acceptance gate checks: value ids flow through the
branchless kernels unchanged).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.aggregate import aggregated_rib
from repro.data.geoip import generate_geoip_table
from repro.data.traffic import random_addresses
from repro.lookup import kernels
from repro.lookup.registry import get


def _sha256(results: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(results, dtype=np.uint32).tobytes()
    ).hexdigest()


def _depth_histogram(structure, keys) -> Optional[Dict[str, int]]:
    depth_of = getattr(structure, "depth_of", None)
    if depth_of is None:
        return None
    histogram: Dict[int, int] = {}
    for key in keys:
        depth = depth_of(int(key))
        histogram[depth] = histogram.get(depth, 0) + 1
    return {str(depth): histogram[depth] for depth in sorted(histogram)}


def _build_row(name: str, span: Optional[int], rib, entry, keys) -> Dict:
    structure = entry.from_rib(rib)
    scalar = np.fromiter(
        (structure.lookup(int(key)) for key in keys),
        dtype=np.uint32,
        count=len(keys),
    )
    scalar_sha = _sha256(scalar)
    kernel_sha = None
    if entry.supports_kernel and kernels.dispatch_enabled():
        kernel_sha = _sha256(structure.lookup_batch(keys))
    histogram = _depth_histogram(structure, keys)
    mean_depth = None
    if histogram:
        total = sum(histogram.values())
        mean_depth = (
            sum(int(d) * n for d, n in histogram.items()) / total
        )
    return {
        "aggregation": name,
        "span": span,
        "routes": len(rib),
        "inodes": getattr(structure, "inode_count", None),
        "leaves": getattr(structure, "leaf_count", None),
        "memory_bytes": structure.memory_bytes(),
        "values": None if structure.values is None
        else structure.values.describe(),
        "depth_histogram": histogram,
        "mean_depth": mean_depth,
        "scalar_sha256": scalar_sha,
        "kernel_sha256": kernel_sha,
        "oracle_match": (
            None if kernel_sha is None else kernel_sha == scalar_sha
        ),
    }


def geoip_scenario(
    n_prefixes: int = 20_000,
    queries: int = 50_000,
    seed: int = 1,
    algorithm: str = "Poptrie18",
    spans: Sequence[int] = (6,),
) -> Dict:
    """Run the scenario; returns the ``BENCH_geoip.json`` payload.

    ``spans`` lists the :func:`aggregate_uniform` strides to measure in
    addition to the raw and simple-aggregated builds (Poptrie's chunk
    stride is 6, DIR-24-8-ish structures want 8).
    """
    rib, values = generate_geoip_table(n_prefixes, seed=seed)
    entry = get(algorithm)
    keys = random_addresses(queries, seed=seed)
    builds = [_build_row("none", None, rib, entry, keys)]
    builds.append(
        _build_row("simple", 1, aggregated_rib(rib), entry, keys)
    )
    for span in spans:
        builds.append(
            _build_row(
                f"uniform{span}", span, aggregated_rib(rib, span=span),
                entry, keys,
            )
        )
    raw = builds[0]
    for row in builds[1:]:
        if raw["inodes"] and row["inodes"] is not None:
            row["inode_reduction_vs_raw"] = 1 - row["inodes"] / raw["inodes"]
        row["route_reduction_vs_raw"] = 1 - row["routes"] / raw["routes"]
    return {
        "scenario": "geoip",
        "algorithm": algorithm,
        "prefixes": n_prefixes,
        "countries": len(values),
        "queries": queries,
        "seed": seed,
        "value_kind": values.kind,
        "oracle_agreement": all(
            row["oracle_match"] is not False for row in builds
        ),
        "builds": builds,
    }
