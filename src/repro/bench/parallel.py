"""Multi-core scaling (Figure 8).

The paper's point in Section 4.4 is architectural: the Poptrie arrays are
read-only at lookup time, so N cores share one copy through the shared
cache and the aggregate rate scales linearly.  We demonstrate the same
property with fork-based worker processes: the parent builds the
structure once, each forked worker inherits the pages copy-on-write (no
duplication, like threads sharing one cache-resident structure), and the
aggregate rate is total lookups over the wall-clock of the slowest worker.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import List

import numpy as np

from repro.bench.harness import RateResult
from repro.lookup.base import LookupStructure


def _worker(structure, keys, chunk, rounds, out, slot):  # pragma: no cover
    # One untimed warm round (numpy buffer allocation, lazy imports), then
    # the timed rounds — mirroring how the paper's per-thread loops measure
    # steady state rather than thread spin-up.
    for begin in range(0, len(keys), chunk):
        structure.lookup_batch(keys[begin : begin + chunk])
    start = time.perf_counter()
    for _ in range(rounds):
        for begin in range(0, len(keys), chunk):
            structure.lookup_batch(keys[begin : begin + chunk])
    out[slot] = time.perf_counter() - start


def measure_parallel_rate(
    structure: LookupStructure,
    keys: np.ndarray,
    workers: int,
    chunk: int = 1 << 16,
    rounds: int = 3,
) -> RateResult:
    """Aggregate Mlps with ``workers`` forked processes sharing the
    structure.  Each worker loops its shard ``rounds`` times; the aggregate
    rate is all timed lookups divided by the slowest worker's timed loop
    (fork/teardown is excluded, like thread spin-up in the paper's rig).
    Falls back to in-process measurement for ``workers == 1``.
    """
    if workers == 1:
        for begin in range(0, len(keys), chunk):  # warm round
            structure.lookup_batch(keys[begin : begin + chunk])
        start = time.perf_counter()
        for _ in range(rounds):
            for begin in range(0, len(keys), chunk):
                structure.lookup_batch(keys[begin : begin + chunk])
        elapsed = time.perf_counter() - start
        return RateResult(structure.name, len(keys) * rounds, elapsed)

    context = mp.get_context("fork")
    times = context.Array("d", workers)
    processes: List[mp.Process] = []
    shards = np.array_split(keys, workers)
    for slot, shard in enumerate(shards):
        process = context.Process(
            target=_worker, args=(structure, shard, chunk, rounds, times, slot)
        )
        process.start()
        processes.append(process)
    for process in processes:
        process.join()
    slowest = max(times[:]) or 1e-9
    return RateResult(
        f"{structure.name} x{workers}", len(keys) * rounds, slowest
    )


def scaling_curve(
    structure: LookupStructure,
    keys: np.ndarray,
    max_workers: int = 4,
) -> List[RateResult]:
    """Figure 8's series: aggregate rate for 1..max_workers workers."""
    return [
        measure_parallel_rate(structure, keys, workers)
        for workers in range(1, max_workers + 1)
    ]


# ---------------------------------------------------------------------------
# The real data plane: shared-memory WorkerPool rates
# ---------------------------------------------------------------------------
#
# measure_parallel_rate above times bare forked loops — a rig that exists
# only for measurement.  The functions below time repro.parallel's
# WorkerPool, i.e. the production path `serve --workers N` uses: one
# RPIMG001 image in shared memory, zero-copy worker attach, sharded
# batches with ordered reassembly.  Their results include the pool's IPC
# and reassembly overhead, which is the honest Figure 8 number for this
# implementation.


def measure_pool_rate(
    structure: LookupStructure,
    keys: np.ndarray,
    workers: int,
    rounds: int = 3,
) -> RateResult:
    """Aggregate Mlps through a ``WorkerPool`` with ``workers`` workers.

    One untimed warm round (worker page-in, numpy allocation), then
    ``rounds`` timed full-array batches through the pool view.
    """
    from repro.parallel import PoolConfig, WorkerPool

    with WorkerPool(structure, PoolConfig(workers=workers)) as pool:
        view = pool.view()
        view.lookup_batch(keys)  # warm round
        start = time.perf_counter()
        for _ in range(rounds):
            view.lookup_batch(keys)
        elapsed = time.perf_counter() - start
    return RateResult(
        f"{structure.name} pool x{workers}",
        len(keys) * rounds,
        elapsed,
        structure.memory_bytes(),
    )


def pool_scaling_curve(
    structure: LookupStructure,
    keys: np.ndarray,
    max_workers: int = 4,
    rounds: int = 3,
) -> List[RateResult]:
    """Figure 8 measured for real: pool aggregate rate at 1..max_workers."""
    return [
        measure_pool_rate(structure, keys, workers, rounds=rounds)
        for workers in range(1, max_workers + 1)
    ]
