"""Fixed-width table rendering for paper-shaped benchmark output.

Every benchmark module prints its table/figure in the same layout the
paper uses, so EXPERIMENTS.md can quote the output directly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


class Table:
    """A minimal monospaced table.

    >>> t = Table(["algo", "Mlps"], title="demo")
    >>> t.add_row(["Poptrie18", 240.52])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo
    ...
    """

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        self.headers = list(headers)
        self.title = title
        self.rows: List[List[str]] = []

    @staticmethod
    def _format(cell: Cell) -> str:
        if cell is None:
            return "N/A"
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    def add_row(self, cells: Iterable[Cell]) -> None:
        self.rows.append([self._format(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def render_with_metrics(self) -> str:
        """The table plus, when observability is enabled, a Prometheus
        text dump of everything the run recorded (benchmarks call this so
        ``--metrics`` turns any table into table + metrics)."""
        text = self.render()
        metrics = metrics_dump()
        return f"{text}\n\n{metrics}" if metrics else text

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())
        print()


def metrics_dump() -> str:
    """The active registry's Prometheus text dump, or "" when obs is off."""
    from repro import obs

    if not obs.enabled():
        return ""
    return obs.registry().render()
