"""Kernel-vs-template measurement: the ``BENCH_kernels.json`` numbers.

One structure, one key stream, four engines timed against each other:

- **scalar** — per-key ``lookup()`` calls (the oracle; also the source
  of the result fingerprint every other engine must match);
- **generic template** — the base-class numpy ``_lookup_batch`` loop
  (``np.fromiter`` over the scalar method): what every engine fell back
  to before per-engine vectorization existed, and the "existing numpy
  template" baseline the kernel speedup headline is quoted against;
- **engine template** — the structure's own pre-kernel vectorized path
  (``repro.core.vectorized`` for Poptrie, ``_lookup_batch_template`` on
  the baselines), timed under :func:`~repro.lookup.kernels.kernels_disabled`;
- **kernel** — the branchless gather kernel from
  :mod:`repro.lookup.kernels`.

The engine-template and kernel passes run *interleaved in the same
process*, alternating per repeat with min-of-N — same warmed caches,
same CPU-frequency regime — because cross-process comparisons on shared
machines routinely wobble 30–40%, which is larger than some of the
effects being measured.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Dict, Optional

import numpy as np

from repro.lookup.base import LookupStructure, normalize_batch_keys
from repro.lookup import kernels


def _time_pass(fn: Callable[[np.ndarray], object], keys: np.ndarray,
               chunk: int) -> float:
    start = time.perf_counter()
    for begin in range(0, len(keys), chunk):
        fn(keys[begin : begin + chunk])
    return time.perf_counter() - start


def _sha256(results: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(results, dtype=np.uint32).tobytes()
    ).hexdigest()


def kernel_comparison(
    structure: LookupStructure,
    keys,
    *,
    repeats: int = 3,
    chunk: int = 1 << 16,
    reference_keys: int = 20_000,
) -> Dict[str, object]:
    """Measure all four engines for ``structure`` over ``keys``.

    The slow per-key paths (scalar, generic template) are timed over the
    first ``reference_keys`` keys only — at full-table scale they are
    ~100× slower than the kernel, and a capped sample times them just as
    accurately.  The engine template and the kernel see the full stream.
    The scalar *results*, however, are computed over the full stream
    untimed: they are the oracle fingerprint.
    """
    keys = normalize_batch_keys(keys, structure.width)
    ref = keys[: min(reference_keys, len(keys))]

    # Oracle: full-stream scalar results (untimed).
    lookup = structure.lookup
    oracle = np.fromiter(
        (lookup(int(key)) for key in keys), dtype=np.uint32, count=len(keys)
    )
    oracle_sha = _sha256(oracle)

    # Scalar + generic-template rates over the reference sample.
    best_scalar = min(
        _time_pass(lambda c: [lookup(int(k)) for k in c], ref, chunk)
        for _ in range(repeats)
    )
    generic = LookupStructure._lookup_batch.__get__(structure)
    best_generic = min(
        _time_pass(generic, ref, chunk) for _ in range(repeats)
    )

    # Engine template vs kernel, interleaved in this same process.
    kernel = kernels.kernel_for_class(type(structure))
    has_kernel = (
        kernel is not None
        and kernel.supports_width(structure.width)
        and kernels.dispatch_enabled()
    )
    has_engine = structure.supports_batch()
    best_engine = best_kernel = float("inf")
    for _ in range(repeats):
        if has_kernel:
            best_kernel = min(
                best_kernel, _time_pass(structure._lookup_batch, keys, chunk)
            )
        if has_engine:
            with kernels.kernels_disabled():
                best_engine = min(
                    best_engine,
                    _time_pass(structure._lookup_batch, keys, chunk),
                )

    def rate(seconds: float, count: int) -> Optional[float]:
        if seconds == float("inf") or seconds <= 0:
            return None
        return count / seconds / 1e6

    kernel_sha = engine_sha = None
    if has_kernel:
        kernel_sha = _sha256(structure.lookup_batch(keys))
    if has_engine:
        with kernels.kernels_disabled():
            engine_sha = _sha256(structure.lookup_batch(keys))

    scalar_mlps = rate(best_scalar, len(ref))
    generic_mlps = rate(best_generic, len(ref))
    engine_mlps = rate(best_engine, len(keys)) if has_engine else None
    kernel_mlps = rate(best_kernel, len(keys)) if has_kernel else None

    def ratio(a: Optional[float], b: Optional[float]) -> Optional[float]:
        return a / b if a and b else None

    return {
        "name": structure.name,
        "batch_engine": structure.batch_engine(),
        "kernel": kernel.name if has_kernel else None,
        "memory_bytes": structure.memory_bytes(),
        "queries": len(keys),
        "reference_queries": len(ref),
        "scalar_mlps": scalar_mlps,
        "generic_template_mlps": generic_mlps,
        "engine_mlps": engine_mlps,
        "kernel_mlps": kernel_mlps,
        # Kernel speedup over the generic numpy template — the headline
        # number — and over the per-engine vectorized path, separately.
        "speedup_vs_template": ratio(kernel_mlps, generic_mlps),
        "speedup_vs_engine": ratio(kernel_mlps, engine_mlps),
        "scalar_sha256": oracle_sha,
        "kernel_sha256": kernel_sha,
        "engine_sha256": engine_sha,
        "oracle_match": kernel_sha == oracle_sha if has_kernel else None,
    }
