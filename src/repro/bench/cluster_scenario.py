"""The replicated-cluster bench scenario: scaling grid + failover curve.

Two questions this scenario answers with one JSON artifact
(``BENCH_cluster.json``):

1. **Scaling** — for each (shards × replicas) cell, a full in-process
   cluster is stood up (one primary journal, checkpoint-shipped to every
   replica over the real replication channel) and driven through the
   sharded :class:`~repro.cluster.router.ClusterRouter` by the open-loop
   load generator.  Every response is cross-checked against an oracle
   Poptrie built from the same RIB, so the grid doubles as a correctness
   sweep of prefix-range routing.

2. **Failover** — for each replica count, a small update stream is
   applied through the primary (so promotion has a real watermark to
   protect), the primary is stopped mid-load, and the scenario measures
   the *read blackout* the router observes (time until the next routed
   batch succeeds through a replica) and the *promotion latency* of
   :func:`~repro.cluster.router.elect_and_promote`, then proves the
   promoted node accepts writes.

3. **Quorum cost** — the write-latency price of ``--min-insync``: the
   same update stream is driven over the wire against a one-replica
   cluster with quorum acknowledgement off (``min_insync=0``, ack after
   the local journal flush) and on (``min_insync=1``, ack only after the
   replica's durable ACK returns), yielding the per-batch ``OP_UPDATE``
   latency percentiles for both durability modes side by side.

Everything runs in one process on loopback — the numbers characterise
the protocol and router overheads, not a datacentre network.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import tempfile
import time
from typing import List, Sequence, Tuple

from repro.cluster import Replica, ClusterRouter, build_shard_map
from repro.cluster.router import RouterConfig, elect_and_promote
from repro.core.poptrie import Poptrie
from repro.errors import ClusterError
from repro.robust.journal import Journal
from repro.server import LoadGenConfig, LoadGenerator

#: How long a cell may take to checkpoint-sync all replicas before the
#: scenario gives up (loopback shipping is milliseconds; the margin is
#: for slow CI machines).
SYNC_TIMEOUT_S = 20.0


def run_cluster_bench(
    routes: int = 4_000,
    nexthops: int = 16,
    duration: float = 1.0,
    rate: float = 600.0,
    batch: int = 16,
    shard_counts: Sequence[int] = (1, 2),
    replica_counts: Sequence[int] = (0, 1),
    failover_replicas: Sequence[int] = (1, 2),
    quorum_insync: Sequence[int] = (0, 1),
    updates: int = 200,
    seed: int = 7,
) -> dict:
    """Run the scenario once; returns the JSON-ready result dict."""
    return asyncio.run(
        _run(
            routes=routes,
            nexthops=nexthops,
            duration=duration,
            rate=rate,
            batch=batch,
            shard_counts=tuple(shard_counts),
            replica_counts=tuple(replica_counts),
            failover_replicas=tuple(failover_replicas),
            quorum_insync=tuple(quorum_insync),
            updates=updates,
            seed=seed,
        )
    )


async def _run(
    routes: int,
    nexthops: int,
    duration: float,
    rate: float,
    batch: int,
    shard_counts: Tuple[int, ...],
    replica_counts: Tuple[int, ...],
    failover_replicas: Tuple[int, ...],
    quorum_insync: Tuple[int, ...],
    updates: int,
    seed: int,
) -> dict:
    from repro.data.synth import generate_table

    rib, _ = generate_table(n_prefixes=routes, n_nexthops=nexthops, seed=seed)
    grid = []
    for shards in shard_counts:
        for replicas in replica_counts:
            grid.append(
                await _scaling_cell(
                    rib, shards, replicas, duration, rate, batch, seed
                )
            )
    failover = []
    for replicas in failover_replicas:
        failover.append(
            await _failover_cell(
                rib, replicas, duration, rate, batch, updates, seed
            )
        )
    quorum = []
    for min_insync in quorum_insync:
        quorum.append(await _quorum_cell(rib, min_insync, updates, seed))
    return {
        "scenario": "cluster",
        "routes": len(rib),
        "config": {
            "duration_s": duration,
            "target_rate_rps": rate,
            "keys_per_request": batch,
            "shard_counts": list(shard_counts),
            "replica_counts": list(replica_counts),
            "failover_replicas": list(failover_replicas),
            "quorum_insync": list(quorum_insync),
            "updates": updates,
            "seed": seed,
        },
        "grid": grid,
        "failover": failover,
        "quorum": quorum,
    }


async def _start_cluster(
    tmp: str, rib, replicas: int
) -> Tuple[List[Replica], List[str], List[str]]:
    """One primary seeded with ``rib`` plus ``replicas`` followers.

    Returns ``(nodes, serve_endpoints, repl_endpoints)`` with the
    primary first, every replica checkpoint-synced to the primary's
    route count before returning.
    """
    primary_dir = os.path.join(tmp, "primary")
    os.makedirs(primary_dir)
    journal = Journal(primary_dir)
    journal.checkpoint(rib)
    journal.close()

    nodes = [Replica(primary_dir, name="primary")]
    (host, port), (repl_host, repl_port) = await nodes[0].start()
    serve_endpoints = [f"{host}:{port}"]
    repl_endpoints = [f"{repl_host}:{repl_port}"]
    for index in range(replicas):
        node = Replica(
            os.path.join(tmp, f"replica{index}"),
            primary=(repl_host, repl_port),
            name=f"replica{index}",
        )
        (h, p), (rh, rp) = await node.start()
        nodes.append(node)
        serve_endpoints.append(f"{h}:{p}")
        repl_endpoints.append(f"{rh}:{rp}")
    await _wait_synced(nodes, len(rib), nodes[0].applied_seqno)
    return nodes, serve_endpoints, repl_endpoints


async def _wait_synced(
    nodes: Sequence[Replica], route_count: int, seqno: int
) -> None:
    deadline = time.monotonic() + SYNC_TIMEOUT_S
    while True:
        synced = all(
            node.txn is not None
            and len(node.txn.rib) == route_count
            and node.applied_seqno >= seqno
            for node in nodes
        )
        if synced:
            return
        if time.monotonic() > deadline:
            states = [
                (node.name, node.applied_seqno, len(node.txn.rib))
                for node in nodes
            ]
            raise ClusterError(f"replicas failed to sync: {states}")
        await asyncio.sleep(0.02)


def _rotated_endpoint_sets(
    endpoints: Sequence[str], shards: int
) -> List[List[str]]:
    """Spread shard load: shard *i* prefers endpoint ``i % n``, keeping
    every other node as a failover target."""
    n = len(endpoints)
    return [
        [endpoints[(shard + offset) % n] for offset in range(n)]
        for shard in range(shards)
    ]


async def _scaling_cell(
    rib, shards: int, replicas: int, duration: float,
    rate: float, batch: int, seed: int,
) -> dict:
    from repro.data.traffic import random_addresses

    oracle = Poptrie.from_rib(rib)
    with tempfile.TemporaryDirectory() as tmp:
        nodes, serve_endpoints, _ = await _start_cluster(tmp, rib, replicas)
        shard_map = build_shard_map(
            rib, shards,
            endpoint_sets=_rotated_endpoint_sets(serve_endpoints, shards),
        )
        router = ClusterRouter(shard_map)
        generator = LoadGenerator(
            None,
            None,
            LoadGenConfig(
                rate=rate, duration=duration, batch=batch, seed=seed
            ),
            keys=random_addresses(1 << 14, seed=seed),
            oracle=oracle.lookup,
            router=router,
        )
        report = await generator.run()
        await router.close()
        for node in nodes:
            await node.stop()
    return {
        "shards": shards,
        "replicas": replicas,
        "nodes": len(nodes),
        "throughput_rps": round(report.throughput_rps, 3),
        "throughput_klps": round(report.throughput_klps(batch), 3),
        "latency_us": report.to_dict(batch)["latency_us"],
        "errors": report.errors,
        "mismatched": report.mismatched,
        "router_failovers": router.failovers,
    }


async def _failover_cell(
    rib, replicas: int, duration: float, rate: float,
    batch: int, updates: int, seed: int,
) -> dict:
    from repro.data.traffic import random_addresses
    from repro.data.updates import generate_update_stream

    with tempfile.TemporaryDirectory() as tmp:
        nodes, serve_endpoints, repl_endpoints = await _start_cluster(
            tmp, rib, replicas
        )
        primary = nodes[0]
        # Give promotion a real watermark to protect: ship a stream of
        # updates through the primary's write path and wait for every
        # replica to apply it.
        stream = generate_update_stream(rib, count=updates, seed=seed)
        primary._apply_updates(stream)
        target_seqno = primary.applied_seqno
        await _wait_synced(nodes, len(primary.txn.rib), target_seqno)
        # The oracle must reflect the *updated* table.
        oracle = Poptrie.from_rib(primary.txn.rib)

        shard_map = build_shard_map(
            primary.txn.rib, 1, endpoint_sets=[serve_endpoints]
        )
        router = ClusterRouter(shard_map, RouterConfig(retry_pause_s=0.005))
        keys = random_addresses(1 << 14, seed=seed)
        generator = LoadGenerator(
            None,
            None,
            LoadGenConfig(
                rate=rate, duration=duration, batch=batch, seed=seed
            ),
            keys=keys,
            oracle=oracle.lookup,
            router=router,
        )
        load = asyncio.create_task(generator.run())
        await asyncio.sleep(duration * 0.35)

        # Kill the primary mid-load (clean stop here; the chaos tests
        # SIGKILL real processes) and time the client-visible outage.
        killed_at = time.perf_counter()
        await primary.stop()
        probe = [int(keys[0]), int(keys[1])]
        while True:
            try:
                await router.lookup_batch(probe)
                break
            except ClusterError:
                await asyncio.sleep(0.005)
        read_blackout_ms = (time.perf_counter() - killed_at) * 1e3

        promote_started = time.perf_counter()
        promotion = await elect_and_promote(repl_endpoints[1:])
        promotion_ms = (time.perf_counter() - promote_started) * 1e3

        report = await load
        # The promoted node must accept writes where the others refuse.
        promoted = next(
            node for node in nodes[1:] if node.role == "primary"
        )
        post = promoted._apply_updates(
            generate_update_stream(promoted.txn.rib, count=8, seed=seed + 1)
        )
        await router.close()
        for node in nodes[1:]:
            await node.stop()
    return {
        "replicas": replicas,
        "seqno_at_failover": target_seqno,
        "read_blackout_ms": round(read_blackout_ms, 3),
        "promotion_ms": round(promotion_ms, 3),
        "promoted": promotion["promoted"],
        "promoted_seqno": promotion["promoted_seqno"],
        "post_failover_seqno": post["seqno"],
        "errors": report.errors,
        "mismatched": report.mismatched,
        "router_failovers": router.failovers,
    }


#: Updates per OP_UPDATE batch in the quorum cost cells — small batches
#: so the per-write quorum round trip dominates, not apply time.
QUORUM_WRITE_BATCH = 4


async def _quorum_cell(rib, min_insync: int, updates: int, seed: int) -> dict:
    """Write-latency percentiles for one durability mode.

    One primary + one replica; the update stream goes over the wire in
    :data:`QUORUM_WRITE_BATCH`-sized ``OP_UPDATE`` requests.  With
    ``min_insync=0`` the ack returns after the local journal flush; with
    ``min_insync=1`` it additionally waits for the replica's durable
    ACK, so the delta between the two cells is the quorum round trip.
    """
    from repro.cluster.replication import QuorumConfig
    from repro.data.updates import generate_update_stream
    from repro.server import protocol
    from repro.server.loadgen import _Connection

    quorum = (
        QuorumConfig(min_insync=min_insync, timeout_s=10.0)
        if min_insync
        else None
    )
    stream = generate_update_stream(rib, count=updates, seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        primary_dir = os.path.join(tmp, "primary")
        os.makedirs(primary_dir)
        journal = Journal(primary_dir)
        journal.checkpoint(rib)
        journal.close()
        primary = Replica(primary_dir, name="primary", quorum=quorum)
        (host, port), (repl_host, repl_port) = await primary.start()
        replica = Replica(
            os.path.join(tmp, "replica0"),
            primary=(repl_host, repl_port),
            name="replica0",
        )
        await replica.start()
        await _wait_synced([primary, replica], len(rib), primary.applied_seqno)
        conn = _Connection()
        conn.host, conn.port = host, port
        await conn.ensure_open()
        latencies = []
        sheds = 0
        try:
            for i in range(0, len(stream), QUORUM_WRITE_BATCH):
                started = time.perf_counter()
                response = await conn.request(
                    protocol.OP_UPDATE,
                    updates=stream[i:i + QUORUM_WRITE_BATCH],
                    timeout=30,
                )
                latencies.append((time.perf_counter() - started) * 1e6)
                if response.status == protocol.STATUS_QUORUM_TIMEOUT:
                    sheds += 1
                elif response.status != protocol.STATUS_OK:
                    raise ClusterError(
                        f"update refused: status {response.status}"
                    )
        finally:
            await conn.close()
        replicated = replica.applied_seqno
        await replica.stop()
        await primary.stop()

    ordered = sorted(latencies)

    def pct(q: float) -> float:
        rank = max(0, math.ceil(len(ordered) * q / 100) - 1)
        return round(ordered[min(rank, len(ordered) - 1)], 3)

    return {
        "min_insync": min_insync,
        "write_batches": len(latencies),
        "updates": len(stream),
        "quorum_sheds": sheds,
        "replica_seqno_at_close": replicated,
        "write_latency_us": {
            "mean": round(sum(ordered) / len(ordered), 3),
            "p50": pct(50),
            "p90": pct(90),
            "p99": pct(99),
        },
    }


def emit_cluster_bench(path: str = "BENCH_cluster.json", **kwargs) -> dict:
    """Run the scenario and persist the artifact; returns the result."""
    result = run_cluster_bench(**kwargs)
    with open(path, "w") as stream:
        json.dump(result, stream, indent=2, sort_keys=False)
        stream.write("\n")
    return result
