"""Open-loop async load generator for the lookup service.

Closed-loop clients (send, wait, send) measure only their own politeness:
when the server slows down, a closed-loop client slows its arrival rate
with it and the latency distribution stays flattering.  The load
generator here is **open-loop**: request arrival times are drawn up
front from a schedule (Poisson or uniform) and each request is fired at
its scheduled instant regardless of how many are still in flight — the
standard methodology for latency measurement under load, and the shape
that actually exposes the coalescing/latency trade-off the server's
``max_wait_us`` knob controls.

Mechanics:

- ``connections`` TCP connections are opened up front; arrivals are
  dealt round-robin across them.  Each connection pipelines: a writer
  sends frames as arrivals fire, a reader coroutine matches responses
  to in-flight requests by ``request_id``.
- Each request carries ``batch`` keys drawn from a provided key pool
  (wrapping deterministically), so one run replays identically given the
  same seed.
- Latency is measured per request (send to matched response) and
  reported as p50/p90/p99/p999 in microseconds, alongside achieved
  request and key throughput and the set of table generations observed
  (a hot swap mid-run shows up as ``generations_seen > 1``).
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.server import protocol


@dataclass(frozen=True)
class LoadGenConfig:
    """Knobs of one load-generator run."""

    connections: int = 4
    #: Target request arrivals per second across all connections.
    rate: float = 2000.0
    #: Seconds of scheduled arrivals.
    duration: float = 2.0
    #: Keys per request.
    batch: int = 16
    #: ``"poisson"`` (exponential gaps) or ``"uniform"`` (fixed gaps).
    schedule: str = "poisson"
    seed: int = 2463534242
    #: Seconds to wait for stragglers after the last scheduled arrival.
    drain_timeout: float = 5.0
    #: Per-attempt response timeout in seconds (0 disables).
    request_timeout: float = 5.0
    #: Deadline budget stamped on every lookup request (version-2 wire
    #: field); 0 sends no deadline.
    deadline_us: int = 0
    #: Retry attempts per request after a transport error or a retryable
    #: status (overload, deadline exceeded, shutting down).
    max_retries: int = 0
    #: Jittered exponential backoff between attempts: the nth retry
    #: sleeps ``min(backoff_max, backoff_base * 2**n)`` scaled by a
    #: seeded uniform(0.5, 1.0) jitter.
    backoff_base: float = 0.001
    backoff_max: float = 0.1
    #: Retry-budget token rate: each original request earns this many
    #: tokens, each retry spends one.  At 0.2 the run retries at most 20%
    #: of its traffic — retries cannot amplify an overload into a storm.
    retry_budget: float = 0.2


@dataclass
class LoadReport:
    """The outcome of one load-generator run.

    Every sent request ends in exactly one of three outcomes:
    ``completed``, ``transport_errors`` (the connection died, timed out
    or returned garbage — the response never arrived) or
    ``status_errors`` (a well-formed response carried a non-OK status).
    ``shed`` additionally counts every overload/deadline-exceeded
    response *observed*, including ones later retried successfully;
    ``retries``/``timeouts``/``reconnects`` are event counters, not
    outcomes.
    """

    sent: int = 0
    completed: int = 0
    mismatched: int = 0
    #: Requests that ended without a response: connection error, timeout,
    #: undecodable frame.
    transport_errors: int = 0
    #: Requests whose final response carried a non-OK status.
    status_errors: int = 0
    #: STATUS_OVERLOAD / STATUS_DEADLINE_EXCEEDED responses observed.
    shed: int = 0
    retries: int = 0
    timeouts: int = 0
    reconnects: int = 0
    duration: float = 0.0
    target_rate: float = 0.0
    latencies_us: List[float] = field(default_factory=list)
    generations: Dict[int, int] = field(default_factory=dict)
    statuses: Dict[int, int] = field(default_factory=dict)

    @property
    def errors(self) -> int:
        """Failed requests of either class (the headline failure count)."""
        return self.transport_errors + self.status_errors

    @property
    def throughput_rps(self) -> float:
        """Achieved completed requests per second."""
        return self.completed / self.duration if self.duration else 0.0

    def throughput_klps(self, batch: int) -> float:
        """Achieved thousand lookups (keys) per second."""
        return self.throughput_rps * batch / 1e3

    def percentile(self, q: float) -> float:
        """The q-th latency percentile (0..100) in microseconds."""
        if not self.latencies_us:
            return 0.0
        ordered = sorted(self.latencies_us)
        rank = max(0, math.ceil(len(ordered) * q / 100) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    def to_dict(self, batch: int = 1) -> dict:
        """JSON-ready summary (the shape persisted in BENCH_server.json)."""
        return {
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "transport_errors": self.transport_errors,
            "status_errors": self.status_errors,
            "shed": self.shed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "reconnects": self.reconnects,
            "mismatched": self.mismatched,
            "duration_s": round(self.duration, 6),
            "target_rate_rps": self.target_rate,
            "throughput_rps": round(self.throughput_rps, 3),
            "throughput_klps": round(self.throughput_klps(batch), 3),
            "latency_us": {
                "mean": round(
                    sum(self.latencies_us) / len(self.latencies_us), 3
                )
                if self.latencies_us
                else 0.0,
                "p50": round(self.percentile(50), 3),
                "p90": round(self.percentile(90), 3),
                "p99": round(self.percentile(99), 3),
                "p999": round(self.percentile(99.9), 3),
            },
            "generations_seen": sorted(self.generations),
            "swaps_observed": max(0, len(self.generations) - 1),
        }

    def render(self, batch: int = 1) -> str:
        summary = self.to_dict(batch)
        latency = summary["latency_us"]
        lines = [
            f"requests: {self.completed}/{self.sent} completed, "
            f"{self.errors} errors ({self.transport_errors} transport, "
            f"{self.status_errors} status), {self.shed} shed, "
            f"{self.retries} retries, {self.mismatched} mismatched",
            f"throughput: {summary['throughput_rps']:.0f} req/s "
            f"({summary['throughput_klps']:.1f} klps at {batch} keys/req, "
            f"target {self.target_rate:.0f} req/s)",
            f"latency us: mean {latency['mean']:.0f}  p50 {latency['p50']:.0f}  "
            f"p90 {latency['p90']:.0f}  p99 {latency['p99']:.0f}  "
            f"p999 {latency['p999']:.0f}",
            f"table generations seen: {summary['generations_seen']} "
            f"({summary['swaps_observed']} swap(s) observed)",
        ]
        return "\n".join(lines)


class _Connection:
    """One pipelined client connection: request_id -> future matching."""

    def __init__(self) -> None:
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._open_lock = asyncio.Lock()

    async def open(self, host: str, port: int) -> None:
        self.host, self.port = host, port
        self.reader, self.writer = await asyncio.open_connection(host, port)
        self._reader_task = asyncio.create_task(self._read_loop())

    @property
    def alive(self) -> bool:
        return (
            self.writer is not None
            and not self.writer.is_closing()
            and self._reader_task is not None
            and not self._reader_task.done()
        )

    async def ensure_open(self) -> bool:
        """Reconnect if the connection has died.

        Returns ``True`` when a reconnect actually happened (so the
        caller can count it); concurrent callers coordinate through the
        open lock and only the first one pays for the reopen.
        """
        if self.alive:
            return False
        async with self._open_lock:
            if self.alive:
                return False
            await self.close()
            await self.open(self.host, self.port)
            return True

    async def _read_loop(self) -> None:
        try:
            while True:
                payload = await protocol.read_frame(self.reader)
                if payload is None:
                    break
                response = protocol.decode_response(payload)
                future = self._pending.pop(response.request_id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except Exception as error:
            self._fail_pending(error)
            return
        self._fail_pending(ConnectionError("connection closed"))

    def _fail_pending(self, error: BaseException) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    error
                    if isinstance(error, Exception)
                    else ConnectionError(str(error))
                )
        self._pending.clear()

    async def request(
        self,
        opcode: int,
        keys: Sequence[int] = (),
        *,
        deadline_us: int = 0,
        timeout: Optional[float] = None,
        updates: Sequence = (),
    ) -> protocol.Response:
        self._next_id = (self._next_id + 1) & 0xFFFFFFFF
        request_id = self._next_id
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        payload = protocol.encode_request(
            opcode, request_id, keys, deadline_us=deadline_us, updates=updates
        )
        async with self._write_lock:
            protocol.write_frame(self.writer, payload)
            await self.writer.drain()
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            # Forget the request: a straggler response must not be
            # mistaken for an answer to a later request.
            self._pending.pop(request_id, None)
            raise

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: B014
                pass
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._fail_pending(ConnectionError("connection closed"))


class LoadGenerator:
    """Drive a :class:`~repro.server.service.LookupServer` with open-loop load.

    ``keys`` is the address pool requests draw from (defaults to the
    benchmark harness's random IPv4 pattern); ``width`` selects the
    lookup opcode (32 or 128).  ``oracle``, when given, is a callable
    mapping a key to its expected FIB index — every response is
    cross-checked and disagreements counted in ``LoadReport.mismatched``.

    ``router`` switches the generator from a single server to a
    cluster: each scheduled request goes through
    :meth:`repro.cluster.router.ClusterRouter.lookup_batch`, which
    shards the batch and fails over inside each shard's replica set.
    Per-request retries then belong to the router (its attempt budget),
    not to the generator's retry bucket; a batch the router cannot
    place anywhere counts as one ``status_error``.
    """

    def __init__(
        self,
        host: Optional[str],
        port: Optional[int],
        config: Optional[LoadGenConfig] = None,
        keys=None,
        width: int = 32,
        oracle=None,
        router=None,
    ) -> None:
        if router is None and (host is None or port is None):
            raise ValueError("either host/port or router is required")
        self.host = host
        self.port = port
        self.router = router
        self.config = config or LoadGenConfig()
        if keys is None:
            from repro.data.traffic import random_addresses

            keys = random_addresses(1 << 16, seed=self.config.seed)
        self.keys = [int(k) for k in keys]
        self.width = width
        self.oracle = oracle
        #: Retry-budget token bucket (see :class:`LoadGenConfig`).
        self._retry_tokens = 0.0
        self._backoff_rng = random.Random(self.config.seed ^ 0x5EED)

    def _arrival_gaps(self):
        """The open-loop arrival schedule: inter-arrival gaps in seconds."""
        rng = random.Random(self.config.seed)
        rate = max(self.config.rate, 1e-9)
        if self.config.schedule == "uniform":
            while True:
                yield 1.0 / rate
        elif self.config.schedule == "poisson":
            while True:
                yield rng.expovariate(rate)
        else:
            raise ValueError(
                f"unknown schedule {self.config.schedule!r} "
                "(expected 'poisson' or 'uniform')"
            )

    async def run(self, reload_at: Optional[float] = None) -> LoadReport:
        """Run one load-generation pass; returns the :class:`LoadReport`.

        ``reload_at`` (seconds into the run) sends one OP_RELOAD midway,
        asking the server to recompile its table and hot-swap it under
        the ongoing load — the CI smoke test drives a cross-process swap
        this way.
        """
        config = self.config
        opcode = protocol.family_opcode(self.width)
        report = LoadReport(target_rate=config.rate)
        connections: List[_Connection] = []
        if self.router is None:
            connections = [_Connection() for _ in range(config.connections)]
            await asyncio.gather(
                *(conn.open(self.host, self.port) for conn in connections)
            )
        elif reload_at is not None:
            raise ValueError("reload_at is not supported in router mode")
        loop = asyncio.get_running_loop()
        tasks: List[asyncio.Task] = []
        pool, pool_size = self.keys, len(self.keys)
        cursor = 0
        gaps = self._arrival_gaps()
        start = loop.time()
        reload_task = None
        if reload_at is not None:
            reload_task = asyncio.create_task(
                self._reload_later(connections[0], reload_at, report)
            )
        try:
            t = next(gaps)
            turn = 0
            while t < config.duration:
                delay = start + t - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                keys = [
                    pool[(cursor + i) % pool_size] for i in range(config.batch)
                ]
                cursor = (cursor + config.batch) % pool_size
                report.sent += 1
                if self.router is not None:
                    tasks.append(
                        asyncio.create_task(
                            self._one_routed_request(keys, report)
                        )
                    )
                else:
                    conn = connections[turn % len(connections)]
                    turn += 1
                    tasks.append(
                        asyncio.create_task(
                            self._one_request(conn, opcode, keys, report)
                        )
                    )
                t += next(gaps)
            if tasks:
                done, pending = await asyncio.wait(
                    tasks, timeout=config.drain_timeout
                )
                for task in pending:
                    task.cancel()
                    report.timeouts += 1
                    report.transport_errors += 1
            if reload_task is not None:
                await reload_task
        finally:
            report.duration = loop.time() - start
            await asyncio.gather(
                *(conn.close() for conn in connections),
                return_exceptions=True,
            )
        return report

    async def _one_request(
        self, conn: _Connection, opcode: int, keys, report: LoadReport
    ) -> None:
        """One logical request: attempt, classify, maybe retry.

        Transport failures (connection death, timeout) and retryable
        statuses (overload, deadline exceeded, shutting down) are retried
        up to ``max_retries`` times with jittered exponential backoff,
        as long as the retry-budget bucket has a token.  Latency is
        measured first send to final success, retries included.
        """
        config = self.config
        self._retry_tokens += config.retry_budget
        timeout = config.request_timeout or None
        attempt = 0
        start = time.perf_counter()
        while True:
            retryable = False
            try:
                response = await conn.request(
                    opcode,
                    keys,
                    deadline_us=config.deadline_us,
                    timeout=timeout,
                )
            except asyncio.TimeoutError:
                report.timeouts += 1
                response = None
            except Exception:
                response = None
            if response is not None:
                report.statuses[response.status] = (
                    report.statuses.get(response.status, 0) + 1
                )
                if response.ok and len(response.results) == len(keys):
                    report.completed += 1
                    report.latencies_us.append(
                        (time.perf_counter() - start) * 1e6
                    )
                    report.generations[response.generation] = (
                        report.generations.get(response.generation, 0) + 1
                    )
                    if self.oracle is not None:
                        for key, result in zip(keys, response.results):
                            if self.oracle(key) != int(result):
                                report.mismatched += 1
                    return
                if response.status in (
                    protocol.STATUS_OVERLOAD,
                    protocol.STATUS_DEADLINE_EXCEEDED,
                ):
                    report.shed += 1
                retryable = response.status in protocol.RETRYABLE_STATUSES
            if (
                (response is None or retryable)
                and attempt < config.max_retries
                and self._retry_tokens >= 1.0
            ):
                self._retry_tokens -= 1.0
                report.retries += 1
                if response is None:
                    try:
                        if await conn.ensure_open():
                            report.reconnects += 1
                    except OSError:
                        report.transport_errors += 1
                        return
                await asyncio.sleep(self._backoff_delay(attempt))
                attempt += 1
                continue
            if response is None:
                report.transport_errors += 1
            else:
                report.status_errors += 1
            return

    async def _one_routed_request(self, keys, report: LoadReport) -> None:
        """One logical request in router mode.

        Failover/retry live inside the router; here a batch either comes
        back complete (in input order) or fails once.  The router's
        failover counter is folded into ``report.retries`` by the caller
        that owns the router, not per request.
        """
        start = time.perf_counter()
        try:
            results = await self.router.lookup_batch(keys)
        except asyncio.TimeoutError:
            report.timeouts += 1
            report.transport_errors += 1
            return
        except ConnectionError:
            report.transport_errors += 1
            return
        except Exception:
            # ClusterError: every endpoint of some shard was exhausted.
            report.status_errors += 1
            return
        report.completed += 1
        report.latencies_us.append((time.perf_counter() - start) * 1e6)
        if self.oracle is not None:
            for key, result in zip(keys, results):
                if self.oracle(key) != int(result):
                    report.mismatched += 1

    def _backoff_delay(self, attempt: int) -> float:
        delay = min(
            self.config.backoff_max,
            self.config.backoff_base * (2 ** attempt),
        )
        return delay * self._backoff_rng.uniform(0.5, 1.0)

    async def _reload_later(
        self, conn: _Connection, delay: float, report: LoadReport
    ) -> None:
        await asyncio.sleep(delay)
        try:
            response = await conn.request(protocol.OP_RELOAD)
        except Exception:
            report.transport_errors += 1
            return
        if not response.ok:
            report.status_errors += 1
