"""The asyncio route-lookup server with per-tick request coalescing.

Architecture (one event loop, no thread per connection):

- Each TCP connection runs a reader coroutine that parses frames
  (:mod:`repro.server.protocol`) and spawns one task per request, so a
  client may pipeline requests on a single connection.
- Lookup requests do **not** call the engine themselves.  They append
  ``(keys, future)`` to a shared queue and await the future.  A single
  dispatcher coroutine wakes, lets the coalescing window
  (``max_wait_us``) pass, then gathers every pending request — up to
  ``max_batch`` keys — into **one** numpy ``lookup_batch`` call and
  fans the result slices back out to the futures.
- The batch executes under :meth:`TableHandle.read`, so a concurrent
  hot swap (:meth:`TableHandle.swap_async`) drains behind it and no
  request ever observes a half-published table.

The coalescing knobs are the live form of the paper's Section 2
trade-off: "the large packet batch size is likely to lead to the higher
worst case packet forwarding latency".  ``max_wait_us=0`` serves every
request in its own batch (minimum latency, maximum interpreter
overhead); larger windows amortise the per-batch cost across more
concurrent requests at the price of queueing delay — the
``repro_server_coalesced_requests`` histogram shows where a deployment
actually lands.

Overload control bounds that queueing delay.  Admission is refused
(:data:`~repro.server.protocol.STATUS_OVERLOAD`) once the dispatcher
queue holds ``max_pending_requests`` requests or ``max_pending_keys``
keys, so a burst beyond capacity is answered immediately instead of
growing the queue without bound.  Version-2 requests may carry a
``deadline_us`` budget; a queued request whose budget expires before the
dispatcher reaches it is shed
(:data:`~repro.server.protocol.STATUS_DEADLINE_EXCEEDED`) rather than
served uselessly late — under overload the server spends its cycles on
answers somebody still wants.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.robust import faults
from repro.server import protocol
from repro.server.handle import TableHandle


class _DeadlineExceeded(Exception):
    """Internal: a queued request's deadline expired before dispatch."""


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of one :class:`LookupServer`."""

    host: str = "127.0.0.1"
    #: 0 = let the kernel pick an ephemeral port (see :meth:`LookupServer.start`).
    port: int = 0
    #: Keys per coalesced ``lookup_batch`` call; pending requests beyond
    #: this run in the next tick.
    max_batch: int = 8192
    #: Coalescing window after the first request of a tick arrives, in
    #: microseconds.  0 disables coalescing delay entirely.
    max_wait_us: float = 200.0
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    max_keys_per_request: int = protocol.MAX_KEYS_PER_REQUEST
    #: Admission bound: lookup requests queued for the dispatcher.  A
    #: request arriving with the queue at this depth is refused with
    #: STATUS_OVERLOAD instead of queued.
    max_pending_requests: int = 1024
    #: Admission bound on total queued keys (the actual work unit); the
    #: same STATUS_OVERLOAD refusal when exceeded.
    max_pending_keys: int = 1 << 16


@dataclass
class ServerStats:
    """Plain counters mirrored into :mod:`repro.obs` when it is enabled."""

    requests: int = 0
    responses: int = 0
    errors: int = 0
    batches: int = 0
    batched_requests: int = 0
    batched_keys: int = 0
    max_coalesced: int = 0
    connections: int = 0
    reloads: int = 0
    #: OP_RELOAD requests whose rebuild or swap raised; the previous
    #: table generation kept serving.
    reload_failures: int = 0
    #: Route updates applied through OP_UPDATE requests.
    updates_applied: int = 0
    #: OP_UPDATE updates the update engine rejected (bad withdrawals,
    #: out-of-range next hops); the rest of the batch still applied.
    updates_rejected: int = 0
    #: Requests refused at admission (queue full).
    shed_overload: int = 0
    #: Requests shed because their deadline expired while queued.
    shed_deadline: int = 0
    #: OP_UPDATE batches journaled locally but refused (retryably)
    #: because the replica quorum missed its deadline.
    shed_quorum: int = 0
    #: Responses destroyed by an armed FaultPlan (chaos testing only).
    dropped_responses: int = 0
    torn_responses: int = 0


class _Pending:
    """One lookup request waiting for the dispatcher."""

    __slots__ = ("keys", "future", "enqueued", "deadline")

    def __init__(
        self,
        keys,
        future,
        enqueued: float,
        deadline: Optional[float] = None,
    ) -> None:
        self.keys = keys
        self.future = future
        self.enqueued = enqueued
        #: Absolute ``perf_counter`` time after which serving this
        #: request is pointless, or ``None`` (version-1 / no budget).
        self.deadline = deadline


class LookupServer:
    """Serve ``lookup_batch`` over TCP for any registered algorithm.

    ``handle`` is the :class:`TableHandle` being served; ``rebuild`` is
    an optional zero-argument callable returning a fresh structure (used
    by the OP_RELOAD opcode to recompile from the server's RIB and swap
    it in — the CLI wires it to the registry entry of the served
    algorithm).  ``apply_updates`` is an optional callable taking a
    sequence of :class:`repro.data.updates.Update` and returning a
    JSON-ready dict (at least ``applied``/``rejected``); the OP_UPDATE
    opcode runs it in a worker thread, one batch at a time, and swaps
    the handle afterwards if the callable changed the served structure.
    The CLI's ``serve --journal`` mode wires it to the journaled
    transactional trie, turning the primary into the cluster's single
    write point.
    """

    def __init__(
        self,
        handle: TableHandle,
        config: Optional[ServerConfig] = None,
        rebuild=None,
        apply_updates=None,
    ) -> None:
        self.handle = handle
        self.config = config or ServerConfig()
        self.rebuild = rebuild
        self.apply_updates = apply_updates
        #: Optional :class:`repro.cluster.replication.QuorumGate`; when
        #: set, OP_UPDATE acks are held until the replica quorum acks
        #: (attached post-construction by the serve CLI / Replica, which
        #: create the publisher after the server).
        self.quorum = None
        #: Optional zero-argument callable merged into :meth:`describe`
        #: (and therefore the OP_STATS wire body) — the serve CLI hooks
        #: the journal's backpressure snapshot in here so remote churn
        #: drivers can read fsync/stall counters over the wire.
        self.stats_extra = None
        self._update_lock: Optional[asyncio.Lock] = None
        self.stats = ServerStats()
        self._pending: deque = deque()
        self._pending_keys = 0
        self._wakeup: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._stopping = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._stopping = False
        self._wakeup = asyncio.Event()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Stop accepting, fail queued requests, close connections."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        while self._pending:
            item = self._pending.popleft()
            if not item.future.done():
                item.future.set_exception(
                    ConnectionError("server shutting down")
                )
        self._pending_keys = 0
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``python -m repro serve`` main)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.stats.connections += 1
        self._gauge_inflight(0)
        write_lock = asyncio.Lock()
        request_tasks: set = set()
        try:
            while True:
                payload = await protocol.read_frame(
                    reader, self.config.max_frame_bytes
                )
                if payload is None:
                    break
                try:
                    request = protocol.decode_request(payload)
                except ProtocolError as error:
                    # Unparseable frame: report and drop the connection
                    # (framing may be corrupt from here on).
                    await self._respond(
                        writer,
                        write_lock,
                        protocol.encode_response(
                            0, protocol.STATUS_BAD_REQUEST, text=str(error)
                        ),
                    )
                    break
                self.stats.requests += 1
                self._count("repro_server_requests_total", opcode=request.opcode)
                sub = asyncio.create_task(
                    self._serve_request(request, writer, write_lock)
                )
                request_tasks.add(sub)
                sub.add_done_callback(request_tasks.discard)
        except (ConnectionError, ProtocolError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # stop() cancels connection handlers while clients may still
            # be attached.  Finishing normally matters: asyncio's stream
            # machinery calls task.exception() on this task from a plain
            # loop callback, which re-raises CancelledError and logs a
            # spurious "Exception in callback" at every shutdown.
            pass
        finally:
            if request_tasks:
                await asyncio.gather(*request_tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._conn_tasks.discard(task)

    async def _serve_request(
        self,
        request: protocol.Request,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        start = time.perf_counter()
        try:
            payload = await self._execute(request)
        except Exception as error:  # engine failure — never kill the server
            self.stats.errors += 1
            payload = protocol.encode_response(
                request.request_id,
                protocol.STATUS_SERVER_ERROR,
                generation=self.handle.generation,
                text=f"{type(error).__name__}: {error}",
                version=request.version,
            )
        self._observe_latency(start)
        await self._respond(writer, write_lock, payload)

    async def _execute(self, request: protocol.Request) -> bytes:
        opcode = request.opcode
        if opcode in (protocol.OP_LOOKUP4, protocol.OP_LOOKUP6):
            return await self._execute_lookup(request)
        if opcode == protocol.OP_PING:
            return protocol.encode_response(
                request.request_id,
                generation=self.handle.generation,
                version=request.version,
            )
        if opcode == protocol.OP_STATS:
            return protocol.encode_response(
                request.request_id,
                generation=self.handle.generation,
                text=json.dumps(self.describe()),
                version=request.version,
            )
        if opcode == protocol.OP_RELOAD:
            return await self._execute_reload(request)
        if opcode == protocol.OP_UPDATE:
            return await self._execute_update(request)
        raise ProtocolError(f"unknown opcode {opcode}")  # pragma: no cover

    async def _execute_lookup(self, request: protocol.Request) -> bytes:
        width = getattr(self.handle.structure, "width", 32)
        if width not in protocol.opcode_width(request.opcode):
            self.stats.errors += 1
            return protocol.encode_response(
                request.request_id,
                protocol.STATUS_WRONG_FAMILY,
                generation=self.handle.generation,
                text=f"served table holds width-{width} addresses",
                version=request.version,
            )
        if len(request.keys) > self.config.max_keys_per_request:
            self.stats.errors += 1
            return protocol.encode_response(
                request.request_id,
                protocol.STATUS_BAD_REQUEST,
                generation=self.handle.generation,
                text=(
                    f"{len(request.keys)} keys exceed the per-request "
                    f"limit of {self.config.max_keys_per_request}"
                ),
                version=request.version,
            )
        if self._stopping:
            return protocol.encode_response(
                request.request_id,
                protocol.STATUS_SHUTTING_DOWN,
                generation=self.handle.generation,
                text="server shutting down",
                version=request.version,
            )
        # Bounded admission: refuse immediately rather than queue beyond
        # what the dispatcher can drain — the client's backoff is the
        # system's only stable response to sustained overload.
        if (
            len(self._pending) >= self.config.max_pending_requests
            or self._pending_keys + len(request.keys)
            > self.config.max_pending_keys
        ):
            self.stats.shed_overload += 1
            self._count_shed("overload")
            return protocol.encode_response(
                request.request_id,
                protocol.STATUS_OVERLOAD,
                generation=self.handle.generation,
                text=(
                    f"dispatcher queue full "
                    f"({len(self._pending)} requests, "
                    f"{self._pending_keys} keys pending)"
                ),
                version=request.version,
            )
        now = time.perf_counter()
        deadline = (
            now + request.deadline_us / 1e6 if request.deadline_us else None
        )
        future = asyncio.get_running_loop().create_future()
        self._pending.append(_Pending(request.keys, future, now, deadline))
        self._pending_keys += len(request.keys)
        self._gauge_inflight(len(self._pending))
        self._wakeup.set()
        try:
            results, generation = await future
        except _DeadlineExceeded:
            return protocol.encode_response(
                request.request_id,
                protocol.STATUS_DEADLINE_EXCEEDED,
                generation=self.handle.generation,
                text=f"deadline of {request.deadline_us}us expired in queue",
                version=request.version,
            )
        return protocol.encode_response(
            request.request_id,
            generation=generation,
            results=results,
            version=request.version,
        )

    async def _execute_reload(self, request: protocol.Request) -> bytes:
        if self.rebuild is None:
            return protocol.encode_response(
                request.request_id,
                protocol.STATUS_UNSUPPORTED,
                generation=self.handle.generation,
                text="server has no RIB to rebuild from",
                version=request.version,
            )
        try:
            structure = await asyncio.to_thread(self.rebuild)
            generation = await self.handle.swap_async(structure)
        except Exception as error:
            # Failed rebuild must not disturb service: the previous
            # generation keeps serving, the client learns why.
            self.stats.reload_failures += 1
            self._count("repro_server_reload_failures_total")
            return protocol.encode_response(
                request.request_id,
                protocol.STATUS_SERVER_ERROR,
                generation=self.handle.generation,
                text=f"reload failed: {type(error).__name__}: {error}",
                version=request.version,
            )
        self.stats.reloads += 1
        return protocol.encode_response(
            request.request_id, generation=generation, version=request.version
        )

    async def _execute_update(self, request: protocol.Request) -> bytes:
        if self.apply_updates is None:
            return protocol.encode_response(
                request.request_id,
                protocol.STATUS_UNSUPPORTED,
                generation=self.handle.generation,
                text="server has no writable update engine "
                     "(start with --journal to accept updates)",
                version=request.version,
            )
        if self._stopping:
            return protocol.encode_response(
                request.request_id,
                protocol.STATUS_SHUTTING_DOWN,
                generation=self.handle.generation,
                text="server shutting down",
                version=request.version,
            )
        if self._update_lock is None:
            self._update_lock = asyncio.Lock()
        started = time.perf_counter()
        # One update batch at a time: the journal and the update engine
        # are single-writer; lookups keep flowing concurrently because
        # the apply runs in a thread and publishes via the RCU handle.
        async with self._update_lock:
            report = await asyncio.to_thread(
                self.apply_updates, request.updates
            )
        self.stats.updates_applied += int(report.get("applied", 0))
        self.stats.updates_rejected += int(report.get("rejected", 0))
        self._count("repro_server_updates_total", kind="applied")
        self._observe_update_latency(started)
        # Durability policy (``serve --min-insync N``): the batch is
        # journaled and applied locally by now; hold the client's ack
        # until the configured replica quorum has acked the seqno.
        seqno = int(report.get("seqno", 0))
        if self.quorum is not None and seqno:
            outcome = await self.quorum.wait(seqno)
            if outcome == "timeout":
                self.stats.shed_quorum += 1
                self._count_shed("quorum")
                return protocol.encode_response(
                    request.request_id,
                    protocol.STATUS_QUORUM_TIMEOUT,
                    generation=self.handle.generation,
                    text=json.dumps({**report, "quorum": "timeout"}),
                    version=request.version,
                )
            if outcome == "degraded":
                report["quorum"] = "degraded"
        return protocol.encode_response(
            request.request_id,
            generation=self.handle.generation,
            text=json.dumps(report),
            version=request.version,
        )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: bytes,
    ) -> None:
        fate = faults.connection_fault()
        if fate is not None:
            await self._destroy_response(writer, write_lock, payload, fate)
            return
        try:
            async with write_lock:
                protocol.write_frame(writer, payload)
                await writer.drain()
            self.stats.responses += 1
            self._count(
                "repro_server_responses_total", status=payload[1]
            )
        except (ConnectionError, OSError):
            pass  # client went away; nothing to tell it

    async def _destroy_response(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: bytes,
        fate: Tuple[str, int],
    ) -> None:
        """Chaos path: an armed FaultPlan killed this response.

        ``("drop", _)`` closes the connection before any byte of the
        response; ``("torn", n)`` writes only the first ``n`` bytes of
        the frame and then closes — the client sees a connection lost
        mid-frame, exactly as if the server died mid-send.
        """
        action, nbytes = fate
        try:
            async with write_lock:
                if action == "torn":
                    frame = protocol.frame_bytes(payload)
                    writer.write(frame[: min(nbytes, len(frame) - 1)])
                    await writer.drain()
                    self.stats.torn_responses += 1
                else:
                    self.stats.dropped_responses += 1
                writer.close()
        except (ConnectionError, OSError):
            pass

    # -- the coalescing dispatcher -------------------------------------------

    async def _dispatch_loop(self) -> None:
        window = self.config.max_wait_us / 1e6
        while True:
            if not self._pending:
                self._wakeup.clear()
                await self._wakeup.wait()
            # The coalescing window: give concurrent requests one tick to
            # pile in behind the first arrival, unless a full batch is
            # already waiting.
            if window > 0 and self._pending_keys < self.config.max_batch:
                await asyncio.sleep(window)
            batch = []
            nkeys = 0
            now = time.perf_counter()
            while self._pending and nkeys < self.config.max_batch:
                item = self._pending.popleft()
                self._pending_keys -= len(item.keys)
                if item.deadline is not None and now > item.deadline:
                    # The client's budget expired while this request sat
                    # in the queue: shed it instead of doing dead work.
                    if not item.future.done():
                        item.future.set_exception(_DeadlineExceeded())
                    self.stats.shed_deadline += 1
                    self._count_shed("deadline")
                    continue
                batch.append(item)
                nkeys += len(item.keys)
            if batch:
                # A structure that fans work out to its own worker
                # processes (``offload_batches``, e.g. the shared-memory
                # WorkerPool view) blocks on IPC, not the GIL — run it in
                # a thread so the event loop keeps accepting requests.
                if getattr(
                    self.handle.structure, "offload_batches", False
                ):
                    await self._run_batch_offloaded(batch, nkeys)
                else:
                    self._run_batch(batch, nkeys)
            self._gauge_inflight(len(self._pending))

    def _compute_batch(self, batch):
        """One coalesced lookup: a single ``lookup_batch`` on a pinned
        table.  Returns ``(results, generation)``; may raise."""
        with self.handle.read() as version:
            keys = (
                batch[0].keys
                if len(batch) == 1
                else np.concatenate([item.keys for item in batch])
            )
            return version.structure.lookup_batch(keys), version.generation

    def _fan_out(self, batch, nkeys: int, results, generation: int) -> None:
        """Slice one coalesced result back out to the request futures."""
        offset = 0
        for item in batch:
            end = offset + len(item.keys)
            if not item.future.done():
                item.future.set_result((results[offset:end], generation))
            offset = end
        self.stats.batches += 1
        self.stats.batched_requests += len(batch)
        self.stats.batched_keys += nkeys
        self.stats.max_coalesced = max(self.stats.max_coalesced, len(batch))
        self._observe_batch(len(batch), nkeys)

    def _fail_batch(self, batch, error: Exception) -> None:
        for item in batch:
            if not item.future.done():
                item.future.set_exception(error)

    def _run_batch(self, batch, nkeys: int) -> None:
        try:
            results, generation = self._compute_batch(batch)
        except Exception as error:  # engine failure — fail the requests
            self._fail_batch(batch, error)
            return
        self._fan_out(batch, nkeys, results, generation)

    async def _run_batch_offloaded(self, batch, nkeys: int) -> None:
        """The ``offload_batches`` path: compute in a thread, then set the
        futures from the event-loop thread (asyncio futures are not
        thread-safe, so the fan-out must not move off-loop)."""
        try:
            results, generation = await asyncio.to_thread(
                self._compute_batch, batch
            )
        except Exception as error:
            self._fail_batch(batch, error)
            return
        self._fan_out(batch, nkeys, results, generation)

    # -- observability -------------------------------------------------------

    def describe(self) -> dict:
        """Server + handle stats as one JSON-ready dict (OP_STATS body)."""
        structure = self.handle.structure
        return {
            "structure": getattr(structure, "name", type(structure).__name__),
            "width": getattr(structure, "width", 32),
            "config": {
                "max_batch": self.config.max_batch,
                "max_wait_us": self.config.max_wait_us,
                "max_pending_requests": self.config.max_pending_requests,
                "max_pending_keys": self.config.max_pending_keys,
            },
            "handle": self.handle.stats(),
            "requests": self.stats.requests,
            "responses": self.stats.responses,
            "errors": self.stats.errors,
            "batches": self.stats.batches,
            "batched_requests": self.stats.batched_requests,
            "batched_keys": self.stats.batched_keys,
            "max_coalesced": self.stats.max_coalesced,
            "mean_coalesced": (
                self.stats.batched_requests / self.stats.batches
                if self.stats.batches
                else 0.0
            ),
            "connections": self.stats.connections,
            "reloads": self.stats.reloads,
            "reload_failures": self.stats.reload_failures,
            "updates_applied": self.stats.updates_applied,
            "updates_rejected": self.stats.updates_rejected,
            "shed_overload": self.stats.shed_overload,
            "shed_deadline": self.stats.shed_deadline,
            "shed_quorum": self.stats.shed_quorum,
            "quorum": (
                self.quorum.describe() if self.quorum is not None else None
            ),
        } | (self.stats_extra() if self.stats_extra is not None else {})

    def _count_shed(self, reason: str) -> None:
        from repro import obs

        obs.registry().counter(
            "repro_server_shed_total",
            "Lookup requests shed by overload control, by reason.",
            reason=reason,
        ).inc()

    def _count(self, name: str, **labels) -> None:
        from repro import obs

        obs.registry().counter(
            name, "Lookup-service request/response count.",
            **{k: str(v) for k, v in labels.items()},
        ).inc()

    def _gauge_inflight(self, value: int) -> None:
        from repro import obs

        obs.registry().gauge(
            "repro_server_inflight_requests",
            "Lookup requests queued for the next coalesced batch.",
            table=self.handle.name,
        ).set(value)

    def _observe_batch(self, requests: int, nkeys: int) -> None:
        from repro import obs

        reg = obs.registry()
        reg.histogram(
            "repro_server_coalesced_requests",
            "Requests gathered into one coalesced lookup_batch call.",
            buckets=obs.OCCUPANCY_BUCKETS,
            table=self.handle.name,
        ).observe(requests)
        reg.histogram(
            "repro_server_coalesced_keys",
            "Keys resolved per coalesced lookup_batch call.",
            buckets=obs.OCCUPANCY_BUCKETS,
            table=self.handle.name,
        ).observe(nkeys)

    def _observe_latency(self, start: float) -> None:
        from repro import obs

        elapsed_us = (time.perf_counter() - start) * 1e6
        obs.registry().histogram(
            "repro_server_request_latency_us",
            "Server-side request latency (decode to response encode).",
            buckets=obs.LATENCY_US_BUCKETS,
            table=self.handle.name,
        ).observe(elapsed_us)

    def _observe_update_latency(self, start: float) -> None:
        """One OP_UPDATE batch finished its local apply: record the
        end-to-end server-side latency (queue for the single-writer
        lock + journal append/fsync + engine apply + RCU publish) under
        ``stage="total"``; the serve closure records the per-stage
        breakdown under the same histogram name."""
        from repro import obs

        elapsed_us = (time.perf_counter() - start) * 1e6
        obs.registry().histogram(
            "repro_update_latency_us",
            "Route-update batch latency by pipeline stage.",
            buckets=obs.LATENCY_US_BUCKETS,
            table=self.handle.name,
            stage="total",
        ).observe(elapsed_us)
