"""RCU-style table publication: many readers, one hot swap, no failures.

The paper's Section 4.4 observation — Poptrie's read-only contiguous
arrays let any number of readers share one copy while a writer prepares
the next — is exactly the read-copy-update discipline.
:class:`TableHandle` packages it:

- The handle holds the **current version**: a lookup structure plus a
  monotonically increasing *generation* number.
- Readers pin a version for the duration of one batch
  (``with handle.read() as version: version.structure.lookup_batch(...)``).
  Pinning is one epoch-counter increment; readers never block and never
  observe a half-published table.
- A writer publishes a replacement with :meth:`swap` (or
  :meth:`swap_async` from an event loop): the current reference moves to
  the new version with one assignment, then the writer *drains* the old
  version — waits for its epoch count to fall to zero — before treating
  the old table as dead.  In-flight batches therefore always finish on
  the table they started on; no reader ever fails or retries because of
  an update.

This is what lets the transactional control plane
(:mod:`repro.robust.txn`) service route updates under live traffic: the
transaction commits (or rolls back) on its own structure, and the result
is swapped in atomically behind the handle.

The implementation is thread-safe (a lock guards the version pointer and
epoch counts; the counters are touched for nanoseconds), so the handle
also works when readers live on worker threads rather than one event
loop.
"""

from __future__ import annotations

import asyncio
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional


class TableVersion:
    """One published table: structure + generation + reader epoch count."""

    __slots__ = ("structure", "generation", "readers", "retired", "_drained")

    def __init__(self, structure, generation: int) -> None:
        self.structure = structure
        self.generation = generation
        self.readers = 0
        self.retired = False
        self._drained = threading.Event()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "retired" if self.retired else "current"
        return (
            f"<TableVersion gen={self.generation} readers={self.readers} "
            f"{state}>"
        )


class TableHandle:
    """An atomic reference to the currently served lookup structure.

    >>> from repro.net.prefix import Prefix
    >>> from repro.net.rib import Rib
    >>> from repro.core.poptrie import Poptrie
    >>> rib = Rib(); _ = rib.insert(Prefix.parse("10.0.0.0/8"), 1)
    >>> handle = TableHandle(Poptrie.from_rib(rib))
    >>> with handle.read() as version:
    ...     version.structure.lookup(Prefix.parse("10.1.2.3/32").value)
    1
    >>> _ = rib.insert(Prefix.parse("10.64.0.0/10"), 2)
    >>> handle.swap(Poptrie.from_rib(rib))
    1
    >>> handle.generation
    1
    """

    def __init__(self, structure, generation: int = 0, name: str = "") -> None:
        self._lock = threading.Lock()
        self._current = TableVersion(structure, generation)
        self.name = name or getattr(structure, "name", "table")
        self.swaps = 0
        self._seqno: Optional[int] = None
        #: Epoch-drain accounting: how long retired versions took to shed
        #: their last reader.  ``last_drain_s`` is the most recent swap's
        #: drain; the total divided by ``swaps`` is the mean RCU
        #: reclamation delay the churn harness reports.
        self.drain_seconds_total = 0.0
        self.last_drain_s = 0.0

    # -- reader side --------------------------------------------------------

    @property
    def structure(self):
        """The current structure (unpinned peek; prefer :meth:`read`)."""
        return self._current.structure

    @property
    def generation(self) -> int:
        """The current version's generation number."""
        return self._current.generation

    @contextmanager
    def read(self) -> Iterator[TableVersion]:
        """Pin the current version for one batch of lookups.

        The yielded :class:`TableVersion` stays valid (and its table
        alive) until the block exits, even if a swap happens meanwhile —
        the swap's drain simply waits for this reader.
        """
        version = self._pin()
        try:
            yield version
        finally:
            self._unpin(version)

    def _pin(self) -> TableVersion:
        with self._lock:
            version = self._current
            version.readers += 1
            return version

    def _unpin(self, version: TableVersion) -> None:
        with self._lock:
            version.readers -= 1
            if version.retired and version.readers == 0:
                version._drained.set()

    # -- writer side --------------------------------------------------------

    def _publish(self, structure) -> TableVersion:
        """Atomically install ``structure``; returns the retired version."""
        with self._lock:
            old = self._current
            self._current = TableVersion(structure, old.generation + 1)
            old.retired = True
            if old.readers == 0:
                old._drained.set()
            self.swaps += 1
        self._publish_obs()
        return old

    def swap(
        self, structure, wait: bool = True, timeout: Optional[float] = None
    ) -> int:
        """Publish ``structure`` as the new current table.

        With ``wait=True`` (the default) the call returns only once the
        previous version has drained — no reader is still using it — so
        the caller may free or reuse the old table.  Returns the new
        generation number.  Raises ``TimeoutError`` if the drain exceeds
        ``timeout`` seconds (the swap itself is already visible then).
        """
        old = self._publish(structure)
        if wait:
            started = time.perf_counter()
            if not old._drained.wait(timeout):
                raise TimeoutError(
                    f"old table generation {old.generation} still has "
                    f"{old.readers} readers after {timeout}s"
                )
            self._record_drain(time.perf_counter() - started)
        return self._current.generation

    async def swap_async(
        self, structure, timeout: Optional[float] = None
    ) -> int:
        """Like :meth:`swap` but drains without blocking the event loop."""
        old = self._publish(structure)
        if old._drained.is_set():
            self._record_drain(0.0)
        else:
            started = time.perf_counter()
            drained = await asyncio.to_thread(old._drained.wait, timeout)
            if not drained:
                raise TimeoutError(
                    f"old table generation {old.generation} still has "
                    f"{old.readers} readers after {timeout}s"
                )
            self._record_drain(time.perf_counter() - started)
        return self._current.generation

    # -- introspection ------------------------------------------------------

    def set_seqno(self, seqno: int) -> None:
        """Record the journal watermark the served table reflects.

        Purely informational: the replication plane stamps the applied
        sequence number here after each apply/swap so ``stats()`` (and
        the OP_STATS wire body built from it) reports how far the served
        table has caught up.  Handles outside a cluster never set it and
        never report it.
        """
        self._seqno = seqno

    @property
    def seqno(self) -> Optional[int]:
        """The stamped journal watermark, or ``None`` (never stamped)."""
        return self._seqno

    def readers(self) -> int:
        """Readers currently pinning the current version."""
        with self._lock:
            return self._current.readers

    def stats(self) -> dict:
        """A snapshot of the handle's state (generation, swaps, readers)."""
        with self._lock:
            out = {
                "table": self.name,
                "generation": self._current.generation,
                "swaps": self.swaps,
                "readers": self._current.readers,
            }
            if self._seqno is not None:
                out["applied_seqno"] = self._seqno
            out["drain_seconds_total"] = self.drain_seconds_total
            out["last_drain_s"] = self.last_drain_s
            return out

    def _record_drain(self, seconds: float) -> None:
        """Account one completed epoch drain (waited swaps only —
        ``swap(wait=False)`` never learns when its old version died)."""
        self.drain_seconds_total += seconds
        self.last_drain_s = seconds
        from repro import obs

        if obs.enabled():
            obs.registry().histogram(
                "repro_server_drain_seconds",
                "Seconds a retired table version took to shed its last "
                "reader after a swap.",
                buckets=obs.SECONDS_BUCKETS,
                table=self.name,
            ).observe(seconds)

    def _publish_obs(self) -> None:
        """Mirror a completed swap into the metrics registry (no-op when
        observability is disabled)."""
        from repro import obs

        reg = obs.registry()
        reg.counter(
            "repro_server_swaps_total",
            "Hot table swaps published through a TableHandle.",
            table=self.name,
        ).inc()
        reg.gauge(
            "repro_server_table_generation",
            "Generation number of the currently served table.",
            table=self.name,
        ).set(self._current.generation)
