"""The lookup service's length-prefixed binary wire protocol.

One TCP connection carries a stream of *frames* in both directions; a
frame is a 4-byte big-endian payload length followed by the payload.
Requests and responses are matched by a caller-chosen 32-bit
``request_id``, so a client may pipeline any number of requests on one
connection — that pipelining is what feeds the server's request
coalescer (see :mod:`repro.server.service`).

Request payload layout (big-endian throughout)::

    u8  version   (1 or 2)
    u8  opcode    (OP_*)
    u16 count     (number of keys; 0 for PING/STATS/RELOAD)
    u32 request_id
    u32 deadline_us  (version >= 2 only; 0 = no deadline)
    keys:  OP_LOOKUP4 -> count * u32 addresses
           OP_LOOKUP6 -> count * (u64 hi, u64 lo) address halves
           OP_UPDATE  -> count * 24-byte route-update payloads (the
                         journal record payload format of
                         :func:`repro.robust.journal.encode_update`)

Response payload layout (identical in versions 1 and 2)::

    u8  version   (echoes the request's version)
    u8  status    (STATUS_*)
    u16 count     (number of results)
    u32 request_id
    u64 generation  (the served table's RCU generation)
    count * u32 FIB indices
    trailing bytes: UTF-8 text (error message, or the STATS JSON body)

Version 2 adds the request ``deadline_us`` field: the client's latency
budget for this request, measured from server receipt.  The server sheds
a request whose budget expires while it queues
(:data:`STATUS_DEADLINE_EXCEEDED`) instead of serving a uselessly late
answer, and refuses admission outright under overload
(:data:`STATUS_OVERLOAD`).  The bump is backward compatible both ways: a
version-1 request is decoded with no deadline (never deadline-shed), and
every response echoes the request's version, so a version-1 client talks
to a version-2 server without change.

The IPv6 ``(hi, lo)`` split mirrors the batch-lookup key contract
(:func:`repro.lookup.base.normalize_batch_keys`): IPv4 keys travel as
machine words, 128-bit keys as two words.

All functions raise :class:`~repro.errors.ProtocolError` on malformed
input; nothing here touches a socket except the two asyncio frame
helpers at the bottom.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ProtocolError

PROTOCOL_VERSION = 2

#: Protocol versions this module can decode (see the version-2 notes in
#: the module docstring; version 1 lacks the request deadline field).
SUPPORTED_VERSIONS = frozenset({1, 2})

#: Hard ceiling on one frame's payload; a longer length prefix is treated
#: as a protocol violation, not an allocation request.
MAX_FRAME_BYTES = 1 << 20

#: Keys per lookup request (the u16 count field could carry 65535; the
#: service enforces this tighter bound so one request cannot monopolise a
#: coalesced batch).
MAX_KEYS_PER_REQUEST = 8192

OP_LOOKUP4 = 1   #: batch of IPv4 keys -> batch of FIB indices
OP_LOOKUP6 = 2   #: batch of IPv6 keys -> batch of FIB indices
OP_PING = 3      #: liveness probe; echoes the current table generation
OP_STATS = 4     #: server stats snapshot as a JSON text body
OP_RELOAD = 5    #: recompile from the server's RIB and hot-swap it in
OP_UPDATE = 6    #: batch of route updates -> journal, apply, hot-swap

OPCODES = frozenset(
    {OP_LOOKUP4, OP_LOOKUP6, OP_PING, OP_STATS, OP_RELOAD, OP_UPDATE}
)

STATUS_OK = 0
STATUS_BAD_REQUEST = 1    #: malformed or oversized request
STATUS_WRONG_FAMILY = 2   #: lookup family does not match the served table
STATUS_UNSUPPORTED = 3    #: opcode valid but not available (e.g. no RIB)
STATUS_SERVER_ERROR = 4   #: the lookup engine raised
STATUS_SHUTTING_DOWN = 5  #: request arrived while the server was stopping
STATUS_OVERLOAD = 6       #: admission refused: dispatcher queue is full
STATUS_DEADLINE_EXCEEDED = 7  #: deadline expired while the request queued
#: An OP_UPDATE batch was journaled locally but the configured replica
#: quorum (``serve --min-insync N``) did not acknowledge it in time.
STATUS_QUORUM_TIMEOUT = 8

#: Statuses a client may transparently retry (after backoff).  For
#: lookup statuses the request was never served, so retrying cannot
#: double-apply anything; STATUS_QUORUM_TIMEOUT means the update *is*
#: durable locally but under-replicated — route updates are idempotent
#: (re-announcing a route is a no-op state change, re-withdrawing a gone
#: route is skipped), so resending until the quorum acks is safe.
RETRYABLE_STATUSES = frozenset(
    {
        STATUS_OVERLOAD,
        STATUS_DEADLINE_EXCEEDED,
        STATUS_SHUTTING_DOWN,
        STATUS_QUORUM_TIMEOUT,
    }
)

_LEN = struct.Struct("!I")
_REQ_HEADER = struct.Struct("!BBHI")
_REQ_DEADLINE = struct.Struct("!I")
_RESP_HEADER = struct.Struct("!BBHIQ")
_V6_KEY = struct.Struct("!QQ")

_U64_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class Request:
    """One decoded request frame."""

    opcode: int
    request_id: int
    #: Normalized keys, ready for ``lookup_batch``: a uint64 array for
    #: OP_LOOKUP4, an object array of Python ints for OP_LOOKUP6.
    keys: np.ndarray = field(default_factory=lambda: np.empty(0, np.uint64))
    #: Latency budget in microseconds from server receipt; 0 = none.
    #: Always 0 for version-1 requests, which have no deadline field.
    deadline_us: int = 0
    #: The protocol version the client spoke; responses echo it.
    version: int = PROTOCOL_VERSION
    #: Decoded route updates (OP_UPDATE only; empty otherwise).
    updates: Tuple = ()


@dataclass(frozen=True)
class Response:
    """One decoded response frame."""

    status: int
    request_id: int
    generation: int
    results: np.ndarray
    text: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def encode_request(
    opcode: int,
    request_id: int,
    keys: Sequence[int] = (),
    *,
    deadline_us: int = 0,
    version: int = PROTOCOL_VERSION,
    updates: Sequence = (),
) -> bytes:
    """Encode one request payload (without the length prefix).

    ``version=1`` emits the legacy header without the deadline field (and
    therefore rejects a nonzero ``deadline_us``) — used by the
    backward-compatibility tests to impersonate an old client.
    ``updates`` (``OP_UPDATE`` only) is a sequence of
    :class:`repro.data.updates.Update`.
    """
    if opcode not in OPCODES:
        raise ProtocolError(f"unknown opcode {opcode}")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"cannot encode protocol version {version}")
    if not 0 <= deadline_us <= 0xFFFFFFFF:
        raise ProtocolError(f"deadline {deadline_us}us outside the u32 field")
    if version < 2 and deadline_us:
        raise ProtocolError("version-1 requests cannot carry a deadline")
    if updates and opcode != OP_UPDATE:
        raise ProtocolError(f"opcode {opcode} takes no updates")
    count = len(updates) if opcode == OP_UPDATE else len(keys)
    if count > 0xFFFF:
        raise ProtocolError(f"{count} keys exceed the u16 count field")
    header = _REQ_HEADER.pack(version, opcode, count, request_id & 0xFFFFFFFF)
    if version >= 2:
        header += _REQ_DEADLINE.pack(deadline_us)
    if opcode == OP_LOOKUP4:
        body = np.asarray(keys, dtype=">u4").tobytes()
    elif opcode == OP_LOOKUP6:
        body = b"".join(
            _V6_KEY.pack((int(k) >> 64) & _U64_MASK, int(k) & _U64_MASK)
            for k in keys
        )
    elif opcode == OP_UPDATE:
        from repro.robust.journal import encode_update

        if len(keys):
            raise ProtocolError("OP_UPDATE takes updates, not keys")
        try:
            body = b"".join(encode_update(update) for update in updates)
        except (AttributeError, ValueError) as error:
            raise ProtocolError(f"unencodable update: {error}") from None
    else:
        if count:
            raise ProtocolError(f"opcode {opcode} takes no keys")
        body = b""
    return header + body


def decode_request(payload: bytes) -> Request:
    """Decode one request payload into a :class:`Request`."""
    if len(payload) < _REQ_HEADER.size:
        raise ProtocolError(f"request header truncated ({len(payload)} bytes)")
    version, opcode, count, request_id = _REQ_HEADER.unpack_from(payload)
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"protocol version {version} not supported")
    if opcode not in OPCODES:
        raise ProtocolError(f"unknown opcode {opcode}")
    deadline_us = 0
    offset = _REQ_HEADER.size
    if version >= 2:
        if len(payload) < offset + _REQ_DEADLINE.size:
            raise ProtocolError("request deadline field truncated")
        (deadline_us,) = _REQ_DEADLINE.unpack_from(payload, offset)
        offset += _REQ_DEADLINE.size
    body = payload[offset:]
    if opcode == OP_LOOKUP4:
        expected = 4 * count
        if len(body) != expected:
            raise ProtocolError(
                f"IPv4 key block is {len(body)} bytes, expected {expected}"
            )
        keys = np.frombuffer(body, dtype=">u4").astype(np.uint64)
    elif opcode == OP_LOOKUP6:
        expected = 16 * count
        if len(body) != expected:
            raise ProtocolError(
                f"IPv6 key block is {len(body)} bytes, expected {expected}"
            )
        keys = np.empty(count, dtype=object)
        for i in range(count):
            hi, lo = _V6_KEY.unpack_from(body, 16 * i)
            keys[i] = (hi << 64) | lo
    elif opcode == OP_UPDATE:
        from repro.errors import JournalCorrupt
        from repro.robust.journal import decode_update

        size = 24  # fixed payload size of the journal record format
        expected = size * count
        if len(body) != expected:
            raise ProtocolError(
                f"update block is {len(body)} bytes, expected {expected}"
            )
        try:
            updates = tuple(
                decode_update(body[offset:offset + size])
                for offset in range(0, expected, size)
            )
        except JournalCorrupt as error:
            raise ProtocolError(f"bad update payload: {error}") from None
        return Request(
            opcode=opcode,
            request_id=request_id,
            deadline_us=deadline_us,
            version=version,
            updates=updates,
        )
    else:
        if body or count:
            raise ProtocolError(f"opcode {opcode} takes no keys")
        keys = np.empty(0, dtype=np.uint64)
    return Request(
        opcode=opcode,
        request_id=request_id,
        keys=keys,
        deadline_us=deadline_us,
        version=version,
    )


def encode_response(
    request_id: int,
    status: int = STATUS_OK,
    generation: int = 0,
    results: Sequence[int] = (),
    text: str = "",
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Encode one response payload (without the length prefix).

    ``version`` echoes the request's version so old clients see the
    version they spoke (the response layout itself is version-invariant).
    """
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"cannot encode protocol version {version}")
    count = len(results)
    if count > 0xFFFF:
        raise ProtocolError(f"{count} results exceed the u16 count field")
    header = _RESP_HEADER.pack(
        version,
        status,
        count,
        request_id & 0xFFFFFFFF,
        generation & 0xFFFFFFFFFFFFFFFF,
    )
    body = np.asarray(results, dtype=">u4").tobytes() if count else b""
    return header + body + text.encode("utf-8")


def decode_response(payload: bytes) -> Response:
    """Decode one response payload into a :class:`Response`."""
    if len(payload) < _RESP_HEADER.size:
        raise ProtocolError(
            f"response header truncated ({len(payload)} bytes)"
        )
    version, status, count, request_id, generation = _RESP_HEADER.unpack_from(
        payload
    )
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"protocol version {version} not supported")
    body = payload[_RESP_HEADER.size:]
    expected = 4 * count
    if len(body) < expected:
        raise ProtocolError(
            f"result block is {len(body)} bytes, expected at least {expected}"
        )
    results = np.frombuffer(body[:expected], dtype=">u4").astype(np.uint32)
    try:
        text = body[expected:].decode("utf-8")
    except UnicodeDecodeError as error:
        raise ProtocolError(f"response text is not UTF-8: {error}") from None
    return Response(
        status=status,
        request_id=request_id,
        generation=generation,
        results=results,
        text=text,
    )


# -- asyncio frame transport ---------------------------------------------------


def frame_bytes(payload: bytes) -> bytes:
    """The on-wire bytes of one frame: length prefix plus payload."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _LEN.pack(len(payload)) + payload


def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Queue one length-prefixed frame on ``writer`` (caller drains)."""
    writer.write(frame_bytes(payload))


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> Optional[bytes]:
    """Read one frame; ``None`` on clean EOF between frames.

    EOF in the middle of a frame — or a length prefix exceeding
    ``max_frame`` — raises :class:`~repro.errors.ProtocolError`.
    """
    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid length prefix") from None
    (length,) = _LEN.unpack(prefix)
    if length == 0 or length > max_frame:
        raise ProtocolError(f"frame length {length} outside 1..{max_frame}")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed mid frame ({len(error.partial)}/{length} bytes)"
        ) from None


def family_opcode(width: int) -> int:
    """The lookup opcode for an address family (32 -> v4, 128 -> v6)."""
    if width == 32:
        return OP_LOOKUP4
    if width == 128:
        return OP_LOOKUP6
    raise ProtocolError(f"no lookup opcode for width-{width} addresses")


def opcode_width(opcode: int) -> Tuple[int, ...]:
    """The address widths a lookup opcode can serve."""
    if opcode == OP_LOOKUP4:
        return (32,)
    if opcode == OP_LOOKUP6:
        return (128,)
    return ()
