"""The route-lookup service: serve any registered algorithm over TCP.

This package ties the library's read-side ingredients — numpy batch
engines, publication-safe updates, metrics — into a running service:

- :mod:`repro.server.protocol` — the length-prefixed binary wire
  protocol (pipelined requests, batched keys, status codes).
- :mod:`repro.server.handle` — :class:`TableHandle`, the RCU-style
  atomic reference readers pin per batch and writers hot-swap with
  epoch-drained publication; route updates never fail a reader.
- :mod:`repro.server.service` — :class:`LookupServer`, the asyncio
  server that coalesces concurrent in-flight requests into one
  ``lookup_batch`` call per event-loop tick (the paper's Section 2
  batching/latency trade-off as a knob: ``max_batch``/``max_wait_us``).
- :mod:`repro.server.loadgen` — :class:`LoadGenerator`, an open-loop
  async client with Poisson/uniform arrival schedules and latency
  percentiles.

Quick start (see docs/SERVER.md for the protocol and knobs)::

    python -m repro generate --routes 20000 -o rib.txt
    python -m repro serve --table rib.txt --algorithm Poptrie18 --port 9000
    python -m repro loadgen --port 9000 --duration 2 --rate 2000

or in-process::

    from repro.server import LookupServer, TableHandle, LoadGenerator

    handle = TableHandle(structure)
    server = LookupServer(handle)
    host, port = await server.start()
    ...
    await handle.swap_async(new_structure)   # hot swap under load
"""

from repro.server import protocol
from repro.server.handle import TableHandle, TableVersion
from repro.server.loadgen import LoadGenConfig, LoadGenerator, LoadReport
from repro.server.service import LookupServer, ServerConfig, ServerStats

__all__ = [
    "LookupServer",
    "ServerConfig",
    "ServerStats",
    "TableHandle",
    "TableVersion",
    "LoadGenerator",
    "LoadGenConfig",
    "LoadReport",
    "protocol",
]
