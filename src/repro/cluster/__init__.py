"""``repro.cluster`` — a replicated, sharded lookup cluster.

Three layers, each usable on its own:

- **WAL shipping** (:mod:`repro.cluster.replication`): a primary node
  streams its checkpoint plus journal tail — seqno-watermarked and
  CRC-chained — to any number of read replicas over a dedicated
  replication channel; replicas ack their durable watermark back, which
  feeds the quorum write path (:class:`QuorumConfig` /
  :class:`QuorumGate`, ``serve --min-insync N``).
- **Replica nodes** (:mod:`repro.cluster.replica`): each replica
  re-journals the shipped records locally, applies them through the
  transactional update engine, and publishes through the same RCU
  :class:`~repro.server.handle.TableHandle` the lookup server reads —
  so every replica is promotion-ready at all times.
- **Client-side routing** (:mod:`repro.cluster.router` +
  :mod:`repro.cluster.shard`): a contiguous prefix-range shard map
  (skew-aware splits at route-count quantiles), a router that
  partitions key batches, fails over down each shard's replica set
  under a retry budget, and reassembles results in input order — and a
  :class:`FailoverMonitor` daemon (``python -m repro monitor``) that
  probes the primary and drives :func:`elect_and_promote` on sustained
  loss.

See ``docs/CLUSTER.md`` for the replication protocol, the durability
modes, the failover state machine, and the shard-map file format.
"""

# Everything is exposed lazily (PEP 562, matching ``repro`` itself):
# importing repro.cluster must not pay for — or depend on — the journal,
# server, and router stacks until a name is actually used.
_LAZY = {
    "Replica": "repro.cluster.replica",
    "QuorumConfig": "repro.cluster.replication",
    "QuorumGate": "repro.cluster.replication",
    "ReplicationPublisher": "repro.cluster.replication",
    "query_info": "repro.cluster.replication",
    "request_promote": "repro.cluster.replication",
    "request_retarget": "repro.cluster.replication",
    "ClusterRouter": "repro.cluster.router",
    "FailoverMonitor": "repro.cluster.router",
    "RouterConfig": "repro.cluster.router",
    "elect_and_promote": "repro.cluster.router",
    "Shard": "repro.cluster.shard",
    "ShardMap": "repro.cluster.shard",
    "build_shard_map": "repro.cluster.shard",
    "naive_shard_map": "repro.cluster.shard",
    "shard_balance": "repro.cluster.shard",
    "shard_rib": "repro.cluster.shard",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "ClusterRouter",
    "FailoverMonitor",
    "QuorumConfig",
    "QuorumGate",
    "Replica",
    "ReplicationPublisher",
    "RouterConfig",
    "Shard",
    "ShardMap",
    "build_shard_map",
    "elect_and_promote",
    "naive_shard_map",
    "query_info",
    "request_promote",
    "request_retarget",
    "shard_balance",
    "shard_rib",
]
