"""``repro.cluster`` — a replicated, sharded lookup cluster.

Three layers, each usable on its own:

- **WAL shipping** (:mod:`repro.cluster.replication`): a primary node
  streams its checkpoint plus journal tail — seqno-watermarked and
  CRC-chained — to any number of read replicas over a dedicated
  replication channel.
- **Replica nodes** (:mod:`repro.cluster.replica`): each replica
  re-journals the shipped records locally, applies them through the
  transactional update engine, and publishes through the same RCU
  :class:`~repro.server.handle.TableHandle` the lookup server reads —
  so every replica is promotion-ready at all times.
- **Client-side routing** (:mod:`repro.cluster.router` +
  :mod:`repro.cluster.shard`): a contiguous prefix-range shard map
  (skew-aware splits at route-count quantiles) and a router that
  partitions key batches, fails over down each shard's replica set
  under a retry budget, and reassembles results in input order.

See ``docs/CLUSTER.md`` for the replication protocol, the failover
state machine, and the shard-map file format.
"""

from repro.cluster.replica import Replica
from repro.cluster.replication import (
    ReplicationPublisher,
    query_info,
    request_promote,
    request_retarget,
)
from repro.cluster.router import (
    ClusterRouter,
    FailoverMonitor,
    RouterConfig,
    elect_and_promote,
)
from repro.cluster.shard import (
    Shard,
    ShardMap,
    build_shard_map,
    naive_shard_map,
    shard_balance,
    shard_rib,
)

__all__ = [
    "ClusterRouter",
    "FailoverMonitor",
    "Replica",
    "ReplicationPublisher",
    "RouterConfig",
    "Shard",
    "ShardMap",
    "build_shard_map",
    "elect_and_promote",
    "naive_shard_map",
    "query_info",
    "request_promote",
    "request_retarget",
    "shard_balance",
    "shard_rib",
]
