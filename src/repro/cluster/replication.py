"""The WAL-shipping replication channel: frames, publisher, client helpers.

One TCP connection carries length-prefixed frames (the same 4-byte
big-endian framing as the lookup protocol, :mod:`repro.server.protocol`);
the first payload byte is the frame type.  A connection is either a
**subscription** (the client's first frame is HELLO and the server then
streams state at it) or a **control session** (QUERY / PROMOTE /
RETARGET requests, each answered with an INFO frame).

Subscription stream (all integers big-endian)::

    client -> HELLO      u64 from_seqno   (SYNC_FROM_SCRATCH forces a
                                           checkpoint first)
    server -> CHECKPOINT u64 seqno | u32 crc32(image) | rib image bytes
    server -> RECORD     u64 seqno | u32 chain | 24-byte update payload
    server -> HEARTBEAT  u64 watermark    (primary's applied seqno)

The subscriber names the highest sequence number it has durably applied;
the publisher replies with either the journal tail from there (records
``from_seqno+1, from_seqno+2, ...`` — gapless by construction of the
journal) or, when that tail has been truncated by a checkpoint, a full
CHECKPOINT frame followed by the records after it.

Two integrity layers protect the stream beyond TCP's own checksums:

- every RECORD payload is the journal's own 24-byte update encoding
  (:func:`repro.robust.journal.encode_update`), so a replica decodes
  with the same code path recovery uses, and
- a **session chain CRC**: the CHECKPOINT frame seeds the chain with
  ``crc32(image)``, and each RECORD carries
  ``chain_n = crc32(payload_n, chain_{n-1})``.  A replica that computes
  a different chain knows it diverged from the primary's byte stream —
  not just that one frame was damaged — and must re-sync from a
  checkpoint instead of applying further updates.

:class:`ReplicationPublisher` is journal-directory-driven: it tails the
primary's WAL directory with :class:`~repro.robust.journal.JournalTailer`
per subscriber, so the primary's write path needs no replication hooks
at all — appending to the journal *is* publishing to the cluster.
"""

from __future__ import annotations

import asyncio
import json
import struct
import zlib
from typing import Callable, Optional, Tuple

from repro.data import tableio
from repro.errors import ClusterError, JournalGap
from repro.robust.journal import JournalTailer, _scan as _journal_scan
from repro.server import protocol

FRAME_HELLO = 1
FRAME_CHECKPOINT = 2
FRAME_RECORD = 3
FRAME_HEARTBEAT = 4
FRAME_QUERY = 5
FRAME_INFO = 6
FRAME_PROMOTE = 7
FRAME_RETARGET = 8

#: HELLO from_seqno sentinel: "I have nothing; start with a checkpoint."
SYNC_FROM_SCRATCH = (1 << 64) - 1

#: Replication frames may carry a full table checkpoint, so the frame
#: bound is far larger than the lookup protocol's.
REPL_MAX_FRAME = 1 << 28

_TYPE = struct.Struct("!B")
_U64 = struct.Struct("!Q")
_CHECKPOINT_HEAD = struct.Struct("!BQI")     # type, seqno, crc32(image)
_RECORD_HEAD = struct.Struct("!BQI")         # type, seqno, chain crc
_RETARGET_HEAD = struct.Struct("!BH")        # type, port

_UPDATE_BYTES = 24  # fixed payload size of the journal record format


def chain_crc(payload: bytes, chain: int) -> int:
    """The session chain: ``crc32`` of this payload seeded by the chain."""
    return zlib.crc32(payload, chain)


# -- frame encoding ------------------------------------------------------------


def encode_hello(from_seqno: int) -> bytes:
    return _TYPE.pack(FRAME_HELLO) + _U64.pack(from_seqno)


def encode_checkpoint(seqno: int, image: bytes) -> bytes:
    return _CHECKPOINT_HEAD.pack(
        FRAME_CHECKPOINT, seqno, zlib.crc32(image)
    ) + image


def encode_record(seqno: int, chain: int, payload: bytes) -> bytes:
    if len(payload) != _UPDATE_BYTES:
        raise ClusterError(
            f"record payload is {len(payload)} bytes, not {_UPDATE_BYTES}"
        )
    return _RECORD_HEAD.pack(FRAME_RECORD, seqno, chain) + payload


def encode_heartbeat(watermark: int) -> bytes:
    return _TYPE.pack(FRAME_HEARTBEAT) + _U64.pack(watermark)


def encode_query() -> bytes:
    return _TYPE.pack(FRAME_QUERY)


def encode_info(info: dict) -> bytes:
    return _TYPE.pack(FRAME_INFO) + json.dumps(info).encode("utf-8")


def encode_promote(min_seqno: int) -> bytes:
    return _TYPE.pack(FRAME_PROMOTE) + _U64.pack(min_seqno)


def encode_retarget(host: str, port: int) -> bytes:
    if not 0 < port < (1 << 16):
        raise ClusterError(f"bad retarget port {port}")
    return _RETARGET_HEAD.pack(FRAME_RETARGET, port) + host.encode("utf-8")


def decode_frame(payload: bytes) -> Tuple[int, tuple]:
    """``(frame_type, operands)`` of one replication frame."""
    if not payload:
        raise ClusterError("empty replication frame")
    kind = payload[0]
    body = payload[1:]
    try:
        if kind in (FRAME_HELLO, FRAME_HEARTBEAT, FRAME_PROMOTE):
            (seqno,) = _U64.unpack(body)
            return kind, (seqno,)
        if kind == FRAME_CHECKPOINT:
            _, seqno, crc = _CHECKPOINT_HEAD.unpack_from(payload)
            image = payload[_CHECKPOINT_HEAD.size:]
            if zlib.crc32(image) != crc:
                raise ClusterError(
                    f"checkpoint frame for seqno {seqno} fails its CRC"
                )
            return kind, (seqno, image)
        if kind == FRAME_RECORD:
            _, seqno, chain = _RECORD_HEAD.unpack_from(payload)
            record = payload[_RECORD_HEAD.size:]
            if len(record) != _UPDATE_BYTES:
                raise ClusterError(
                    f"record frame for seqno {seqno} carries "
                    f"{len(record)} payload bytes, not {_UPDATE_BYTES}"
                )
            return kind, (seqno, chain, record)
        if kind == FRAME_QUERY:
            if body:
                raise ClusterError("QUERY frame carries a body")
            return kind, ()
        if kind == FRAME_INFO:
            return kind, (json.loads(body.decode("utf-8")),)
        if kind == FRAME_RETARGET:
            _, port = _RETARGET_HEAD.unpack_from(payload)
            return kind, (payload[_RETARGET_HEAD.size:].decode("utf-8"), port)
    except struct.error:
        raise ClusterError(
            f"truncated replication frame (type {kind}, {len(payload)} bytes)"
        ) from None
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ClusterError(f"malformed replication frame: {error}") from None
    raise ClusterError(f"unknown replication frame type {kind}")


# -- the publisher -------------------------------------------------------------


def _newest_checkpoint(directory: str) -> Tuple[int, Optional[str]]:
    checkpoints, _ = _journal_scan(directory)
    if not checkpoints:
        return 0, None
    return checkpoints[-1]


def _checkpoint_image(directory: str) -> Tuple[int, bytes]:
    """The newest checkpoint as ``(seqno, rib image bytes)``.

    Re-encoded through :func:`tableio.rib_to_image` so legacy text
    checkpoints ship in the same binary form as native ones.
    """
    seqno, path = _newest_checkpoint(directory)
    if path is None:
        raise ClusterError(f"no checkpoint to ship in {directory!r}")
    rib = tableio.load_table(path)
    return seqno, tableio.rib_to_image(rib).to_bytes()


class ReplicationPublisher:
    """Stream a journal directory's checkpoint + tail to subscribers.

    Runs next to any journal writer (the primary's server process, or a
    replica's — replicas publish too, which is what makes promotion a
    retarget rather than a rebuild).  ``owner`` handles control frames:
    an object with ``info()``, ``promote(min_seqno)`` and
    ``retarget(host, port)`` methods, each returning a JSON-ready dict.
    ``watermark`` reports the writer's applied sequence number for
    heartbeats (defaults to the shipped position).
    """

    def __init__(
        self,
        directory: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        owner=None,
        watermark: Optional[Callable[[], int]] = None,
        heartbeat_s: float = 0.2,
        poll_s: float = 0.02,
        batch: int = 512,
    ) -> None:
        self.directory = directory
        self.host = host
        self.port = port
        self.owner = owner
        self.watermark = watermark
        self.heartbeat_s = heartbeat_s
        self.poll_s = poll_s
        self.batch = batch
        self.subscribers = 0
        self.records_shipped = 0
        self.checkpoints_shipped = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: set = set()

    async def start(self) -> Tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("publisher already started")
        self._server = await asyncio.start_server(
            self._serve, self.host, self.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.port = port
        return host, port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        try:
            payload = await protocol.read_frame(reader, REPL_MAX_FRAME)
            if payload is None:
                return
            kind, operands = decode_frame(payload)
            if kind == FRAME_HELLO:
                self.subscribers += 1
                try:
                    await self._stream(writer, operands[0])
                finally:
                    self.subscribers -= 1
            else:
                await self._control(reader, writer, kind, operands)
        except (ConnectionError, OSError, ClusterError, asyncio.CancelledError):
            pass
        finally:
            self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _control(self, reader, writer, kind, operands) -> None:
        """Answer QUERY/PROMOTE/RETARGET frames until the client hangs up."""
        while True:
            if kind == FRAME_QUERY:
                info = self.owner.info() if self.owner else self.describe()
            elif kind == FRAME_PROMOTE:
                info = (
                    self.owner.promote(operands[0])
                    if self.owner
                    else {"error": "no promotable owner"}
                )
            elif kind == FRAME_RETARGET:
                info = (
                    self.owner.retarget(*operands)
                    if self.owner
                    else {"error": "no retargetable owner"}
                )
            else:
                raise ClusterError(
                    f"frame type {kind} is not a control request"
                )
            writer.write(protocol.frame_bytes(encode_info(info)))
            await writer.drain()
            payload = await protocol.read_frame(reader, REPL_MAX_FRAME)
            if payload is None:
                return
            kind, operands = decode_frame(payload)

    async def _send_checkpoint(self, writer) -> Tuple[int, int]:
        """Ship the newest checkpoint; returns ``(seqno, new chain)``."""
        seqno, image = await asyncio.to_thread(
            _checkpoint_image, self.directory
        )
        writer.write(protocol.frame_bytes(encode_checkpoint(seqno, image)))
        await writer.drain()
        self.checkpoints_shipped += 1
        return seqno, zlib.crc32(image)

    async def _stream(self, writer, from_seqno: int) -> None:
        """One subscriber: sync, then follow the journal tail forever."""
        from repro.robust.journal import encode_update

        chain = 0
        if from_seqno == SYNC_FROM_SCRATCH:
            _, checkpoint_path = _newest_checkpoint(self.directory)
            if checkpoint_path is not None:
                position, chain = await self._send_checkpoint(writer)
            else:
                position = 0  # empty journal: stream from the beginning
        else:
            position = from_seqno
        tailer = JournalTailer(self.directory, after_seqno=position)
        loop = asyncio.get_running_loop()
        last_beat = loop.time()
        while True:
            try:
                records = await asyncio.to_thread(tailer.poll, self.batch)
            except JournalGap:
                # The tail this subscriber needs was truncated by a
                # checkpoint: re-sync it from that checkpoint.
                position, chain = await self._send_checkpoint(writer)
                tailer = JournalTailer(self.directory, after_seqno=position)
                continue
            if records:
                for seqno, update in records:
                    payload = encode_update(update)
                    chain = chain_crc(payload, chain)
                    writer.write(
                        protocol.frame_bytes(
                            encode_record(seqno, chain, payload)
                        )
                    )
                    position = seqno
                await writer.drain()
                self.records_shipped += len(records)
            else:
                await asyncio.sleep(self.poll_s)
            now = loop.time()
            if now - last_beat >= self.heartbeat_s:
                mark = (
                    self.watermark() if self.watermark is not None else position
                )
                writer.write(protocol.frame_bytes(encode_heartbeat(mark)))
                await writer.drain()
                last_beat = now

    def describe(self) -> dict:
        checkpoint_seqno, _ = _newest_checkpoint(self.directory)
        return {
            "role": "publisher",
            "directory": self.directory,
            "subscribers": self.subscribers,
            "records_shipped": self.records_shipped,
            "checkpoints_shipped": self.checkpoints_shipped,
            "checkpoint_seqno": checkpoint_seqno,
        }


# -- client helpers ------------------------------------------------------------


async def subscribe(
    host: str, port: int, from_seqno: int
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a subscription; the caller reads frames with
    :func:`repro.server.protocol.read_frame` (``REPL_MAX_FRAME``)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(protocol.frame_bytes(encode_hello(from_seqno)))
    await writer.drain()
    return reader, writer


async def _control_request(
    host: str, port: int, payload: bytes, timeout: float
) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(protocol.frame_bytes(payload))
        await writer.drain()
        frame = await asyncio.wait_for(
            protocol.read_frame(reader, REPL_MAX_FRAME), timeout
        )
        if frame is None:
            raise ClusterError(f"{host}:{port} closed without answering")
        kind, operands = decode_frame(frame)
        if kind != FRAME_INFO:
            raise ClusterError(f"expected INFO, got frame type {kind}")
        return operands[0]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def query_info(host: str, port: int, timeout: float = 5.0) -> dict:
    """One QUERY round-trip: the node's role/seqno/lag description."""
    return await _control_request(host, port, encode_query(), timeout)


async def request_promote(
    host: str, port: int, min_seqno: int, timeout: float = 30.0
) -> dict:
    """Ask a replica to become primary if it has applied ``min_seqno``."""
    return await _control_request(
        host, port, encode_promote(min_seqno), timeout
    )


async def request_retarget(
    host: str, port: int, new_host: str, new_port: int, timeout: float = 30.0
) -> dict:
    """Point a replica's follow loop at a different publisher."""
    return await _control_request(
        host, port, encode_retarget(new_host, new_port), timeout
    )


__all__ = [
    "FRAME_CHECKPOINT",
    "FRAME_HEARTBEAT",
    "FRAME_HELLO",
    "FRAME_INFO",
    "FRAME_PROMOTE",
    "FRAME_QUERY",
    "FRAME_RECORD",
    "FRAME_RETARGET",
    "REPL_MAX_FRAME",
    "SYNC_FROM_SCRATCH",
    "ReplicationPublisher",
    "chain_crc",
    "decode_frame",
    "encode_checkpoint",
    "encode_heartbeat",
    "encode_hello",
    "encode_info",
    "encode_promote",
    "encode_query",
    "encode_record",
    "encode_retarget",
    "query_info",
    "request_promote",
    "request_retarget",
    "subscribe",
]
