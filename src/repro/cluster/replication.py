"""The WAL-shipping replication channel: frames, publisher, client helpers.

One TCP connection carries length-prefixed frames (the same 4-byte
big-endian framing as the lookup protocol, :mod:`repro.server.protocol`);
the first payload byte is the frame type.  A connection is either a
**subscription** (the client's first frame is HELLO and the server then
streams state at it) or a **control session** (QUERY / PROMOTE /
RETARGET requests, each answered with an INFO frame).

Subscription stream (all integers big-endian)::

    client -> HELLO      u64 from_seqno   (SYNC_FROM_SCRATCH forces a
                                           checkpoint first)
    server -> CHECKPOINT u64 seqno | u32 crc32(image) | rib image bytes
    server -> RECORD     u64 seqno | u32 chain | 24-byte update payload
    server -> HEARTBEAT  u64 watermark    (primary's applied seqno)
    client -> ACK        u64 seqno        (durably applied on the
                                           subscriber; quorum input)

The subscriber names the highest sequence number it has durably applied;
the publisher replies with either the journal tail from there (records
``from_seqno+1, from_seqno+2, ...`` — gapless by construction of the
journal) or, when that tail has been truncated by a checkpoint, a full
CHECKPOINT frame followed by the records after it.

ACK frames flow back on the same subscription connection: a subscriber
sends one after each durable flush of its own journal, naming the
highest seqno that flush made durable.  The publisher tracks the acked
watermark per subscriber, which is what :meth:`ReplicationPublisher.
wait_quorum` — and through it the ``serve --min-insync N`` bounded-loss
write path (:class:`QuorumGate`) — waits on.  Subscribers that never
ack (or publishers that ignore acks) interoperate unchanged: the
watermark simply never advances.

Two integrity layers protect the stream beyond TCP's own checksums:

- every RECORD payload is the journal's own 24-byte update encoding
  (:func:`repro.robust.journal.encode_update`), so a replica decodes
  with the same code path recovery uses, and
- a **session chain CRC**: the CHECKPOINT frame seeds the chain with
  ``crc32(image)``, and each RECORD carries
  ``chain_n = crc32(payload_n, chain_{n-1})``.  A replica that computes
  a different chain knows it diverged from the primary's byte stream —
  not just that one frame was damaged — and must re-sync from a
  checkpoint instead of applying further updates.

:class:`ReplicationPublisher` is journal-directory-driven: it tails the
primary's WAL directory with :class:`~repro.robust.journal.JournalTailer`
per subscriber, so the primary's write path needs no replication hooks
at all — appending to the journal *is* publishing to the cluster.
"""

from __future__ import annotations

import asyncio
import json
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.data import tableio
from repro.errors import ClusterError, JournalGap
from repro.robust.journal import JournalTailer, _scan as _journal_scan
from repro.server import protocol

FRAME_HELLO = 1
FRAME_CHECKPOINT = 2
FRAME_RECORD = 3
FRAME_HEARTBEAT = 4
FRAME_QUERY = 5
FRAME_INFO = 6
FRAME_PROMOTE = 7
FRAME_RETARGET = 8
FRAME_ACK = 9

#: HELLO from_seqno sentinel: "I have nothing; start with a checkpoint."
SYNC_FROM_SCRATCH = (1 << 64) - 1

#: Replication frames may carry a full table checkpoint, so the frame
#: bound is far larger than the lookup protocol's.
REPL_MAX_FRAME = 1 << 28

_TYPE = struct.Struct("!B")
_U64 = struct.Struct("!Q")
_CHECKPOINT_HEAD = struct.Struct("!BQI")     # type, seqno, crc32(image)
_RECORD_HEAD = struct.Struct("!BQI")         # type, seqno, chain crc
_RETARGET_HEAD = struct.Struct("!BH")        # type, port

_UPDATE_BYTES = 24  # fixed payload size of the journal record format


def chain_crc(payload: bytes, chain: int) -> int:
    """The session chain: ``crc32`` of this payload seeded by the chain."""
    return zlib.crc32(payload, chain)


# -- frame encoding ------------------------------------------------------------


def encode_hello(from_seqno: int) -> bytes:
    return _TYPE.pack(FRAME_HELLO) + _U64.pack(from_seqno)


def encode_checkpoint(seqno: int, image: bytes) -> bytes:
    return _CHECKPOINT_HEAD.pack(
        FRAME_CHECKPOINT, seqno, zlib.crc32(image)
    ) + image


def encode_record(seqno: int, chain: int, payload: bytes) -> bytes:
    if len(payload) != _UPDATE_BYTES:
        raise ClusterError(
            f"record payload is {len(payload)} bytes, not {_UPDATE_BYTES}"
        )
    return _RECORD_HEAD.pack(FRAME_RECORD, seqno, chain) + payload


def encode_heartbeat(watermark: int) -> bytes:
    return _TYPE.pack(FRAME_HEARTBEAT) + _U64.pack(watermark)


def encode_ack(seqno: int) -> bytes:
    return _TYPE.pack(FRAME_ACK) + _U64.pack(seqno)


def encode_query() -> bytes:
    return _TYPE.pack(FRAME_QUERY)


def encode_info(info: dict) -> bytes:
    return _TYPE.pack(FRAME_INFO) + json.dumps(info).encode("utf-8")


def encode_promote(min_seqno: int) -> bytes:
    return _TYPE.pack(FRAME_PROMOTE) + _U64.pack(min_seqno)


def encode_retarget(host: str, port: int) -> bytes:
    if not 0 < port < (1 << 16):
        raise ClusterError(f"bad retarget port {port}")
    return _RETARGET_HEAD.pack(FRAME_RETARGET, port) + host.encode("utf-8")


def decode_frame(
    payload: bytes, max_frame: int = REPL_MAX_FRAME
) -> Tuple[int, tuple]:
    """``(frame_type, operands)`` of one replication frame.

    Every malformation is a typed :class:`~repro.errors.ClusterError`:
    empty and truncated frames, frames longer than ``max_frame``,
    payload-size mismatches, CRC failures, and unknown frame types —
    nothing escapes as a raw ``struct.error`` or decode exception.
    """
    if not payload:
        raise ClusterError("empty replication frame")
    if len(payload) > max_frame:
        raise ClusterError(
            f"oversized replication frame ({len(payload)} bytes "
            f"> {max_frame})"
        )
    kind = payload[0]
    body = payload[1:]
    try:
        if kind in (FRAME_HELLO, FRAME_HEARTBEAT, FRAME_PROMOTE, FRAME_ACK):
            (seqno,) = _U64.unpack(body)
            return kind, (seqno,)
        if kind == FRAME_CHECKPOINT:
            _, seqno, crc = _CHECKPOINT_HEAD.unpack_from(payload)
            image = payload[_CHECKPOINT_HEAD.size:]
            if zlib.crc32(image) != crc:
                raise ClusterError(
                    f"checkpoint frame for seqno {seqno} fails its CRC"
                )
            return kind, (seqno, image)
        if kind == FRAME_RECORD:
            _, seqno, chain = _RECORD_HEAD.unpack_from(payload)
            record = payload[_RECORD_HEAD.size:]
            if len(record) != _UPDATE_BYTES:
                raise ClusterError(
                    f"record frame for seqno {seqno} carries "
                    f"{len(record)} payload bytes, not {_UPDATE_BYTES}"
                )
            return kind, (seqno, chain, record)
        if kind == FRAME_QUERY:
            if body:
                raise ClusterError("QUERY frame carries a body")
            return kind, ()
        if kind == FRAME_INFO:
            return kind, (json.loads(body.decode("utf-8")),)
        if kind == FRAME_RETARGET:
            _, port = _RETARGET_HEAD.unpack_from(payload)
            return kind, (payload[_RETARGET_HEAD.size:].decode("utf-8"), port)
    except struct.error:
        raise ClusterError(
            f"truncated replication frame (type {kind}, {len(payload)} bytes)"
        ) from None
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ClusterError(f"malformed replication frame: {error}") from None
    raise ClusterError(f"unknown replication frame type {kind}")


# -- the publisher -------------------------------------------------------------


def _newest_checkpoint(directory: str) -> Tuple[int, Optional[str]]:
    checkpoints, _ = _journal_scan(directory)
    if not checkpoints:
        return 0, None
    return checkpoints[-1]


def _checkpoint_image(directory: str) -> Tuple[int, bytes]:
    """The newest checkpoint as ``(seqno, rib image bytes)``.

    Re-encoded through :func:`tableio.rib_to_image` so legacy text
    checkpoints ship in the same binary form as native ones.
    """
    seqno, path = _newest_checkpoint(directory)
    if path is None:
        raise ClusterError(f"no checkpoint to ship in {directory!r}")
    rib = tableio.load_table(path)
    return seqno, tableio.rib_to_image(rib).to_bytes()


class _Subscription:
    """One live subscriber's quorum bookkeeping."""

    __slots__ = ("peer", "acked")

    def __init__(self, peer: str) -> None:
        self.peer = peer
        #: Highest seqno this subscriber reported durably applied; -1
        #: until the first ACK, so a mute (pre-ACK) subscriber never
        #: counts toward a quorum — not even for seqno 0.
        self.acked = -1


class ReplicationPublisher:
    """Stream a journal directory's checkpoint + tail to subscribers.

    Runs next to any journal writer (the primary's server process, or a
    replica's — replicas publish too, which is what makes promotion a
    retarget rather than a rebuild).  ``owner`` handles control frames:
    an object with ``info()``, ``promote(min_seqno)`` and
    ``retarget(host, port)`` methods, each returning a JSON-ready dict.
    ``watermark`` reports the writer's applied sequence number for
    heartbeats (defaults to the shipped position).

    Each subscription also *reads*: ACK frames coming back name the
    highest seqno the subscriber has made durable, tracked per
    subscriber and exposed through :meth:`insync_count` /
    :meth:`acked_watermarks`.  :meth:`wait_quorum` blocks until at
    least ``min_insync`` subscribers have acked a seqno (or the timeout
    passes) — the primitive under the bounded-loss write path.
    """

    def __init__(
        self,
        directory: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        owner=None,
        watermark: Optional[Callable[[], int]] = None,
        heartbeat_s: float = 0.2,
        poll_s: float = 0.02,
        batch: int = 512,
    ) -> None:
        self.directory = directory
        self.host = host
        self.port = port
        self.owner = owner
        self.watermark = watermark
        self.heartbeat_s = heartbeat_s
        self.poll_s = poll_s
        self.batch = batch
        self.subscribers = 0
        self.records_shipped = 0
        self.acks_received = 0
        self.checkpoints_shipped = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: set = set()
        self._subscriptions: Dict[object, _Subscription] = {}
        self._ack_event: Optional[asyncio.Event] = None

    async def start(self) -> Tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("publisher already started")
        self._server = await asyncio.start_server(
            self._serve, self.host, self.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.port = port
        return host, port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        try:
            payload = await protocol.read_frame(reader, REPL_MAX_FRAME)
            if payload is None:
                return
            kind, operands = decode_frame(payload)
            if kind == FRAME_HELLO:
                peername = writer.get_extra_info("peername")
                peer = (
                    f"{peername[0]}:{peername[1]}"
                    if isinstance(peername, tuple) and len(peername) >= 2
                    else f"subscriber-{id(writer):x}"
                )
                subscription = _Subscription(peer)
                self._subscriptions[writer] = subscription
                self.subscribers += 1
                try:
                    await self._stream(reader, writer, operands[0], subscription)
                finally:
                    self.subscribers -= 1
                    self._subscriptions.pop(writer, None)
            else:
                await self._control(reader, writer, kind, operands)
        except (ConnectionError, OSError, ClusterError, asyncio.CancelledError):
            pass
        finally:
            self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _control(self, reader, writer, kind, operands) -> None:
        """Answer QUERY/PROMOTE/RETARGET frames until the client hangs up."""
        while True:
            if kind == FRAME_QUERY:
                info = self.owner.info() if self.owner else self.describe()
            elif kind == FRAME_PROMOTE:
                info = (
                    self.owner.promote(operands[0])
                    if self.owner
                    else {"error": "no promotable owner"}
                )
            elif kind == FRAME_RETARGET:
                info = (
                    self.owner.retarget(*operands)
                    if self.owner
                    else {"error": "no retargetable owner"}
                )
            else:
                raise ClusterError(
                    f"frame type {kind} is not a control request"
                )
            writer.write(protocol.frame_bytes(encode_info(info)))
            await writer.drain()
            payload = await protocol.read_frame(reader, REPL_MAX_FRAME)
            if payload is None:
                return
            kind, operands = decode_frame(payload)

    async def _send_checkpoint(self, writer) -> Tuple[int, int]:
        """Ship the newest checkpoint; returns ``(seqno, new chain)``."""
        seqno, image = await asyncio.to_thread(
            _checkpoint_image, self.directory
        )
        writer.write(protocol.frame_bytes(encode_checkpoint(seqno, image)))
        await writer.drain()
        self.checkpoints_shipped += 1
        return seqno, zlib.crc32(image)

    async def _stream(
        self,
        reader,
        writer,
        from_seqno: int,
        subscription: _Subscription,
    ) -> None:
        """One subscriber: sync, then follow the journal tail forever.

        A companion task drains the subscriber's ACK frames off
        ``reader`` and advances its acked watermark; after every
        shipped record batch a HEARTBEAT follows immediately, because
        subscribers flush their journal (and ack) on heartbeats — that
        prompt flush is what keeps quorum-gated write latency at about
        one round trip instead of one ``heartbeat_s``.
        """
        ack_task = asyncio.create_task(
            self._drain_acks(reader, subscription)
        )
        try:
            await self._ship(writer, from_seqno)
        finally:
            ack_task.cancel()
            try:
                await ack_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _drain_acks(
        self, reader, subscription: _Subscription
    ) -> None:
        """Advance one subscriber's acked watermark from its ACK frames.

        Anything other than an ACK coming upstream ends the drain (the
        watermark then simply stops advancing, which is also how
        pre-ACK subscribers interoperate).
        """
        from repro import obs

        while True:
            payload = await protocol.read_frame(reader, REPL_MAX_FRAME)
            if payload is None:
                return
            try:
                kind, operands = decode_frame(payload)
            except ClusterError:
                return
            if kind != FRAME_ACK:
                return
            if operands[0] > subscription.acked:
                subscription.acked = operands[0]
            self.acks_received += 1
            mark = (
                self.watermark()
                if self.watermark is not None
                else subscription.acked
            )
            obs.registry().gauge(
                "repro_cluster_replication_lag",
                "Publisher watermark minus the subscriber's acked seqno.",
                peer=subscription.peer,
            ).set(float(max(0, mark - subscription.acked)))
            if self._ack_event is not None:
                self._ack_event.set()

    async def _ship(self, writer, from_seqno: int) -> None:
        from repro.robust.journal import encode_update

        chain = 0
        if from_seqno == SYNC_FROM_SCRATCH:
            _, checkpoint_path = _newest_checkpoint(self.directory)
            if checkpoint_path is not None:
                position, chain = await self._send_checkpoint(writer)
            else:
                position = 0  # empty journal: stream from the beginning
        else:
            position = from_seqno
        tailer = JournalTailer(self.directory, after_seqno=position)
        loop = asyncio.get_running_loop()
        last_beat = loop.time()
        while True:
            try:
                records = await asyncio.to_thread(tailer.poll, self.batch)
            except JournalGap:
                # The tail this subscriber needs was truncated by a
                # checkpoint: re-sync it from that checkpoint.
                position, chain = await self._send_checkpoint(writer)
                tailer = JournalTailer(self.directory, after_seqno=position)
                continue
            if records:
                for seqno, update in records:
                    payload = encode_update(update)
                    chain = chain_crc(payload, chain)
                    writer.write(
                        protocol.frame_bytes(
                            encode_record(seqno, chain, payload)
                        )
                    )
                    position = seqno
                await writer.drain()
                self.records_shipped += len(records)
                # Force the next heartbeat out immediately (see
                # ``_stream``): subscribers flush-and-ack on beats.
                last_beat = -self.heartbeat_s
            else:
                await asyncio.sleep(self.poll_s)
            now = loop.time()
            if now - last_beat >= self.heartbeat_s:
                mark = (
                    self.watermark() if self.watermark is not None else position
                )
                writer.write(protocol.frame_bytes(encode_heartbeat(mark)))
                await writer.drain()
                last_beat = now

    # -- quorum state ------------------------------------------------------

    def insync_count(self, seqno: int) -> int:
        """How many live subscribers have acked ``seqno`` or beyond."""
        return sum(
            1 for sub in self._subscriptions.values() if sub.acked >= seqno
        )

    def acked_watermarks(self) -> Dict[str, int]:
        """``{peer: highest acked seqno}`` per live subscription.

        ``-1`` marks a subscriber that has not acked anything yet.
        """
        return {
            sub.peer: sub.acked for sub in self._subscriptions.values()
        }

    async def wait_quorum(
        self, seqno: int, min_insync: int, timeout: float
    ) -> bool:
        """Block until ``min_insync`` subscribers have acked ``seqno``.

        Returns ``True`` when the quorum forms within ``timeout``
        seconds and ``False`` otherwise.  ``min_insync <= 0`` is
        trivially satisfied — that is plain asynchronous replication.
        """
        if min_insync <= 0 or self.insync_count(seqno) >= min_insync:
            return True
        if self._ack_event is None:
            self._ack_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            self._ack_event.clear()
            if self.insync_count(seqno) >= min_insync:
                return True
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            try:
                await asyncio.wait_for(self._ack_event.wait(), remaining)
            except asyncio.TimeoutError:
                return self.insync_count(seqno) >= min_insync

    def describe(self) -> dict:
        checkpoint_seqno, _ = _newest_checkpoint(self.directory)
        return {
            "role": "publisher",
            "directory": self.directory,
            "subscribers": self.subscribers,
            "records_shipped": self.records_shipped,
            "acks_received": self.acks_received,
            "acked": self.acked_watermarks(),
            "checkpoints_shipped": self.checkpoints_shipped,
            "checkpoint_seqno": checkpoint_seqno,
        }


# -- the quorum gate -----------------------------------------------------------


@dataclass(frozen=True)
class QuorumConfig:
    """Durability policy for the replicated write path.

    ``min_insync`` subscribers must ack each applied batch's final
    seqno before the client sees success; ``on_timeout`` picks the
    degraded behaviour when they have not within ``timeout_s``:

    - ``"shed"`` — fail the write with the retryable
      ``STATUS_QUORUM_TIMEOUT``.  The batch *is* applied and journaled
      locally; route updates are idempotent, so the client's retry is
      safe whichever way the race went.
    - ``"degrade"`` — acknowledge the write anyway (asynchronous
      replication) while the ``repro_cluster_degraded`` gauge is up,
      until a quorum is observed again.

    ``min_insync=0`` disables the gate entirely.
    """

    min_insync: int = 1
    timeout_s: float = 1.0
    on_timeout: str = "shed"

    def __post_init__(self) -> None:
        if self.min_insync < 0:
            raise ClusterError(
                f"min_insync must be >= 0, got {self.min_insync}"
            )
        if self.timeout_s <= 0:
            raise ClusterError(
                f"quorum timeout must be positive, got {self.timeout_s}"
            )
        if self.on_timeout not in ("shed", "degrade"):
            raise ClusterError(
                f"on_timeout must be 'shed' or 'degrade', "
                f"got {self.on_timeout!r}"
            )


class QuorumGate:
    """Apply a :class:`QuorumConfig` against a publisher's acked state.

    ``await wait(seqno)`` returns one of:

    - ``"ok"`` — the quorum acked in time (this also exits degraded
      mode when the ``degrade`` policy had entered it);
    - ``"timeout"`` — the quorum missed the deadline and the policy is
      ``shed``: the caller should fail the write retryably;
    - ``"degraded"`` — the quorum is missing and the policy is
      ``degrade``: the caller proceeds asynchronously.  Degraded mode
      never blocks the write path again; each write probes the acked
      state non-blockingly so the gate recovers (and the
      ``repro_cluster_degraded`` gauge drops) as soon as a quorum
      reappears.
    """

    def __init__(
        self, publisher: ReplicationPublisher, config: QuorumConfig
    ) -> None:
        self.publisher = publisher
        self.config = config
        self.degraded = False
        self.waits = 0
        self.timeouts = 0
        #: Seqno of the previous gated write — the degraded-mode
        #: recovery probe.  The *current* write's seqno can never be
        #: acked at probe time, but a quorum that has caught up will
        #: have acked the previous one.
        self._probe_seqno = 0

    def _set_degraded(self, value: bool) -> None:
        from repro import obs

        if value == self.degraded:
            return
        self.degraded = value
        registry = obs.registry()
        registry.gauge(
            "repro_cluster_degraded",
            "1 while the quorum write path is degraded to async.",
        ).set(1.0 if value else 0.0)
        registry.counter(
            "repro_cluster_degraded_transitions_total",
            "Entries into and exits from quorum-degraded mode.",
            direction="enter" if value else "exit",
        ).inc()

    async def wait(self, seqno: int) -> str:
        from repro import obs
        from repro.obs.metrics import LATENCY_US_BUCKETS

        config = self.config
        if config.min_insync <= 0:
            return "ok"
        self.waits += 1
        started = time.perf_counter()
        if (
            self.degraded
            and self.publisher.insync_count(self._probe_seqno)
            < config.min_insync
        ):
            # Still degraded: never block the write path again until
            # the non-blocking probe sees the quorum back in sync.
            met = False
        else:
            met = await self.publisher.wait_quorum(
                seqno, config.min_insync, config.timeout_s
            )
        self._probe_seqno = seqno
        obs.registry().histogram(
            "repro_cluster_quorum_wait_us",
            "Time OP_UPDATE spent waiting for the replica quorum.",
            buckets=LATENCY_US_BUCKETS,
        ).observe((time.perf_counter() - started) * 1e6)
        if met:
            self._set_degraded(False)
            return "ok"
        self.timeouts += 1
        if config.on_timeout == "degrade":
            self._set_degraded(True)
            return "degraded"
        return "timeout"

    def describe(self) -> dict:
        return {
            "min_insync": self.config.min_insync,
            "timeout_s": self.config.timeout_s,
            "on_timeout": self.config.on_timeout,
            "degraded": self.degraded,
            "waits": self.waits,
            "timeouts": self.timeouts,
        }


# -- client helpers ------------------------------------------------------------


async def subscribe(
    host: str, port: int, from_seqno: int
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a subscription; the caller reads frames with
    :func:`repro.server.protocol.read_frame` (``REPL_MAX_FRAME``)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(protocol.frame_bytes(encode_hello(from_seqno)))
    await writer.drain()
    return reader, writer


async def _control_request(
    host: str, port: int, payload: bytes, timeout: float
) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(protocol.frame_bytes(payload))
        await writer.drain()
        frame = await asyncio.wait_for(
            protocol.read_frame(reader, REPL_MAX_FRAME), timeout
        )
        if frame is None:
            raise ClusterError(f"{host}:{port} closed without answering")
        kind, operands = decode_frame(frame)
        if kind != FRAME_INFO:
            raise ClusterError(f"expected INFO, got frame type {kind}")
        return operands[0]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def query_info(host: str, port: int, timeout: float = 5.0) -> dict:
    """One QUERY round-trip: the node's role/seqno/lag description."""
    return await _control_request(host, port, encode_query(), timeout)


async def request_promote(
    host: str, port: int, min_seqno: int, timeout: float = 30.0
) -> dict:
    """Ask a replica to become primary if it has applied ``min_seqno``."""
    return await _control_request(
        host, port, encode_promote(min_seqno), timeout
    )


async def request_retarget(
    host: str, port: int, new_host: str, new_port: int, timeout: float = 30.0
) -> dict:
    """Point a replica's follow loop at a different publisher."""
    return await _control_request(
        host, port, encode_retarget(new_host, new_port), timeout
    )


__all__ = [
    "FRAME_ACK",
    "FRAME_CHECKPOINT",
    "FRAME_HEARTBEAT",
    "FRAME_HELLO",
    "FRAME_INFO",
    "FRAME_PROMOTE",
    "FRAME_QUERY",
    "FRAME_RECORD",
    "FRAME_RETARGET",
    "QuorumConfig",
    "QuorumGate",
    "REPL_MAX_FRAME",
    "SYNC_FROM_SCRATCH",
    "ReplicationPublisher",
    "chain_crc",
    "decode_frame",
    "encode_ack",
    "encode_checkpoint",
    "encode_heartbeat",
    "encode_hello",
    "encode_info",
    "encode_promote",
    "encode_query",
    "encode_record",
    "encode_retarget",
    "query_info",
    "request_promote",
    "request_retarget",
    "subscribe",
]
