"""The client-side cluster router: shard, fail over, reassemble.

:class:`ClusterRouter` is the piece that makes a shard map usable: it
splits a batch of lookup keys by shard (:class:`~repro.cluster.shard.
ShardMap`), sends each sub-batch to that shard's preferred replica over
a pooled pipelined connection, and reassembles the answers in input
order.  Failure handling is entirely client-side, mirroring how the
load generator treats a single server:

- a transport error or a retryable status marks the endpoint *down*
  (with a revival deadline) and the sub-batch is retried on the next
  endpoint of the shard's replica set;
- attempts are bounded by ``attempts_per_shard``; only when every
  endpoint of a shard is exhausted does the lookup raise
  :class:`~repro.errors.ClusterError`;
- downed endpoints revive after ``down_s`` seconds, so a recovered
  (or newly promoted) replica rejoins rotation without a restart.

The module also carries the failover coordinator used by the CLI and
the chaos tests: :func:`elect_and_promote` queries every surviving
replication endpoint for its ``applied_seqno``, promotes the most
advanced one with ``min_seqno`` set to the *maximum of the others* —
so a stale replica refuses rather than rolling history back — and
retargets the rest at the winner.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import replication
from repro.cluster.shard import ShardMap, _parse_endpoint
from repro.errors import ClusterError
from repro.server import protocol
from repro.server.loadgen import _Connection


@dataclass(frozen=True)
class RouterConfig:
    """Knobs of one :class:`ClusterRouter`."""

    #: Total send attempts per shard sub-batch (first try + failovers).
    attempts_per_shard: int = 3
    #: Per-attempt response timeout in seconds.
    request_timeout: float = 5.0
    #: Seconds a failed endpoint stays out of rotation.
    down_s: float = 1.0
    #: Deadline budget stamped on lookup requests (0 = none).
    deadline_us: int = 0
    #: Pause between failover attempts, to let a promotion land.
    retry_pause_s: float = 0.05


class ClusterRouter:
    """Route lookup batches across a sharded replica cluster.

    Used in-process (``await router.lookup_batch(keys)``) and by the
    load generator's ``router=`` mode.  Connections are opened lazily
    per endpoint and kept pipelined; the router is safe for concurrent
    ``lookup_batch`` calls on one event loop.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        config: Optional[RouterConfig] = None,
    ) -> None:
        for position, shard in enumerate(shard_map.shards):
            if not shard.endpoints:
                raise ClusterError(f"shard #{position} has no endpoints")
        self.shard_map = shard_map
        self.config = config or RouterConfig()
        self._connections: Dict[str, _Connection] = {}
        self._down_until: Dict[str, float] = {}
        self.failovers = 0
        self.endpoint_errors = 0

    # -- connection pool ------------------------------------------------------

    async def _connect(self, endpoint: str) -> _Connection:
        conn = self._connections.get(endpoint)
        if conn is None:
            conn = _Connection()
            conn.host, conn.port = _parse_endpoint(endpoint)
            self._connections[endpoint] = conn
        # Always go through ensure_open: concurrent lookups racing to
        # open the same endpoint must coordinate on its open lock, or
        # two reader tasks end up draining one stream.
        await conn.ensure_open()
        return conn

    def _mark_down(self, endpoint: str) -> None:
        self.endpoint_errors += 1
        self._down_until[endpoint] = time.monotonic() + self.config.down_s

    def _is_down(self, endpoint: str) -> bool:
        deadline = self._down_until.get(endpoint)
        if deadline is None:
            return False
        if time.monotonic() >= deadline:
            del self._down_until[endpoint]
            return False
        return True

    def _candidates(self, endpoints: Sequence[str]) -> List[str]:
        """Preference order with downed endpoints demoted (not dropped:
        when everything is down, trying is still better than failing)."""
        up = [e for e in endpoints if not self._is_down(e)]
        down = [e for e in endpoints if e not in up]
        return up + down

    # -- lookups --------------------------------------------------------------

    async def lookup_batch(self, keys: Sequence[int]) -> List[int]:
        """Resolve ``keys`` across the cluster; results in input order."""
        if not keys:
            return []
        by_shard: Dict[int, List[int]] = {}
        positions: Dict[int, List[int]] = {}
        for position, key in enumerate(keys):
            index = self.shard_map.shard_index(int(key))
            by_shard.setdefault(index, []).append(int(key))
            positions.setdefault(index, []).append(position)
        results: List[Optional[int]] = [None] * len(keys)
        shard_jobs = [
            self._lookup_shard(index, shard_keys)
            for index, shard_keys in by_shard.items()
        ]
        answers = await asyncio.gather(*shard_jobs)
        for (index, _), answer in zip(by_shard.items(), answers):
            for position, value in zip(positions[index], answer):
                results[position] = value
        return results  # type: ignore[return-value]

    async def _lookup_shard(
        self, index: int, keys: List[int]
    ) -> List[int]:
        shard = self.shard_map.shards[index]
        opcode = protocol.family_opcode(self.shard_map.width)
        config = self.config
        failures: List[str] = []
        attempt = 0
        while attempt < config.attempts_per_shard:
            for endpoint in self._candidates(shard.endpoints):
                if attempt >= config.attempts_per_shard:
                    break
                attempt += 1
                try:
                    conn = await self._connect(endpoint)
                    response = await conn.request(
                        opcode,
                        keys,
                        deadline_us=config.deadline_us,
                        timeout=config.request_timeout or None,
                    )
                except (asyncio.TimeoutError, ConnectionError, OSError) as err:
                    self._mark_down(endpoint)
                    failures.append(f"{endpoint}: {type(err).__name__}")
                    continue
                if response.ok and len(response.results) == len(keys):
                    return [int(value) for value in response.results]
                if response.status in protocol.RETRYABLE_STATUSES:
                    failures.append(f"{endpoint}: status {response.status}")
                    if response.status == protocol.STATUS_SHUTTING_DOWN:
                        self._mark_down(endpoint)
                    continue
                failures.append(f"{endpoint}: status {response.status}")
                self._mark_down(endpoint)
            if attempt < config.attempts_per_shard:
                self.failovers += 1
                await asyncio.sleep(config.retry_pause_s)
        raise ClusterError(
            f"shard #{index} unreachable after {attempt} attempts "
            f"({'; '.join(failures[-4:])})"
        )

    # -- health ---------------------------------------------------------------

    async def probe(self) -> Dict[str, Optional[int]]:
        """PING every distinct endpooint; table generation or ``None``."""
        endpoints = sorted(
            {e for shard in self.shard_map.shards for e in shard.endpoints}
        )
        out: Dict[str, Optional[int]] = {}
        for endpoint in endpoints:
            try:
                conn = await self._connect(endpoint)
                response = await conn.request(
                    protocol.OP_PING,
                    timeout=self.config.request_timeout or None,
                )
                out[endpoint] = (
                    response.generation if response.ok else None
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                out[endpoint] = None
                self._mark_down(endpoint)
        return out

    async def close(self) -> None:
        await asyncio.gather(
            *(conn.close() for conn in self._connections.values()),
            return_exceptions=True,
        )
        self._connections.clear()

    def describe(self) -> dict:
        return {
            "shards": len(self.shard_map),
            "width": self.shard_map.width,
            "failovers": self.failovers,
            "endpoint_errors": self.endpoint_errors,
            "down": sorted(
                e for e in self._down_until if self._is_down(e)
            ),
        }


# -- failover coordination -----------------------------------------------------


async def elect_and_promote(
    repl_endpoints: Sequence[str],
    timeout: float = 5.0,
) -> dict:
    """Health-checked failover: elect and promote the best survivor.

    ``repl_endpoints`` are the *replication* channel endpoints of the
    candidate replicas (not their lookup ports).  Queries each for its
    ``applied_seqno``; unreachable nodes simply drop out.  The most
    advanced survivor is promoted with ``min_seqno`` equal to the
    highest watermark seen on the *other* survivors, so a replica that
    somehow lost records refuses promotion instead of rolling the
    cluster's history back.  The remaining survivors are retargeted at
    the winner.  Returns a JSON-ready summary.

    **Tie-break rule**: among candidates sharing the maximum
    ``applied_seqno``, the lexicographically-lowest endpoint string
    wins.  The rule is deterministic so two monitors racing the same
    failover converge on the same winner — the loser's PROMOTE is then
    an idempotent no-op on an already-promoted node.
    """
    surveys: List[Tuple[str, dict]] = []
    for endpoint in repl_endpoints:
        host, port = _parse_endpoint(endpoint)
        try:
            info = await replication.query_info(host, port, timeout=timeout)
        except (ClusterError, ConnectionError, OSError, asyncio.TimeoutError):
            continue
        surveys.append((endpoint, info))
    if not surveys:
        raise ClusterError(
            f"no replica answered out of {len(list(repl_endpoints))}"
        )
    top = max(info.get("applied_seqno", 0) for _, info in surveys)
    winner_endpoint, winner_info = min(
        (
            (endpoint, info)
            for endpoint, info in surveys
            if info.get("applied_seqno", 0) == top
        ),
        key=lambda item: item[0],
    )
    others = [item for item in surveys if item[0] != winner_endpoint]
    min_seqno = max(
        (info.get("applied_seqno", 0) for _, info in others), default=0
    )
    host, port = _parse_endpoint(winner_endpoint)
    promotion = await replication.request_promote(
        host, port, min_seqno, timeout=timeout
    )
    if not promotion.get("promoted"):
        raise ClusterError(
            f"{winner_endpoint} refused promotion: "
            f"{promotion.get('reason', 'unknown')}"
        )
    retargets = {}
    for endpoint, _ in others:
        other_host, other_port = _parse_endpoint(endpoint)
        try:
            retargets[endpoint] = await replication.request_retarget(
                other_host, other_port, host, port, timeout=timeout
            )
        except (ClusterError, ConnectionError, OSError, asyncio.TimeoutError):
            retargets[endpoint] = {"retargeted": False, "reason": "unreachable"}
    return {
        "promoted": winner_endpoint,
        "promoted_seqno": winner_info.get("applied_seqno", 0),
        "min_seqno": min_seqno,
        "surveyed": len(surveys),
        "retargets": retargets,
    }


class FailoverMonitor:
    """Poll the primary's replication channel; promote on sustained loss.

    The monitor embodies the cluster's failover state machine
    (docs/CLUSTER.md): ``healthy`` while the primary answers QUERY
    probes, ``suspect`` after a miss, ``down`` only after
    ``misses_to_fail`` *consecutive* misses — one successful probe
    resets the count, so a flapping primary (probe fails, succeeds,
    fails…) oscillates ``healthy``/``suspect`` forever and is never
    promoted away from.  On ``down`` with ``promote`` set it runs
    :func:`elect_and_promote`, optionally rewrites + atomically
    republishes ``shard_map_path`` to the survivors' serve endpoints
    (promoted node first, dead primary dropped), and parks in the
    terminal ``failed_over`` state.  With ``promote`` off it is a pure
    observer: ``down`` is sticky only until the primary answers again.

    Every state change and failover action is appended to ``events``
    (JSON-ready dicts) and handed to ``on_event`` — the machine-
    readable stream ``python -m repro monitor`` prints — and counted on
    the ``repro_cluster_monitor_transitions_total{from,to}`` metric.
    ``run()`` is the daemon loop: probe every ``interval_s`` seconds
    until failed over (or forever as an observer).
    """

    def __init__(
        self,
        primary: str,
        replicas: Sequence[str],
        *,
        probe_timeout: float = 1.0,
        misses_to_fail: int = 3,
        interval_s: float = 0.5,
        promote: bool = True,
        shard_map_path: Optional[str] = None,
        on_event=None,
    ) -> None:
        self.primary = primary
        self.replicas = list(replicas)
        self.probe_timeout = probe_timeout
        self.misses_to_fail = misses_to_fail
        self.interval_s = interval_s
        self.promote = promote
        self.shard_map_path = shard_map_path
        self.on_event = on_event
        self.misses = 0
        self.state = "healthy"
        self.promotion: Optional[dict] = None
        self.events: List[dict] = []

    def _emit(self, kind: str, **fields) -> None:
        event = {"event": kind, "primary": self.primary, **fields}
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)

    def _transition(self, new: str) -> None:
        if new == self.state:
            return
        from repro import obs

        old, self.state = self.state, new
        obs.registry().counter(
            "repro_cluster_monitor_transitions_total",
            "Failover monitor state-machine transitions.",
            **{"from": old, "to": new},
        ).inc()
        self._emit(
            "transition", **{"from": old, "to": new, "misses": self.misses}
        )

    async def check_once(self) -> str:
        """One probe tick; returns the state after it."""
        if self.state == "failed_over":
            return self.state
        host, port = _parse_endpoint(self.primary)
        try:
            await replication.query_info(
                host, port, timeout=self.probe_timeout
            )
        except (ClusterError, ConnectionError, OSError, asyncio.TimeoutError):
            self.misses += 1
            self._transition(
                "suspect" if self.misses < self.misses_to_fail else "down"
            )
        else:
            self.misses = 0
            self._transition("healthy")
            return self.state
        if self.state == "down" and self.promote:
            self.promotion = await elect_and_promote(
                self.replicas, timeout=self.probe_timeout
            )
            self._emit("promoted", **self.promotion)
            await self._republish_shard_map()
            self._transition("failed_over")
        return self.state

    async def _republish_shard_map(self) -> None:
        """Point every shard at the survivors (promoted node first).

        Survivor *serve* endpoints come from the nodes' own ``info()``
        (the monitor only knows replication endpoints), which assumes
        the shared-replica-set layout ``repro shardmap`` clusters use:
        every node serves every shard.  The rewrite is atomic
        (tmp + rename), so routers re-loading the map never observe a
        torn file.
        """
        if self.shard_map_path is None or self.promotion is None:
            return
        order = [self.promotion["promoted"]] + [
            endpoint
            for endpoint, outcome in self.promotion["retargets"].items()
            if outcome.get("retargeted")
        ]
        serve_endpoints: List[str] = []
        for endpoint in order:
            host, port = _parse_endpoint(endpoint)
            try:
                info = await replication.query_info(
                    host, port, timeout=self.probe_timeout
                )
            except (
                ClusterError, ConnectionError, OSError, asyncio.TimeoutError
            ):
                continue
            serve = info.get("serve")
            if serve and serve not in serve_endpoints:
                serve_endpoints.append(serve)
        if not serve_endpoints:
            self._emit(
                "shard_map_unchanged",
                path=self.shard_map_path,
                reason="no survivor reported a serve endpoint",
            )
            return
        shard_map = ShardMap.load(self.shard_map_path)
        shard_map = shard_map.with_endpoints(
            [serve_endpoints] * len(shard_map.shards)
        )
        shard_map.save(self.shard_map_path)
        self._emit(
            "shard_map_republished",
            path=self.shard_map_path,
            endpoints=serve_endpoints,
        )

    async def run(self) -> str:
        """The daemon loop: probe until failed over; returns the state."""
        while self.state != "failed_over":
            await self.check_once()
            if self.state == "failed_over":
                break
            await asyncio.sleep(self.interval_s)
        return self.state


__all__ = [
    "ClusterRouter",
    "FailoverMonitor",
    "RouterConfig",
    "elect_and_promote",
]
