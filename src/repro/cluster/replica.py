"""A read replica: recover locally, serve lookups, follow the primary.

One :class:`Replica` is a full lookup node.  It

1. **recovers** its local journal directory (checkpoint + tail replay,
   exactly like a restarted primary),
2. **serves** lookups through its own :class:`~repro.server.service.
   LookupServer` behind an RCU :class:`~repro.server.handle.TableHandle`
   — readers never notice replication happening,
3. **follows** a primary's replication channel: every shipped record is
   verified (seqno continuity + session chain CRC), appended to the
   replica's *own* journal (so its sequence numbers stay in lockstep
   with the primary's and survive its own crashes), and applied through
   the same transactional update engine the primary uses, and
4. **publishes** its own journal in turn, so a promoted replica is
   immediately a primary other replicas can retarget to — promotion is
   a role flip, not a rebuild.

Divergence is handled by refusing to guess: a sequence gap, a chain-CRC
mismatch, an update the engine rejects that the primary accepted, or a
heartbeat showing the primary *behind* this replica all force a full
checkpoint re-sync (``SYNC_FROM_SCRATCH``) instead of serving routes
that might be wrong.

Updates are applied **on the event loop** (not a worker thread), which
serialises them with the server's coalesced lookup batches by
construction — a lookup batch never observes an update mid-splice.  The
incremental engine's per-update cost is microseconds at routing-table
churn rates, so the loop is never blocked for long.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
import zlib
from typing import Optional, Tuple

from repro.cluster import replication
from repro.data import tableio
from repro.errors import ClusterError, ReproError
from repro.parallel.image import TableImage
from repro.robust.journal import Journal, recover
from repro.robust.txn import TransactionalPoptrie
from repro.server import protocol
from repro.server.handle import TableHandle
from repro.server.service import LookupServer, ServerConfig


class Replica:
    """One cluster node: local journal + lookup server + follow loop.

    ``primary`` is the ``(host, port)`` of the primary's replication
    channel, or ``None`` to start as a primary (serving and publishing,
    following nobody).  ``checkpoint_every`` locally checkpoints after
    that many applied records (0 disables; the primary's checkpoints do
    not replicate as checkpoints — replicas compact independently).
    """

    def __init__(
        self,
        directory: str,
        *,
        primary: Optional[Tuple[str, int]] = None,
        serve_host: str = "127.0.0.1",
        serve_port: int = 0,
        repl_host: str = "127.0.0.1",
        repl_port: int = 0,
        server_config: Optional[ServerConfig] = None,
        fsync_every: int = 32,
        heartbeat_timeout: float = 2.0,
        reconnect_backoff: float = 0.05,
        checkpoint_every: int = 0,
        name: str = "replica",
        quorum: Optional[replication.QuorumConfig] = None,
    ) -> None:
        self.directory = directory
        self.primary = primary
        self.serve_host = serve_host
        self.serve_port = serve_port
        self.repl_host = repl_host
        self.repl_port = repl_port
        self.server_config = server_config
        self.fsync_every = fsync_every
        self.heartbeat_timeout = heartbeat_timeout
        self.reconnect_backoff = reconnect_backoff
        self.checkpoint_every = checkpoint_every
        self.name = name
        self.quorum = quorum

        self.role = "primary" if primary is None else "replica"
        self.txn: Optional[TransactionalPoptrie] = None
        self.journal: Optional[Journal] = None
        self.handle: Optional[TableHandle] = None
        self.server: Optional[LookupServer] = None
        self.publisher: Optional[replication.ReplicationPublisher] = None

        self.records_applied = 0
        self.records_rejected = 0
        self.resyncs = 0
        self.connects = 0
        self.acks_sent = 0
        self.primary_seqno = 0
        self.last_heartbeat: Optional[float] = None
        self.serve_endpoint: Optional[Tuple[str, int]] = None
        self.repl_endpoint: Optional[Tuple[str, int]] = None

        self._chain = 0
        self._acked = -1
        self._force_snapshot = False
        self._follow_task: Optional[asyncio.Task] = None
        self._stopping = False
        # Serialises every journal/engine mutation.  Needed because a
        # cancelled follow task's in-flight ``to_thread`` checkpoint
        # install keeps running after cancellation — without the lock it
        # would race the next session's work on the same journal.
        self._mutate = threading.RLock()

    # -- lifecycle -----------------------------------------------------------

    @property
    def applied_seqno(self) -> int:
        return self.journal.applied_seqno if self.journal is not None else 0

    async def start(self) -> Tuple[Tuple[str, int], Tuple[str, int]]:
        """Recover, bind, follow.  Returns ``(serve, repl)`` endpoints."""
        os.makedirs(self.directory, exist_ok=True)
        result = await asyncio.to_thread(
            recover, self.directory, verify=False
        )
        self.txn = result.trie
        self.journal = Journal(self.directory, fsync_every=self.fsync_every)
        self.txn.journal = self.journal
        self.handle = TableHandle(self.txn.trie, name=self.name)
        self.handle.set_seqno(self.journal.applied_seqno)
        self.server = LookupServer(
            self.handle,
            self.server_config
            or ServerConfig(host=self.serve_host, port=self.serve_port),
            apply_updates=self._apply_updates,
        )
        serve = await self.server.start()
        self.publisher = replication.ReplicationPublisher(
            self.directory,
            self.repl_host,
            self.repl_port,
            owner=self,
            watermark=lambda: self.applied_seqno,
        )
        repl = await self.publisher.start()
        self.serve_endpoint = serve
        self.repl_endpoint = repl
        if self.quorum is not None:
            # A promoted replica inherits the same durability policy
            # the primary served under — the gate reads this node's own
            # publisher, which gains subscribers after the retargets.
            self.server.quorum = replication.QuorumGate(
                self.publisher, self.quorum
            )
        if self.role == "replica":
            self._follow_task = asyncio.create_task(self._follow())
        return serve, repl

    async def stop(self) -> None:
        self._stopping = True
        if self._follow_task is not None:
            self._follow_task.cancel()
            try:
                await self._follow_task
            except asyncio.CancelledError:
                pass
            self._follow_task = None
        if self.publisher is not None:
            await self.publisher.stop()
        if self.server is not None:
            await self.server.stop()
        if self.journal is not None:
            def close():
                with self._mutate:
                    self.journal.close()
            await asyncio.to_thread(close)

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``python -m repro replica`` main)."""
        try:
            while not self._stopping:
                await asyncio.sleep(3600)
        finally:
            await self.stop()

    # -- the write path (primary role only) ----------------------------------

    def _apply_updates(self, updates) -> dict:
        """OP_UPDATE hook: journal + apply one batch (primary only)."""
        if self.role != "primary":
            raise ClusterError(
                "replica is read-only; send updates to the primary"
            )
        with self._mutate:
            report = self.txn.apply_stream(updates, on_error="skip")
            # Acknowledged means durable *and* shippable: the replication
            # tailer only sees bytes that reached the segment file, so
            # flush past any fsync_every batching before replying.
            if self.journal is not None:
                self.journal.flush()
            self._publish_applied()
        return {
            "applied": report.applied,
            "rejected": report.rejected,
            "seqno": self.applied_seqno,
        }

    def _publish_applied(self) -> None:
        """Publish the update engine's current structure to readers."""
        if self.txn.trie is not self.handle.structure:
            # The engine degraded to a full rebuild: a fresh object must
            # be swapped in.  In-place incremental updates need no swap —
            # they publish with one atomic write inside the structure.
            self.handle.swap(self.txn.trie, wait=False)
        self.handle.set_seqno(self.applied_seqno)
        if (
            self.checkpoint_every
            and self.journal.last_seqno - self.journal.checkpoint_seqno
            >= self.checkpoint_every
        ):
            self.txn.checkpoint()

    # -- the follow loop (replica role) --------------------------------------

    def _hello_seqno(self) -> int:
        """What to ask the primary for: our watermark, or everything."""
        if self._force_snapshot:
            return replication.SYNC_FROM_SCRATCH
        _, path = replication._newest_checkpoint(self.directory)
        if path is None and self.applied_seqno == 0:
            # Never synced: our empty state says nothing about the
            # primary's checkpoint 0, so ask for the full snapshot.
            return replication.SYNC_FROM_SCRATCH
        return self.applied_seqno

    async def _follow(self) -> None:
        backoff = self.reconnect_backoff
        while self.role == "replica" and not self._stopping:
            host, port = self.primary
            try:
                reader, writer = await replication.subscribe(
                    host, port, self._hello_seqno()
                )
            except OSError:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 1.0)
                continue
            backoff = self.reconnect_backoff
            self.connects += 1
            self._chain = 0
            # New session, new publisher-side subscription record: re-ack
            # our watermark on the first heartbeat so the (possibly new)
            # primary learns where we stand.
            self._acked = -1
            try:
                await self._consume(reader, writer)
            except asyncio.CancelledError:
                raise
            except (
                asyncio.TimeoutError,
                ConnectionError,
                OSError,
                ClusterError,
                ReproError,
            ):
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _consume(
        self,
        reader: asyncio.StreamReader,
        writer: Optional[asyncio.StreamWriter] = None,
    ) -> None:
        """Apply one subscription session until it breaks or we promote.

        Acks flow back on the same connection: whenever this replica's
        *own* journal makes shipped state durable (the heartbeat-paced
        flush, or a checkpoint install), an ACK naming the durable seqno
        goes upstream — the primary's quorum input.
        """
        while self.role == "replica" and not self._stopping:
            frame = await asyncio.wait_for(
                protocol.read_frame(reader, replication.REPL_MAX_FRAME),
                self.heartbeat_timeout,
            )
            if frame is None:
                raise ConnectionError("publisher closed the stream")
            kind, operands = replication.decode_frame(frame)
            if kind == replication.FRAME_CHECKPOINT:
                await self._install_checkpoint(*operands)
                await self._send_ack(writer, operands[0])
            elif kind == replication.FRAME_RECORD:
                self._apply_record(*operands)
            elif kind == replication.FRAME_HEARTBEAT:
                durable = self._observe_heartbeat(operands[0])
                await self._send_ack(writer, durable)
            else:
                self._diverged(f"unexpected frame type {kind} in stream")
            await asyncio.sleep(0)  # let queued lookups interleave

    async def _send_ack(
        self, writer: Optional[asyncio.StreamWriter], durable: int
    ) -> None:
        """Tell the publisher the highest seqno our journal made durable."""
        if writer is None or durable <= self._acked:
            return
        writer.write(
            protocol.frame_bytes(replication.encode_ack(durable))
        )
        await writer.drain()
        self._acked = durable
        self.acks_sent += 1

    def _diverged(self, reason: str) -> None:
        """Force the next session to re-sync from a checkpoint."""
        self.resyncs += 1
        self._force_snapshot = True
        raise ClusterError(f"diverged from primary: {reason}")

    async def _install_checkpoint(self, seqno: int, image: bytes) -> None:
        """Adopt a shipped snapshot: new RIB, new engine, fresh journal."""
        def rebuild():
            with self._mutate:
                rib = tableio.rib_from_image(TableImage.open(image))
                self.journal.install_checkpoint(rib, seqno)
                return TransactionalPoptrie(
                    width=rib.width, rib=rib, journal=self.journal
                )
        self.txn = await asyncio.to_thread(rebuild)
        self.handle.swap(self.txn.trie, wait=False)
        self.handle.set_seqno(seqno)
        self._chain = zlib.crc32(image)
        self._force_snapshot = False

    def _apply_record(self, seqno: int, chain: int, payload: bytes) -> None:
        from repro.robust.journal import decode_update

        expected_chain = replication.chain_crc(payload, self._chain)
        if chain != expected_chain:
            self._diverged(
                f"chain CRC mismatch at seqno {seqno} "
                f"(got {chain:#x}, computed {expected_chain:#x})"
            )
        if seqno != self.applied_seqno + 1:
            self._diverged(
                f"sequence gap: record {seqno} after applied "
                f"{self.applied_seqno}"
            )
        update = decode_update(payload)
        try:
            with self._mutate:
                if update.kind == "A":
                    self.txn.announce(update.prefix, update.nexthop)
                else:
                    self.txn.withdraw(update.prefix)
        except ReproError as error:
            # The primary journaled this record, so it applied there;
            # a rejection here means our state differs from the
            # primary's at this seqno.  Do not guess — re-sync.
            self.records_rejected += 1
            self._diverged(
                f"update engine rejected shipped record {seqno}: {error}"
            )
        self._chain = expected_chain
        self.records_applied += 1
        self._publish_applied()

    def _observe_heartbeat(self, watermark: int) -> int:
        """Flush our journal; returns the durable seqno (the ack value)."""
        self.last_heartbeat = time.monotonic()
        self.primary_seqno = watermark
        durable = 0
        if self.journal is not None:
            # Heartbeats pace the replica's own durability: shipped
            # records applied since the last beat reach its segment file
            # here, so downstream (chained) tailers and a post-crash
            # recover() lag the stream by at most one heartbeat.
            with self._mutate:
                durable = self.journal.flush()
        if watermark < self.applied_seqno:
            # The primary is *behind* us (e.g. restarted from older
            # durable state).  Our extra records are not part of its
            # history any more — re-sync to its timeline.
            self._diverged(
                f"primary watermark {watermark} behind applied "
                f"{self.applied_seqno}"
            )
        return durable

    # -- control (the publisher's owner callbacks) ----------------------------

    def info(self) -> dict:
        age = (
            round(time.monotonic() - self.last_heartbeat, 3)
            if self.last_heartbeat is not None
            else None
        )
        return {
            "name": self.name,
            "role": self.role,
            "serve": (
                f"{self.serve_endpoint[0]}:{self.serve_endpoint[1]}"
                if self.serve_endpoint
                else None
            ),
            "repl": (
                f"{self.repl_endpoint[0]}:{self.repl_endpoint[1]}"
                if self.repl_endpoint
                else None
            ),
            "applied_seqno": self.applied_seqno,
            "checkpoint_seqno": (
                self.journal.checkpoint_seqno if self.journal else 0
            ),
            "primary": (
                f"{self.primary[0]}:{self.primary[1]}" if self.primary else None
            ),
            "primary_seqno": self.primary_seqno,
            "lag": max(0, self.primary_seqno - self.applied_seqno),
            "heartbeat_age_s": age,
            "generation": self.handle.generation if self.handle else 0,
            "records_applied": self.records_applied,
            "records_rejected": self.records_rejected,
            "resyncs": self.resyncs,
            "connects": self.connects,
            "acks_sent": self.acks_sent,
            "routes": len(self.txn.rib) if self.txn is not None else 0,
        }

    def promote(self, min_seqno: int) -> dict:
        """Become primary — but only from a position of knowledge.

        ``min_seqno`` is the coordinator's view of the most advanced
        surviving replica; a replica that has applied less **refuses**
        (a stale promotion would silently roll the cluster's history
        back).  On success the follow loop stops and the node accepts
        OP_UPDATE writes; other replicas are retargeted at its
        publisher by the coordinator.
        """
        if self.role == "primary":
            return {"promoted": True, "already": True, **self.info()}
        if self.applied_seqno < min_seqno:
            return {
                "promoted": False,
                "reason": (
                    f"stale: applied_seqno {self.applied_seqno} < "
                    f"required {min_seqno}"
                ),
                **self.info(),
            }
        self.role = "primary"
        self.primary = None
        if self._follow_task is not None:
            self._follow_task.cancel()
            self._follow_task = None
        if self.journal is not None:
            with self._mutate:
                self.journal.flush()
        self._count_role_change("promote")
        return {"promoted": True, **self.info()}

    def retarget(self, host: str, port: int) -> dict:
        """Follow a different publisher (after a promotion elsewhere)."""
        if self.role == "primary":
            return {
                "retargeted": False,
                "reason": "primary follows nobody",
                **self.info(),
            }
        self.primary = (host, port)
        self.primary_seqno = 0
        self.last_heartbeat = None
        if self._follow_task is not None:
            self._follow_task.cancel()
        self._follow_task = asyncio.create_task(self._follow())
        self._count_role_change("retarget")
        return {"retargeted": True, **self.info()}

    def _count_role_change(self, kind: str) -> None:
        from repro import obs

        obs.registry().counter(
            "repro_cluster_role_changes_total",
            "Replica promotions and retargets.",
            node=self.name,
            kind=kind,
        ).inc()


__all__ = ["Replica"]
