"""Prefix-space shard maps: who answers which addresses.

A cluster splits the lookup key space into **contiguous address ranges**
(shards), each served by an ordered set of replica endpoints.  Contiguity
is what makes client-side routing trivial — one binary search over the
range bounds — and what the CRAM lens line of work ("Scaling IP Lookup to
Large Databases using the CRAM Lens", see PAPERS.md) showed is compatible
with good balance *if* the cut points respect the skew of real tables:
routing tables concentrate wildly in small slices of the address space,
so equal-width cuts (``naive_shard_map``) leave some shards nearly empty
while one holds most of the table.

:func:`build_shard_map` therefore cuts at route-count quantiles: routes
are walked in address order and boundaries are placed so each shard holds
roughly the same number of routes.

Correctness under partitioning — the covering-route rule
--------------------------------------------------------
A shard must answer longest-prefix-match queries for its range *exactly*
as the global table would.  A short prefix (say ``0.0.0.0/0``) covers
addresses in many shards, so :func:`shard_rib` includes every route whose
address span **intersects** the shard's range, not only routes whose
network address falls inside it.  Duplicating covering routes this way
guarantees per-shard LPM equals global LPM for every key in the shard.

The on-disk format (``repro-shardmap-v1``) is JSON with integer bounds,
so IPv6's 128-bit values survive round-trips losslessly.
"""

from __future__ import annotations

import bisect
import json
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ClusterError
from repro.net.prefix import Prefix
from repro.net.rib import Rib

FORMAT = "repro-shardmap-v1"


def _parse_endpoint(text: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; IPv6 hosts use ``[::1]:port``."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ClusterError(f"bad endpoint {text!r}: expected host:port")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    if not host:
        raise ClusterError(f"bad endpoint {text!r}: empty host")
    return host, int(port)


@dataclass(frozen=True)
class Shard:
    """One contiguous key range and the replicas that serve it.

    ``endpoints`` is ordered by preference: the router tries them in
    order, failing over down the list.
    """

    low: int
    high: int
    endpoints: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ClusterError(f"bad shard range [{self.low}, {self.high}]")
        for endpoint in self.endpoints:
            _parse_endpoint(endpoint)  # validate eagerly

    def contains(self, key: int) -> bool:
        return self.low <= key <= self.high

    def addresses(self) -> Iterable[Tuple[str, int]]:
        return [_parse_endpoint(endpoint) for endpoint in self.endpoints]


@dataclass(frozen=True)
class ShardMap:
    """An ordered, gapless partition of the ``width``-bit key space.

    >>> shard_map = ShardMap(32, (
    ...     Shard(0, (1 << 31) - 1, ("127.0.0.1:4000",)),
    ...     Shard(1 << 31, (1 << 32) - 1, ("127.0.0.1:4001",)),
    ... ))
    >>> shard_map.shard_index(0x0A000001)
    0
    >>> shard_map.shard_for(0xC0000001).endpoints
    ('127.0.0.1:4001',)
    """

    width: int
    shards: Tuple[Shard, ...]
    _lows: Tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.width not in (32, 128):
            raise ClusterError(f"bad shard map width {self.width}")
        if not self.shards:
            raise ClusterError("shard map has no shards")
        top = (1 << self.width) - 1
        expected = 0
        for position, shard in enumerate(self.shards):
            if shard.low != expected:
                raise ClusterError(
                    f"shard #{position} starts at {shard.low}, expected "
                    f"{expected}: shards must tile the key space gaplessly"
                )
            expected = shard.high + 1
        if expected != top + 1:
            raise ClusterError(
                f"shards cover only up to {expected - 1}, not {top}"
            )
        object.__setattr__(
            self, "_lows", tuple(shard.low for shard in self.shards)
        )

    def __len__(self) -> int:
        return len(self.shards)

    def shard_index(self, key: int) -> int:
        if not 0 <= key < (1 << self.width):
            raise ClusterError(f"key {key} outside the {self.width}-bit space")
        return bisect.bisect_right(self._lows, key) - 1

    def shard_for(self, key: int) -> Shard:
        return self.shards[self.shard_index(key)]

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "format": FORMAT,
            "width": self.width,
            "shards": [
                {
                    "low": shard.low,
                    "high": shard.high,
                    "endpoints": list(shard.endpoints),
                }
                for shard in self.shards
            ],
        }

    @classmethod
    def from_json(cls, blob: dict) -> "ShardMap":
        if not isinstance(blob, dict) or blob.get("format") != FORMAT:
            raise ClusterError(
                f"not a {FORMAT} document (format={blob.get('format')!r})"
                if isinstance(blob, dict)
                else "shard map document is not a JSON object"
            )
        try:
            shards = tuple(
                Shard(
                    int(entry["low"]),
                    int(entry["high"]),
                    tuple(entry.get("endpoints", ())),
                )
                for entry in blob["shards"]
            )
            return cls(int(blob["width"]), shards)
        except (KeyError, TypeError, ValueError) as error:
            raise ClusterError(f"malformed shard map: {error}") from None

    def save(self, path: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w") as stream:
            json.dump(self.to_json(), stream, indent=2)
            stream.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "ShardMap":
        with open(path) as stream:
            try:
                blob = json.load(stream)
            except json.JSONDecodeError as error:
                raise ClusterError(f"{path}: not JSON: {error}") from None
        return cls.from_json(blob)

    def with_endpoints(
        self, endpoint_sets: Sequence[Sequence[str]]
    ) -> "ShardMap":
        """The same ranges with each shard's replica set replaced."""
        if len(endpoint_sets) != len(self.shards):
            raise ClusterError(
                f"{len(endpoint_sets)} endpoint sets for "
                f"{len(self.shards)} shards"
            )
        return ShardMap(
            self.width,
            tuple(
                Shard(shard.low, shard.high, tuple(endpoints))
                for shard, endpoints in zip(self.shards, endpoint_sets)
            ),
        )

    def describe(self) -> dict:
        return {
            "width": self.width,
            "shards": len(self.shards),
            "endpoints": sorted(
                {e for shard in self.shards for e in shard.endpoints}
            ),
        }


# -- building shard maps -------------------------------------------------------


def naive_shard_map(width: int, shards: int) -> ShardMap:
    """Equal-width cuts — the strawman the skew-aware splitter beats."""
    if shards < 1:
        raise ClusterError("need at least one shard")
    top = 1 << width
    if shards > top:
        raise ClusterError(f"{shards} shards exceed the {width}-bit space")
    step, remainder = divmod(top, shards)
    cuts = []
    low = 0
    for index in range(shards):
        high = low + step - 1 + (1 if index < remainder else 0)
        cuts.append(Shard(low, high))
        low = high + 1
    return ShardMap(width, tuple(cuts))


def build_shard_map(
    rib: Rib,
    shards: int,
    endpoint_sets: Optional[Sequence[Sequence[str]]] = None,
) -> ShardMap:
    """Cut the key space at route-count quantiles of ``rib``.

    Walks the routes in address order and places each boundary at the
    network address of the route closest to the next count quantile, so
    every shard holds roughly ``len(rib) / shards`` routes.  Degenerate
    tables (fewer distinct network addresses than shards) fall back to
    fewer, still-balanced cuts; an empty table degrades to the naive
    equal-width map.
    """
    if shards < 1:
        raise ClusterError("need at least one shard")
    # rib.routes() yields lexicographic bit order, so network addresses
    # arrive nondecreasing — a single pass computes count quantiles.
    values = [prefix.value for prefix, _ in rib.routes()]
    if shards == 1 or not values:
        shard_map = naive_shard_map(rib.width, shards)
    else:
        per_shard = len(values) / shards
        cuts: List[int] = []
        threshold = per_shard
        for seen, value in enumerate(values, start=1):
            if len(cuts) >= shards - 1:
                break
            if seen >= threshold and value != 0 and (
                not cuts or value > cuts[-1]
            ):
                # This route's network address starts the next shard.
                cuts.append(value)
                threshold = (len(cuts) + 1) * per_shard
        if not cuts:
            shard_map = naive_shard_map(rib.width, shards)
            if endpoint_sets is not None:
                shard_map = shard_map.with_endpoints(endpoint_sets)
            return shard_map
        bounds = [0] + cuts + [1 << rib.width]
        shard_map = ShardMap(
            rib.width,
            tuple(
                Shard(bounds[i], bounds[i + 1] - 1)
                for i in range(len(bounds) - 1)
            ),
        )
    if endpoint_sets is not None:
        shard_map = shard_map.with_endpoints(endpoint_sets)
    return shard_map


def shard_rib(rib: Rib, shard: Shard) -> Rib:
    """The sub-table a shard's replicas serve: every route whose address
    span intersects the shard's range (covering routes included), so
    per-shard LPM answers equal the global table's for all keys in range.
    """
    out = Rib(width=rib.width)
    for prefix, fib_index in rib.routes():
        span = 1 << (rib.width - prefix.length)
        first = prefix.value
        last = first + span - 1
        if first <= shard.high and last >= shard.low:
            out.insert(prefix, fib_index)
    return out


def shard_balance(rib: Rib, shard_map: ShardMap) -> List[int]:
    """Routes whose network address lands in each shard (balance metric;
    covering-route duplicates are deliberately not counted)."""
    counts = [0] * len(shard_map)
    for prefix, _ in rib.routes():
        counts[shard_map.shard_index(prefix.value)] += 1
    return counts


__all__ = [
    "FORMAT",
    "Shard",
    "ShardMap",
    "build_shard_map",
    "naive_shard_map",
    "shard_balance",
    "shard_rib",
]
