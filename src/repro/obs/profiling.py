"""Profiling hooks: a zero-setup cProfile wrapper for hot-path analysis.

The paper's performance story is ultimately about where cycles go;
:func:`profiled` makes the interpreter-level equivalent one context
manager away::

    with profiled() as prof:
        measure_rate_scalar(structure, 100_000)
    print(prof.report(limit=10))

Everything is standard library (``cProfile``/``pstats``), so this module
adds no dependencies and imports lazily — constructing the context
manager while profiling is not wanted costs nothing.
"""

from __future__ import annotations

import io
from contextlib import contextmanager
from typing import Iterator


class ProfileResult:
    """Holds a finished cProfile run and renders pstats reports."""

    def __init__(self, profile) -> None:
        self._profile = profile

    def report(self, sort: str = "cumulative", limit: int = 20) -> str:
        """A pstats text report sorted by ``sort`` (cumulative/tottime/...)."""
        import pstats

        buffer = io.StringIO()
        stats = pstats.Stats(self._profile, stream=buffer)
        stats.sort_stats(sort).print_stats(limit)
        return buffer.getvalue()

    def dump(self, path: str) -> None:
        """Write raw profile data loadable by snakeviz/pstats."""
        self._profile.dump_stats(path)


@contextmanager
def profiled() -> Iterator[ProfileResult]:
    """Profile the enclosed block with cProfile.

    The yielded :class:`ProfileResult` is usable after the block exits.
    """
    import cProfile

    profile = cProfile.Profile()
    result = ProfileResult(profile)
    profile.enable()
    try:
        yield result
    finally:
        profile.disable()
