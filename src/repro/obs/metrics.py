"""Zero-dependency metrics primitives: counters, gauges, histograms.

The design follows the Prometheus data model — monotonic counters,
settable gauges, and histograms with *fixed* bucket layouts — because the
paper's whole evaluation (Section 4) is a set of counter/histogram reads:
lookup counts, per-depth access distributions, allocator churn, latency
percentiles.  Keeping the layouts fixed makes snapshots comparable across
runs, which is what EXPERIMENTS.md needs.

Two registries implement the same surface:

- :class:`MetricsRegistry` — the real thing; hands out live instruments
  keyed by ``(name, labels)`` and renders the Prometheus text exposition
  format.
- :class:`NullRegistry` — the compiled-out substitute installed while
  observability is disabled; every factory returns a shared no-op
  instrument, so instrumented code pays one method call and nothing else.

Hot paths never hold a registry: they either install per-instance
wrappers when observability is switched on (see
:meth:`repro.lookup.base.LookupStructure.enable_obs`) or fetch their
instrument through :func:`repro.obs.registry` at event time, so flipping
the module-level switch takes effect immediately.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# -- fixed bucket layouts ------------------------------------------------------

#: Trie depth / internal nodes traversed per lookup (Figure 11's x-axis).
DEPTH_BUCKETS: Tuple[float, ...] = (0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 22)

#: Per-packet / per-batch latency in microseconds (the §2 jitter argument).
LATENCY_US_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

#: Wall-clock span durations in seconds (build / update / pipeline stages).
SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)

#: Ring/queue occupancy in packets (power-of-two ring sizes).
OCCUPANCY_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
)

DEFAULT_BUCKETS = SECONDS_BUCKETS

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (occupancy, bytes live, ...)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A fixed-bucket histogram with cumulative Prometheus semantics.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches the tail.  ``observe`` is O(log buckets).
    """

    __slots__ = ("bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def value(self) -> float:
        """The running mean — the scalar summary used in stats() dicts."""
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds + (math.inf,), self.counts):
            running += count
            out.append((bound, running))
        return out

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (0..100) from the bucket layout:
        returns the smallest upper bound covering the rank.  The tail
        bucket reports the largest finite bound."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in 0..100")
        if not self.count:
            return 0.0
        rank = math.ceil(self.count * q / 100)
        for bound, cumulative in self.cumulative():
            if cumulative >= rank:
                return self.bounds[-1] if bound == math.inf else bound
        return self.bounds[-1]


class _Family:
    """All instruments sharing one metric name (children split by labels)."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help: str, buckets=None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.children: Dict[LabelKey, object] = {}

    def child(self, labels: Dict[str, str]):
        key = _label_key(labels)
        instrument = self.children.get(key)
        if instrument is None:
            if self.kind == "counter":
                instrument = Counter()
            elif self.kind == "gauge":
                instrument = Gauge()
            else:
                instrument = Histogram(self.buckets or DEFAULT_BUCKETS)
            self.children[key] = instrument
        return instrument


class MetricsRegistry:
    """The live metrics store: a dict of metric families.

    Instruments are created on first use and identified by
    ``(name, labels)``; asking for an existing name with a different type
    is a programming error and raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- factories ---------------------------------------------------------

    def _family(self, name: str, kind: str, help: str, buckets=None) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._family(name, "counter", help).child(labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._family(name, "gauge", help).child(labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._family(name, "histogram", help, tuple(buckets)).child(labels)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._families)

    def families(self) -> Iterable[_Family]:
        return self._families.values()

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{"name{labels}": scalar}`` view (histograms -> mean)."""
        out: Dict[str, float] = {}
        for family in self._families.values():
            for key, instrument in family.children.items():
                out[family.name + _render_labels(key)] = instrument.value
        return out

    def reset(self) -> None:
        self._families.clear()

    # -- Prometheus text exposition ---------------------------------------

    def render(self) -> str:
        """The Prometheus text format (``# HELP`` / ``# TYPE`` / samples)."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.children):
                instrument = family.children[key]
                if family.kind == "histogram":
                    assert isinstance(instrument, Histogram)
                    for bound, cumulative in instrument.cumulative():
                        labels = _render_labels(
                            key, [("le", _format_value(bound))]
                        )
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    suffix = _render_labels(key)
                    lines.append(
                        f"{name}_sum{suffix} {_format_value(instrument.sum)}"
                    )
                    lines.append(f"{name}_count{suffix} {instrument.count}")
                else:
                    lines.append(
                        f"{name}{_render_labels(key)} "
                        f"{_format_value(instrument.value)}"
                    )
        return "\n".join(lines)


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled state."""

    __slots__ = ()
    value = 0
    sum = 0.0
    count = 0
    bounds: Tuple[float, ...] = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative(self) -> List[Tuple[float, int]]:
        return []

    def percentile(self, q: float) -> float:
        return 0.0


_NULL = _NullInstrument()


class NullRegistry:
    """The disabled-state registry: every factory returns a shared no-op.

    Mutating it is free and invisible; rendering it yields nothing.  Code
    instrumented against :func:`repro.obs.registry` therefore needs no
    enabled-check of its own outside the hottest loops.
    """

    def counter(self, name: str, help: str = "", **labels: str) -> _NullInstrument:
        return _NULL

    def gauge(self, name: str, help: str = "", **labels: str) -> _NullInstrument:
        return _NULL

    def histogram(
        self, name: str, help: str = "", buckets=DEFAULT_BUCKETS, **labels: str
    ) -> _NullInstrument:
        return _NULL

    def __len__(self) -> int:
        return 0

    def families(self) -> Iterable[_Family]:
        return ()

    def snapshot(self) -> Dict[str, float]:
        return {}

    def reset(self) -> None:
        pass

    def render(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()
