"""Observability: metrics, tracing spans and profiling hooks.

This package is the instrumentation substrate the ROADMAP's performance
PRs report through.  It is zero-dependency and *compile-out cheap*: one
module-level switch selects between a live :class:`MetricsRegistry` and a
shared :class:`NullRegistry` whose instruments are no-ops, so
instrumented code costs nothing measurable while observability is off —
and the per-lookup scalar hot path is only instrumented at all when
:meth:`~repro.lookup.base.LookupStructure.enable_obs` installs a
per-instance wrapper (zero overhead otherwise, not even a branch).

Typical use::

    from repro import obs

>>> from repro import obs
>>> from repro.obs import metrics
>>> _ = obs.enable()                    # swap in a live registry
>>> obs.enabled()
True
>>> counter = obs.registry().counter(
...     "demo_lookups_total", "Demo counter.", structure="Poptrie18")
>>> counter.inc()
>>> counter.inc(2)
>>> print(obs.registry().render())
# HELP demo_lookups_total Demo counter.
# TYPE demo_lookups_total counter
demo_lookups_total{structure="Poptrie18"} 3
>>> hist = obs.registry().histogram(
...     "demo_depth", buckets=metrics.DEPTH_BUCKETS)
>>> hist.observe(0); hist.observe(3); hist.observe(3)
>>> hist.count, hist.percentile(50)
(3, 3.0)
>>> obs.disable()                       # back to the free no-op registry
>>> obs.enabled()
False
>>> obs.registry().counter("demo_lookups_total").inc()   # no-op, no state
>>> obs.registry().render()
''

Metric names, units and bucket layouts are catalogued in
docs/OBSERVABILITY.md; ``python -m repro stats`` exercises every
instrumented subsystem and prints the Prometheus text dump.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.obs.metrics import (
    DEPTH_BUCKETS,
    LATENCY_US_BUCKETS,
    OCCUPANCY_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.profiling import ProfileResult, profiled
from repro.obs.tracing import SpanRecord, clear_spans, recent_spans, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "ProfileResult",
    "SpanRecord",
    "clear_spans",
    "disable",
    "enable",
    "enabled",
    "profiled",
    "recent_spans",
    "registry",
    "span",
    "DEPTH_BUCKETS",
    "LATENCY_US_BUCKETS",
    "OCCUPANCY_BUCKETS",
    "SECONDS_BUCKETS",
]

#: The active registry.  NullRegistry while disabled; enable() swaps in a
#: live MetricsRegistry.  Hot paths read this through registry() at event
#: time (or not at all — per-instance lookup wrappers are only installed
#: while enabled), so the disabled cost is at most one attribute check.
_registry: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY


def enabled() -> bool:
    """True when a live metrics registry is installed."""
    return _registry is not NULL_REGISTRY


def registry() -> Union[MetricsRegistry, NullRegistry]:
    """The active registry (the shared no-op registry while disabled)."""
    return _registry


def enable(target: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Switch observability on; returns the active live registry.

    Idempotent: enabling while already enabled keeps the existing
    registry (unless an explicit ``target`` is supplied).
    """
    global _registry
    if target is not None:
        _registry = target
    elif _registry is NULL_REGISTRY:
        _registry = MetricsRegistry()
    assert isinstance(_registry, MetricsRegistry)
    return _registry


def disable() -> None:
    """Switch observability off: reinstall the shared no-op registry."""
    global _registry
    _registry = NULL_REGISTRY


if os.environ.get("REPRO_OBS", "").strip() not in ("", "0", "false", "no"):
    enable()
