"""Lightweight tracing spans over the metrics registry.

A span is a named, timed region — ``with span("poptrie.from_rib"):`` —
that (when observability is enabled) records its wall-clock duration into
the ``repro_span_seconds`` histogram and appends a :class:`SpanRecord` to
a bounded in-memory ring for inspection.  When observability is disabled,
:func:`span` returns a shared no-op context manager: entering it costs
two trivial method calls and touches no shared state, so spans are safe
to leave in update/build/pipeline paths permanently (they are kept out of
the per-lookup scalar path entirely; see docs/OBSERVABILITY.md).

Nesting is tracked with a plain stack (the library is single-threaded per
structure; the multi-core benchmark forks whole processes), so each
record knows its parent span name and depth.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.obs.metrics import SECONDS_BUCKETS

#: How many finished spans the in-memory ring keeps.
SPAN_RING_CAPACITY = 1024


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    start: float       # time.perf_counter() at entry
    duration: float    # seconds
    parent: Optional[str]
    depth: int


class _NullSpan:
    """Shared do-nothing context manager for the disabled state."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()

_ring: Deque[SpanRecord] = deque(maxlen=SPAN_RING_CAPACITY)
_stack: List[str] = []


class _Span:
    __slots__ = ("name", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        _stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        duration = time.perf_counter() - self._start
        _stack.pop()
        record = SpanRecord(
            name=self.name,
            start=self._start,
            duration=duration,
            parent=_stack[-1] if _stack else None,
            depth=len(_stack),
        )
        _ring.append(record)
        from repro import obs

        obs.registry().histogram(
            "repro_span_seconds",
            "Wall-clock duration of traced spans.",
            buckets=SECONDS_BUCKETS,
            span=self.name,
        ).observe(duration)


def span(name: str):
    """A context manager timing the enclosed region as ``name``.

    Returns a shared no-op object while observability is disabled.
    """
    from repro import obs

    if not obs.enabled():
        return _NULL_SPAN
    return _Span(name)


def recent_spans(name: Optional[str] = None) -> List[SpanRecord]:
    """The finished spans still in the ring, oldest first."""
    if name is None:
        return list(_ring)
    return [record for record in _ring if record.name == name]


def clear_spans() -> None:
    _ring.clear()
    _stack.clear()
