"""Tests for the traffic-pattern generators."""

import numpy as np

from repro.data.synth import generate_table
from repro.data.traffic import (
    random_addresses,
    random_addresses_v6,
    real_trace,
    repeated_addresses,
    sequential_addresses,
)


class TestRandom:
    def test_shape_and_dtype(self):
        keys = random_addresses(1000)
        assert keys.dtype == np.uint64 and len(keys) == 1000

    def test_values_are_ipv4(self):
        keys = random_addresses(1000)
        assert int(keys.max()) < 1 << 32

    def test_deterministic_per_seed(self):
        assert (random_addresses(100, seed=5) == random_addresses(100, seed=5)).all()
        assert (random_addresses(100, seed=5) != random_addresses(100, seed=6)).any()


class TestSequential:
    def test_consecutive(self):
        keys = sequential_addresses(10, start=100)
        assert keys.tolist() == list(range(100, 110))

    def test_wraps_at_32_bits(self):
        keys = sequential_addresses(4, start=(1 << 32) - 2)
        assert keys.tolist() == [(1 << 32) - 2, (1 << 32) - 1, 0, 1]


class TestRepeated:
    def test_each_address_runs_16_times(self):
        keys = repeated_addresses(160, repeat=16)
        for i in range(0, 160, 16):
            block = set(keys[i : i + 16].tolist())
            assert len(block) == 1

    def test_partial_tail(self):
        keys = repeated_addresses(20, repeat=16)
        assert len(keys) == 20
        assert len(set(keys[:16].tolist())) == 1

    def test_distinct_across_blocks(self):
        keys = repeated_addresses(320, repeat=16)
        firsts = {int(keys[i]) for i in range(0, 320, 16)}
        assert len(firsts) == 20


class TestRealTrace:
    def _rib(self):
        rib, _ = generate_table(2000, 20, seed=77, igp_fraction=0.1)
        return rib

    def test_length_and_dtype(self):
        trace = real_trace(self._rib(), 5000, seed=1)
        assert len(trace) == 5000 and trace.dtype == np.uint64

    def test_pool_is_limited(self):
        trace = real_trace(self._rib(), 15_000, seed=2)
        distinct = len(set(trace.tolist()))
        assert distinct <= 15_000 // 150 + 1

    def test_destinations_fall_in_routed_space(self):
        rib = self._rib()
        trace = real_trace(rib, 2000, seed=3)
        from repro.net.fib import NO_ROUTE

        hits = sum(1 for key in trace[:500] if rib.lookup(int(key)) != NO_ROUTE)
        assert hits == 500

    def test_deep_bias_shifts_depth_mix(self):
        """Section 4.7: trace traffic needs more deep lookups than uniform
        random — the generator's bias parameter controls that."""
        rib = self._rib()
        shallow = real_trace(rib, 3000, seed=4, deep_bias=0.01)
        deep = real_trace(rib, 3000, seed=4, deep_bias=50.0)

        def deep_fraction(keys):
            n = 0
            for key in keys[:1000]:
                _, _, depth = rib.lookup_with_depth(int(key))
                if depth > 18:
                    n += 1
            return n / 1000

        assert deep_fraction(deep) > deep_fraction(shallow)

    def test_deterministic(self):
        rib = self._rib()
        a = real_trace(rib, 1000, seed=9)
        b = real_trace(rib, 1000, seed=9)
        assert (a == b).all()

    def test_empty_rib_falls_back(self):
        from repro.net.rib import Rib

        trace = real_trace(Rib(), 100, seed=1)
        assert len(trace) == 100


class TestRandomV6:
    def test_inside_2000_8(self):
        keys = random_addresses_v6(200)
        assert all(key >> 120 == 0x20 for key in keys)

    def test_width(self):
        keys = random_addresses_v6(100)
        assert all(0 <= key < (1 << 128) for key in keys)

    def test_deterministic(self):
        assert random_addresses_v6(50, seed=3) == random_addresses_v6(50, seed=3)
