"""Registry-wide conformance test of the ``lookup_batch`` input contract.

Every algorithm in :func:`repro.lookup.registry.available` must accept
the same batch-key spellings — ``list[int]``, any integer numpy array,
an object-dtype array of Python ints — and resolve them identically to
its scalar ``lookup``.  The normalization itself
(:func:`repro.lookup.base.normalize_batch_keys`) is unit-tested first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synth import generate_table
from repro.data.traffic import random_addresses
from repro.lookup import registry
from repro.lookup.base import LookupStructure, normalize_batch_keys


class TestNormalizeBatchKeys:
    def test_list_of_ints_becomes_uint64(self):
        out = normalize_batch_keys([1, 2, 3])
        assert out.dtype == np.uint64
        assert out.tolist() == [1, 2, 3]

    def test_integer_arrays_of_any_dtype(self):
        for dtype in (np.uint8, np.int32, np.uint32, np.int64, np.uint64):
            out = normalize_batch_keys(np.array([7, 9], dtype=dtype))
            assert out.dtype == np.uint64
            assert out.tolist() == [7, 9]

    def test_uint64_array_is_not_copied(self):
        keys = np.array([1, 2, 3], dtype=np.uint64)
        assert normalize_batch_keys(keys) is keys

    def test_object_array_of_python_ints(self):
        keys = np.empty(2, dtype=object)
        keys[0], keys[1] = 5, 6
        out = normalize_batch_keys(keys)
        assert out.dtype == np.uint64
        assert out.tolist() == [5, 6]

    def test_wide_keys_stay_python_ints(self):
        keys = [1 << 100, (1 << 128) - 1]
        out = normalize_batch_keys(keys, width=128)
        assert out.dtype == object
        assert list(out) == keys
        # Integer numpy input widens to object too.
        out = normalize_batch_keys(
            np.array([4, 5], dtype=np.uint64), width=128
        )
        assert out.dtype == object and list(out) == [4, 5]

    def test_floats_raise_type_error(self):
        with pytest.raises(TypeError):
            normalize_batch_keys([1, 10.5])
        with pytest.raises(TypeError):
            normalize_batch_keys(np.array([1.0, 2.0]))
        with pytest.raises(TypeError):
            normalize_batch_keys(["10.0.0.1"])

    def test_empty_batch(self):
        assert len(normalize_batch_keys([])) == 0


@pytest.fixture(scope="module")
def conformance_rib():
    rib, _ = generate_table(n_prefixes=600, n_nexthops=8, seed=23)
    return rib


@pytest.fixture(scope="module")
def conformance_keys():
    return [int(k) for k in random_addresses(256, seed=23)]


@pytest.mark.parametrize("name", sorted(registry.available()))
def test_every_algorithm_accepts_all_batch_spellings(
    name, conformance_rib, conformance_keys
):
    structure = registry.get(name).from_rib(conformance_rib)
    expected = [structure.lookup(key) for key in conformance_keys]

    object_keys = np.empty(len(conformance_keys), dtype=object)
    for i, key in enumerate(conformance_keys):
        object_keys[i] = key
    spellings = {
        "list": conformance_keys,
        "tuple": tuple(conformance_keys),
        "uint64": np.array(conformance_keys, dtype=np.uint64),
        "uint32": np.array(conformance_keys, dtype=np.uint32),
        "int64": np.array(conformance_keys, dtype=np.int64),
        "object": object_keys,
    }
    for spelling, keys in spellings.items():
        results = structure.lookup_batch(keys)
        assert isinstance(results, np.ndarray), spelling
        assert results.tolist() == expected, (
            f"{name}: lookup_batch({spelling}) disagrees with scalar lookup"
        )


@pytest.mark.parametrize("name", sorted(registry.available()))
def test_every_algorithm_rejects_float_keys(name, conformance_rib):
    structure = registry.get(name).from_rib(conformance_rib)
    with pytest.raises(TypeError):
        structure.lookup_batch([1.5, 2.5])


def test_supports_batch_reflects_override(conformance_rib):
    vectorised = registry.get("Poptrie18").from_rib(conformance_rib)
    assert vectorised.supports_batch()
    # The scalar fallback in the base class is not an override.
    scalar = registry.get("Patricia").from_rib(conformance_rib)
    assert scalar.lookup_batch([0]).dtype == np.uint32
    if type(scalar)._lookup_batch is LookupStructure._lookup_batch:
        assert not scalar.supports_batch()
