"""Unit tests for the virtual memory map and access traces."""

from repro.mem.layout import PAGE, AccessTrace, MemoryMap

import pytest


class TestMemoryMap:
    def test_regions_are_page_aligned(self):
        mm = MemoryMap()
        r1 = mm.add_region("a", element_size=2, length=100)
        r2 = mm.add_region("b", element_size=8, length=10)
        assert r1.base % PAGE == 0
        assert r2.base % PAGE == 0

    def test_regions_do_not_overlap(self):
        mm = MemoryMap()
        r1 = mm.add_region("a", element_size=4, length=10_000)
        r2 = mm.add_region("b", element_size=4, length=10_000)
        assert r2.base >= r1.base + r1.size_bytes

    def test_duplicate_name_rejected(self):
        mm = MemoryMap()
        mm.add_region("a", 1, 1)
        with pytest.raises(ValueError):
            mm.add_region("a", 1, 1)

    def test_element_addressing(self):
        mm = MemoryMap()
        region = mm.add_region("a", element_size=8, length=100)
        assert region.address(5) == region.base + 40
        assert region.access(5) == (region.base + 40, 8)

    def test_resize_shrink_in_place(self):
        mm = MemoryMap()
        region = mm.add_region("a", 4, 100)
        base = region.base
        resized = mm.resize_region("a", 50)
        assert resized.base == base

    def test_resize_grow_in_place_when_room(self):
        mm = MemoryMap()
        region = mm.add_region("a", 4, 10)  # guard page leaves slack
        base = region.base
        resized = mm.resize_region("a", 100)
        assert resized.base == base
        assert resized.length == 100

    def test_resize_moves_when_blocked(self):
        mm = MemoryMap()
        mm.add_region("a", 4, 1000)
        blocker = mm.add_region("b", 4, 10)
        moved = mm.resize_region("a", 100_000)
        assert moved.base > blocker.base
        assert mm.regions["a"] is moved

    def test_total_bytes(self):
        mm = MemoryMap()
        mm.add_region("a", 2, 10)
        mm.add_region("b", 4, 10)
        assert mm.total_bytes() == 60


class TestAccessTrace:
    def test_collects_reads_in_order(self):
        mm = MemoryMap()
        region = mm.add_region("a", 4, 10)
        trace = AccessTrace()
        trace.read(region, 0)
        trace.read(region, 3)
        assert trace.accesses == [(region.base, 4), (region.base + 12, 4)]

    def test_work_accumulates(self):
        trace = AccessTrace()
        trace.work(3)
        trace.work(4)
        assert trace.instructions == 7

    def test_mispredicts_accumulate(self):
        trace = AccessTrace()
        trace.mispredict(0.5)
        trace.mispredict(0.5)
        assert trace.mispredicts == 1.0

    def test_reset(self):
        mm = MemoryMap()
        region = mm.add_region("a", 4, 10)
        trace = AccessTrace()
        trace.read(region, 0)
        trace.work(5)
        trace.mispredict(0.3)
        trace.reset()
        assert trace.accesses == [] and trace.instructions == 0
        assert trace.mispredicts == 0.0
