"""Tests for Poptrie binary serialization and structural validation."""

import io
import random

import pytest

from tests.conftest import make_random_rib, random_keys

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.core.serialize import (
    CorruptSnapshot,
    dump_bytes,
    load,
    load_bytes,
    save,
    validate,
)
from repro.core.update import UpdatablePoptrie
from repro.net.prefix import Prefix
from repro.net.rib import Rib


@pytest.mark.parametrize(
    "config",
    [
        PoptrieConfig(s=18),
        PoptrieConfig(s=0),
        PoptrieConfig(s=16, use_leafvec=False),
        PoptrieConfig(s=16, leaf_bits=32),
        PoptrieConfig(k=2, s=0),
    ],
)
def test_roundtrip_preserves_lookups(bgp_rib, config):
    original = Poptrie.from_rib(bgp_rib, config)
    thawed = load_bytes(dump_bytes(original))
    for key in random_keys(4000, seed=1):
        assert thawed.lookup(key) == original.lookup(key)


def test_roundtrip_preserves_counts(bgp_rib):
    original = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
    thawed = load_bytes(dump_bytes(original))
    assert thawed.inode_count == original.inode_count
    assert thawed.leaf_count == original.leaf_count
    assert thawed.memory_bytes() == original.memory_bytes()


def test_roundtrip_ipv6():
    rib = make_random_rib(200, seed=2, width=128, lengths=[32, 48, 64])
    original = Poptrie.from_rib(rib, PoptrieConfig(s=16))
    thawed = load_bytes(dump_bytes(original))
    for key in random_keys(500, seed=3, width=128):
        assert thawed.lookup(key) == rib.lookup(key)


def test_empty_tables():
    for s in (0, 12):
        trie = Poptrie.from_rib(Rib(), PoptrieConfig(s=s))
        thawed = load_bytes(dump_bytes(trie))
        assert thawed.lookup(0x01020304) == 0


def test_fragmented_trie_compacts():
    """A heavily updated trie snapshots into a tight layout."""
    up = UpdatablePoptrie(PoptrieConfig(s=12))
    rng = random.Random(4)
    live = []
    for _ in range(600):
        if live and rng.random() < 0.45:
            up.withdraw(live.pop(rng.randrange(len(live))))
        else:
            length = rng.randint(1, 32)
            prefix = Prefix(rng.getrandbits(length) << (32 - length), length, 32)
            if not up.rib.get(prefix):
                live.append(prefix)
            up.announce(prefix, rng.randint(1, 30))
    thawed = load_bytes(dump_bytes(up.trie))
    assert thawed.allocated_bytes() <= up.trie.allocated_bytes()
    for key in random_keys(3000, seed=5):
        assert thawed.lookup(key) == up.rib.lookup(key)


def test_file_and_stream_io(bgp_rib, tmp_path):
    trie = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
    path = str(tmp_path / "fib.poptrie")
    written = save(trie, path)
    assert written > 0
    thawed = load(path)
    assert thawed.inode_count == trie.inode_count

    buffer = io.BytesIO()
    save(trie, buffer)
    buffer.seek(0)
    assert load(buffer).leaf_count == trie.leaf_count


class TestCorruption:
    def _blob(self, bgp_rib):
        return dump_bytes(Poptrie.from_rib(bgp_rib, PoptrieConfig(s=12)))

    def test_bad_magic(self, bgp_rib):
        blob = bytearray(self._blob(bgp_rib))
        blob[0] ^= 0xFF
        with pytest.raises(CorruptSnapshot):
            load_bytes(bytes(blob))

    def test_truncation(self, bgp_rib):
        blob = self._blob(bgp_rib)
        with pytest.raises(CorruptSnapshot):
            load_bytes(blob[: len(blob) // 2])

    def test_bit_flip_detected_by_crc(self, bgp_rib):
        blob = bytearray(self._blob(bgp_rib))
        blob[len(blob) // 2] ^= 0x01
        with pytest.raises(CorruptSnapshot):
            load_bytes(bytes(blob))

    def test_empty_input(self):
        with pytest.raises(CorruptSnapshot):
            load_bytes(b"")

    def test_corrupt_snapshot_is_the_typed_error(self, bgp_rib):
        from repro.errors import ReproError, SnapshotFormatError

        assert CorruptSnapshot is SnapshotFormatError
        assert issubclass(CorruptSnapshot, ReproError)
        assert issubclass(CorruptSnapshot, ValueError)  # backward compat

    def test_truncation_has_precise_diagnostic(self, bgp_rib):
        blob = self._blob(bgp_rib)
        with pytest.raises(CorruptSnapshot, match="truncated"):
            load_bytes(blob[:10])

    def test_bad_header_values_rejected(self, bgp_rib):
        """A CRC-valid snapshot with nonsense config fields is rejected
        with a header diagnostic, not a raw ValueError from PoptrieConfig."""
        import struct
        import zlib

        from repro.core.serialize import MAGIC, _HEADER

        blob = self._blob(bgp_rib)
        header = bytearray(blob[len(MAGIC) : len(MAGIC) + _HEADER.size])
        header[0:4] = struct.pack("<I", 63)  # k=63 is structurally absurd
        body = MAGIC + bytes(header) + blob[len(MAGIC) + _HEADER.size : -4]
        blob = body + struct.pack("<I", zlib.crc32(body))
        with pytest.raises(CorruptSnapshot, match="invalid snapshot header"):
            load_bytes(blob)


class TestValidate:
    def test_fresh_trie_validates(self, bgp_rib):
        validate(Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16)))

    def test_detects_out_of_bounds_child(self, bgp_rib):
        trie = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
        # Corrupt a node with children to point its block out of bounds.
        for index, vector, _, _, _ in trie.iter_nodes():
            if vector:
                trie.base1[index] = len(trie.vec) + 100
                break
        with pytest.raises(CorruptSnapshot):
            validate(trie)

    def test_detects_broken_leafvec_run(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=0))
        trie.lvec[trie.root_index] = 0  # no run starts at all
        with pytest.raises(CorruptSnapshot):
            validate(trie)
