"""Property-based cross-structure agreement.

The strongest integration invariant in the library: for *any* route
table, all eleven lookup structures return the same FIB index as the
reference radix tree for every address.  Hypothesis drives the table
shapes; each failure would shrink to a minimal route set.
"""

from hypothesis import given, settings, strategies as st

from tests.conftest import boundary_keys, make_random_rib

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.lookup.bloom import BloomLpm
from repro.lookup.bsearch_lengths import BinarySearchLengths
from repro.lookup.dir24_8 import Dir24_8
from repro.lookup.dxr import Dxr
from repro.lookup.lulea import Lulea
from repro.lookup.multibit import MultibitTrie
from repro.lookup.patricia import PatriciaTrie
from repro.lookup.sail import Sail
from repro.lookup.treebitmap import TreeBitmap

BUILDERS = [
    ("Poptrie18", lambda rib: Poptrie.from_rib(rib, PoptrieConfig(s=18))),
    ("Poptrie0", lambda rib: Poptrie.from_rib(rib, PoptrieConfig(s=0))),
    ("TreeBitmap4", lambda rib: TreeBitmap.from_rib(rib, stride=4)),
    ("TreeBitmap6", lambda rib: TreeBitmap.from_rib(rib, stride=6)),
    ("D16R", lambda rib: Dxr.from_rib(rib, s=16)),
    ("D18R", lambda rib: Dxr.from_rib(rib, s=18)),
    ("SAIL", Sail.from_rib),
    ("DIR-24-8", Dir24_8.from_rib),
    ("Multibit", lambda rib: MultibitTrie.from_rib(rib, k=6)),
    ("Patricia", PatriciaTrie.from_rib),
    ("BSearch", BinarySearchLengths.from_rib),
    ("Bloom", BloomLpm.from_rib),
    ("Lulea", Lulea.from_rib),
]


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1_000_000),
    n_routes=st.integers(min_value=1, max_value=120),
)
def test_every_structure_agrees_with_radix(seed, n_routes):
    rib = make_random_rib(n_routes, seed=seed, width=32, max_nexthop=25)
    structures = [(name, build(rib)) for name, build in BUILDERS]
    keys = boundary_keys(rib)
    # Plus a few adversarial constants.
    keys += [0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF]
    for key in keys:
        expected = rib.lookup(key)
        for name, structure in structures:
            got = structure.lookup(key)
            assert got == expected, (
                f"{name} disagrees at {key:#010x}: {got} != {expected} "
                f"(seed={seed}, n={n_routes})"
            )
