"""Tests for the fault-tolerant control plane: transactions, verification
and fault injection (see docs/ROBUSTNESS.md).

The acceptance bar for the subsystem is the fault sweep at the bottom:
500-update streams with faults injected at every site in turn; after every
aborted-and-rolled-back or degraded update the structure must pass full
invariant verification *and* agree with the shadow radix tree on a
1,000-address sample.
"""

import random

import pytest

from tests.conftest import make_random_rib

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data.updates import Update, generate_update_stream
from repro.errors import (
    InjectedFault,
    SnapshotFormatError,
    UpdateRejectedError,
    VerificationError,
)
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.robust import faults
from repro.robust.faults import FaultPlan
from repro.robust.txn import TransactionalPoptrie
from repro.robust.verify import verify_poptrie


def fingerprint(up):
    """Everything a failed update must leave untouched."""
    trie = up.trie
    return (
        trie.node_alloc.snapshot(),
        trie.leaf_alloc.snapshot(),
        trie.inode_count,
        trie.leaf_count,
        up.generation,
        sorted((p.text, h) for p, h in up.rib.routes()),
    )


def make_rib(n=500, seed=11):
    return make_random_rib(n, seed=seed)


# ---------------------------------------------------------------------------
# FaultPlan mechanics
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_disarmed_by_default(self):
        assert faults.active_plan() is None
        faults.fault_point("alloc")  # must be a no-op

    def test_context_arms_and_disarms(self):
        with FaultPlan(alloc_fail_at=1000) as plan:
            assert faults.active_plan() is plan
        assert faults.active_plan() is None

    def test_disarms_after_exception(self):
        with pytest.raises(RuntimeError):
            with FaultPlan(alloc_fail_at=1000):
                raise RuntimeError("boom")
        assert faults.active_plan() is None

    def test_fail_at_fires_exactly_once(self):
        with FaultPlan(alloc_fail_at=3) as plan:
            faults.fault_point("alloc")
            faults.fault_point("alloc")
            with pytest.raises(InjectedFault, match="injected fault at alloc #3"):
                faults.fault_point("alloc")
            faults.fault_point("alloc")  # count 4: no longer fires
        assert plan.fired == [("alloc", 3)]
        assert plan.counters["alloc"] == 4

    def test_fail_every_fires_periodically(self):
        fired = 0
        with FaultPlan(build_fail_every=2) as plan:
            for _ in range(6):
                try:
                    faults.fault_point("build")
                except InjectedFault:
                    fired += 1
        assert fired == 3
        assert plan.fired == [("build", 2), ("build", 4), ("build", 6)]

    def test_sites_count_independently(self):
        with FaultPlan(alloc_fail_at=2, build_fail_at=1) as plan:
            faults.fault_point("alloc")
            with pytest.raises(InjectedFault):
                faults.fault_point("build")
            with pytest.raises(InjectedFault):
                faults.fault_point("alloc")
        assert plan.fired == [("build", 1), ("alloc", 2)]

    def test_corrupt_update_is_deterministic(self):
        update = Update("A", Prefix.parse("10.0.0.0/8"), 3)

        def corruptions(seed):
            out = []
            with FaultPlan(corrupt_update_every=1, seed=seed):
                for _ in range(8):
                    out.append(faults.mangle_update(update))
            return out

        assert corruptions(7) == corruptions(7)
        assert corruptions(7) != corruptions(8)
        # Every corruption is caught somewhere in the validation pipeline
        # (message level or the update target) before any state changes.
        up = TransactionalPoptrie(PoptrieConfig(s=0))
        for mangled in corruptions(7):
            assert mangled != update
            report = up.apply_stream([mangled], on_error="skip")
            assert report.rejected == 1

    def test_mangle_update_passthrough_when_disarmed(self):
        update = Update("A", Prefix.parse("10.0.0.0/8"), 3)
        assert faults.mangle_update(update) is update

    def test_mangle_snapshot_truncates(self):
        with FaultPlan(truncate_snapshot=16) as plan:
            assert faults.mangle_snapshot(b"x" * 100) == b"x" * 84
        assert plan.fired == [("snapshot", 1)]
        assert faults.mangle_snapshot(b"x" * 100) == b"x" * 100  # disarmed


# ---------------------------------------------------------------------------
# Invariant verification
# ---------------------------------------------------------------------------


class TestVerifier:
    @pytest.mark.parametrize("s", [0, 16])
    def test_healthy_trie_passes(self, s):
        rib = make_rib()
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=s))
        report = verify_poptrie(trie, rib, samples=500)
        assert report.nodes_checked == trie.inode_count
        assert report.leaves_checked == trie.leaf_count
        assert report.samples_checked > 500
        assert "cross-checked" in report.summary()

    def test_poptrie_method_is_the_same_check(self):
        rib = make_rib()
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        assert trie.verify(rib).nodes_checked == trie.inode_count

    def test_healthy_updated_trie_passes(self):
        rib = make_rib()
        up = TransactionalPoptrie(PoptrieConfig(s=16), rib=rib)
        for update in generate_update_stream(rib, 200, seed=5):
            if update.kind == "A":
                up.announce(update.prefix, update.nexthop)
            else:
                up.withdraw(update.prefix)
        up.trie.verify(up.rib, samples=500)

    def test_detects_vector_leafvec_overlap(self):
        rib = make_rib(100)
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=0))
        for index, vector, _, _, _ in trie.iter_nodes():
            if vector:
                trie.lvec[index] |= vector & -vector  # set a vector bit in lvec
                break
        with pytest.raises(VerificationError, match="overlap"):
            verify_poptrie(trie)

    def test_detects_missing_leafvec_run(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=0))
        trie.lvec[trie.root_index] = 0
        with pytest.raises(VerificationError, match="no leafvec run start"):
            verify_poptrie(trie)

    def test_detects_out_of_bounds_child_block(self):
        rib = make_rib(100)
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        for index, vector, _, _, _ in trie.iter_nodes():
            if vector:
                trie.base1[index] = 1 << 30
                break
        with pytest.raises(VerificationError, match="overflows"):
            verify_poptrie(trie)

    def test_detects_leaked_block(self):
        rib = make_rib(100)
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        trie.node_alloc.alloc(1 << trie.k)  # live but unreachable
        with pytest.raises(VerificationError, match="leak"):
            verify_poptrie(trie)

    def test_detects_use_after_free(self):
        rib = make_rib(100)
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        live = trie.node_alloc.live_blocks()
        offset = max(live)  # free a block the structure still references
        trie.node_alloc.free(offset)
        with pytest.raises(VerificationError, match="use-after-free|leak"):
            verify_poptrie(trie)

    def test_detects_count_drift(self):
        rib = make_rib(100)
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        trie.inode_count += 1
        with pytest.raises(VerificationError, match="inode_count"):
            verify_poptrie(trie)

    def test_detects_semantic_divergence(self):
        rib = make_rib(100)  # next hops are <= 50
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=0))
        # With s=0 every lookup terminates in a leaf read, so poisoning the
        # leaf values with an index no route uses guarantees divergence on
        # the very first sampled address — structurally the trie is intact.
        for i in range(len(trie.leaves)):
            trie.leaves[i] = 60
        verify_poptrie(trie)  # structure alone still passes
        with pytest.raises(VerificationError, match="RIB says"):
            verify_poptrie(trie, rib, samples=100)

    def test_rejects_width_mismatch(self):
        trie = Poptrie.from_rib(Rib(), PoptrieConfig(s=0))
        with pytest.raises(VerificationError, match="width"):
            verify_poptrie(trie, Rib(width=128))


# ---------------------------------------------------------------------------
# Transactions: rollback exactness, degradation, thresholds
# ---------------------------------------------------------------------------


class TestTransactions:
    def _up(self, **kwargs):
        rib = make_rib(400, seed=21)
        return TransactionalPoptrie(PoptrieConfig(s=16), rib=rib, **kwargs)

    @pytest.mark.parametrize("plan_kwargs", [
        {"alloc_fail_at": 1},
        {"alloc_fail_at": 2},
        {"build_fail_at": 1},
        {"build_fail_at": 2},
    ])
    def test_rollback_restores_exact_state(self, plan_kwargs):
        up = self._up(fallback_rebuild=False)
        before = fingerprint(up)
        with FaultPlan(**plan_kwargs) as plan:
            with pytest.raises(InjectedFault):
                up.announce(Prefix.parse("203.0.113.0/24"), 9)
        assert plan.fired, "the plan must actually have fired"
        assert fingerprint(up) == before
        assert up.txn_stats.rollbacks == 1
        up.trie.verify(up.rib, samples=300)

    def test_rollback_restores_withdraw(self):
        up = self._up(fallback_rebuild=False)
        prefix, _ = next(iter(up.rib.routes()))
        before = fingerprint(up)
        with FaultPlan(build_fail_at=1):
            with pytest.raises(InjectedFault):
                up.withdraw(prefix)
        assert fingerprint(up) == before
        up.trie.verify(up.rib, samples=300)

    def test_lookups_unchanged_after_aborted_update(self):
        """Deterministic form of the concurrency guarantee: an aborted
        update is not observable through the read path at all."""
        up = self._up(fallback_rebuild=False)
        rng = random.Random(6)
        sample = [rng.getrandbits(32) for _ in range(2000)]
        before = [up.lookup(key) for key in sample]
        with FaultPlan(alloc_fail_at=1):
            with pytest.raises(InjectedFault):
                up.announce(Prefix.parse("198.51.100.0/24"), 4)
        assert [up.lookup(key) for key in sample] == before

    def test_fallback_rebuild_services_the_update(self):
        up = self._up()
        prefix = Prefix.parse("203.0.113.0/24")
        with FaultPlan(build_fail_at=1):
            up.announce(prefix, 9)
        assert up.txn_stats.fallback_rebuilds == 1
        assert up.lookup(Prefix.parse("203.0.113.5/32").value) == 9
        up.trie.verify(up.rib, samples=300)

    def test_rejection_precedes_transaction(self):
        up = self._up()
        before = fingerprint(up)
        with pytest.raises(UpdateRejectedError):
            up.announce(Prefix.parse("10.0.0.0/8"), 1 << 20)
        with pytest.raises(UpdateRejectedError):
            up.withdraw(Prefix.parse("203.0.113.0/27"))
        assert fingerprint(up) == before
        assert up.txn_stats.rejected == 2
        assert up.txn_stats.rollbacks == 0

    def test_threshold_degrades_to_rebuild(self):
        up = self._up(rebuild_threshold=0)
        generation = up.generation
        up.announce(Prefix.parse("203.0.113.0/24"), 9)
        assert up.txn_stats.threshold_rebuilds == 1
        assert up.txn_stats.commits == 0
        assert up.generation == generation + 1
        assert up.lookup(Prefix.parse("203.0.113.5/32").value) == 9
        up.trie.verify(up.rib, samples=300)

    def test_generous_threshold_stays_incremental(self):
        up = self._up(rebuild_threshold=1 << 20)
        up.announce(Prefix.parse("203.0.113.0/24"), 9)
        assert up.txn_stats.threshold_rebuilds == 0
        assert up.txn_stats.commits == 1

    def test_persistent_fault_propagates_with_state_intact(self):
        """If the rebuild fails too, the pre-update state survives."""
        up = self._up()
        before = fingerprint(up)
        with FaultPlan(alloc_fail_every=1):  # every allocation fails
            with pytest.raises(InjectedFault):
                up.announce(Prefix.parse("203.0.113.0/24"), 9)
        assert fingerprint(up) == before
        up.trie.verify(up.rib, samples=300)


# ---------------------------------------------------------------------------
# Stream replay
# ---------------------------------------------------------------------------


class TestApplyStream:
    def test_clean_stream(self):
        rib = make_rib(400, seed=23)
        up = TransactionalPoptrie(PoptrieConfig(s=16), rib=rib)
        report = up.apply_stream(generate_update_stream(rib, 200, seed=8))
        assert report.applied == 200 and report.rejected == 0
        assert up.txn_stats.commits >= 200
        up.trie.verify(up.rib, samples=500)

    def test_corrupted_messages_skipped_and_reported(self):
        rib = make_rib(400, seed=24)
        up = TransactionalPoptrie(PoptrieConfig(s=16), rib=rib)
        stream = generate_update_stream(rib, 120, seed=9)
        with FaultPlan(corrupt_update_every=10, seed=1) as plan:
            report = up.apply_stream(stream, on_error="skip")
        assert len(plan.fired) == 12
        assert report.rejected == 12 and report.applied == 108
        assert [position for position, _ in report.errors] == list(
            range(10, 121, 10)
        )
        for _, message in report.errors:
            assert "UpdateRejectedError" in message or "outside" in message
        up.trie.verify(up.rib, samples=500)

    def test_raise_mode_stops_at_first_fault(self):
        rib = make_rib(400, seed=25)
        up = TransactionalPoptrie(
            PoptrieConfig(s=16), rib=rib, fallback_rebuild=False
        )
        stream = generate_update_stream(rib, 50, seed=10)
        before = fingerprint(up)
        with FaultPlan(corrupt_update_at=1, seed=2):
            with pytest.raises(UpdateRejectedError):
                up.apply_stream(stream, on_error="raise")
        assert fingerprint(up) == before

    def test_unknown_kind_rejected(self):
        up = TransactionalPoptrie(PoptrieConfig(s=0))
        bad = Update("X", Prefix.parse("10.0.0.0/8"), 1)
        report = up.apply_stream([bad], on_error="skip")
        assert report.rejected == 1
        assert "unknown update kind" in report.errors[0][1]

    def test_bad_on_error_value(self):
        up = TransactionalPoptrie(PoptrieConfig(s=0))
        with pytest.raises(ValueError, match="on_error"):
            up.apply_stream([], on_error="ignore")


# ---------------------------------------------------------------------------
# Snapshot fault injection
# ---------------------------------------------------------------------------


class TestSnapshotFaults:
    def test_truncated_snapshot_rejected_on_load(self, tmp_path):
        from repro.parallel.image import load_structure, save_structure

        rib = make_rib(100)
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=12))
        path = str(tmp_path / "fib.poptrie")
        with FaultPlan(truncate_snapshot=64):
            save_structure(trie, path)
        with pytest.raises(SnapshotFormatError):
            load_structure(path)

    def test_save_is_clean_when_disarmed(self, tmp_path):
        from repro.parallel.image import load_structure, save_structure

        rib = make_rib(100)
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=12))
        path = str(tmp_path / "fib.poptrie")
        save_structure(trie, path)
        assert load_structure(path).inode_count == trie.inode_count


# ---------------------------------------------------------------------------
# The acceptance-criteria fault sweep: 500 updates per injection site.
# ---------------------------------------------------------------------------


SWEEP_SITES = [
    pytest.param({"alloc_fail_every": 97}, False, id="alloc-rollback"),
    pytest.param({"alloc_fail_every": 97}, True, id="alloc-degrade"),
    pytest.param({"build_fail_every": 101}, False, id="build-rollback"),
    pytest.param({"build_fail_every": 101}, True, id="build-degrade"),
    pytest.param({"corrupt_update_every": 29}, True, id="corrupt-message"),
]


@pytest.mark.parametrize("plan_kwargs,fallback", SWEEP_SITES)
def test_fault_sweep_500_updates(plan_kwargs, fallback):
    """For each injection site: drive a 500-update stream with periodic
    faults; after every aborted-and-rolled-back or degraded update the
    structure passes full verification and a 1,000-address sample agrees
    with the shadow radix tree.  The stream must also make progress (the
    faults are periodic, not persistent)."""
    rib = make_rib(400, seed=42)
    up = TransactionalPoptrie(
        PoptrieConfig(s=16), rib=rib, fallback_rebuild=fallback
    )
    stream = generate_update_stream(rib, 500, seed=42)
    rng = random.Random(1234)
    sample = [rng.getrandbits(32) for _ in range(1000)]

    aborted = applied = checked = 0
    with FaultPlan(**plan_kwargs, seed=3) as plan:
        for update in stream:
            degradations = (
                up.txn_stats.fallback_rebuilds + up.txn_stats.threshold_rebuilds
            )
            mangled = faults.mangle_update(update)
            try:
                if getattr(mangled, "kind", None) == "A":
                    up.announce(mangled.prefix, mangled.nexthop)
                elif getattr(mangled, "kind", None) == "W":
                    up.withdraw(mangled.prefix)
                else:
                    raise UpdateRejectedError(f"unknown kind {mangled.kind!r}")
            except (InjectedFault, UpdateRejectedError):
                aborted += 1
            else:
                applied += 1
            degraded = (
                up.txn_stats.fallback_rebuilds + up.txn_stats.threshold_rebuilds
            ) > degradations
            if aborted + applied == 1 or degraded or checked < aborted:
                # Verify after every aborted or degraded update (and once
                # at the start); healthy commits are covered by the final
                # full verification below.
                checked = aborted
                up.trie.verify(up.rib, samples=0)
                for key in sample:
                    assert up.lookup(key) == up.rib.lookup(key)

    assert plan.fired, "the sweep must actually have injected faults"
    assert aborted + applied == 500
    assert applied > 250, "periodic faults must not starve the stream"
    if fallback and "corrupt_update_every" not in plan_kwargs:
        assert (
            up.txn_stats.fallback_rebuilds + up.txn_stats.threshold_rebuilds > 0
        )
    report = up.trie.verify(up.rib, samples=1000)
    assert report.samples_checked >= 1000
