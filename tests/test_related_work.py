"""Tests for the Section 2 related-work baselines: Patricia trie,
binary search on prefix lengths (Waldvogel), and Bloom-filter LPM."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import boundary_keys, make_random_rib, random_keys

from repro.lookup.bloom import BloomFilter, BloomLpm
from repro.lookup.bsearch_lengths import BinarySearchLengths
from repro.lookup.patricia import PatriciaTrie
from repro.mem.layout import AccessTrace
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib


def rib_of(*routes):
    rib = Rib()
    for text, hop in routes:
        rib.insert(Prefix.parse(text), hop)
    return rib


class TestPatricia:
    def test_simple_lookup(self):
        trie = PatriciaTrie.from_rib(
            rib_of(("10.0.0.0/8", 1), ("10.1.0.0/16", 2))
        )
        assert trie.lookup(Prefix.parse("10.1.2.3/32").value) == 2
        assert trie.lookup(Prefix.parse("10.2.2.3/32").value) == 1
        assert trie.lookup(Prefix.parse("11.0.0.0/32").value) == NO_ROUTE

    def test_default_route(self):
        trie = PatriciaTrie.from_rib(rib_of(("0.0.0.0/0", 9)))
        assert trie.lookup(0xDEADBEEF) == 9

    def test_replace_route(self):
        trie = PatriciaTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), 1)
        trie.insert(Prefix.parse("10.0.0.0/8"), 5)
        assert trie.lookup(Prefix.parse("10.1.1.1/32").value) == 5
        assert len(trie) == 1

    def test_path_compression_bounds_nodes(self, bgp_rib):
        """The defining Patricia property: ≤ 2 nodes per route regardless
        of prefix length (the plain radix tree needs up to 32)."""
        trie = PatriciaTrie.from_rib(bgp_rib)
        assert trie.node_count <= 2 * len(trie)
        assert trie.memory_bytes() < bgp_rib.memory_bytes()

    def test_against_rib(self, bgp_rib):
        trie = PatriciaTrie.from_rib(bgp_rib)
        for key in boundary_keys(bgp_rib)[:3000] + random_keys(2000, seed=1):
            assert trie.lookup(key) == bgp_rib.lookup(key)

    def test_traced_matches_plain(self, bgp_rib):
        trie = PatriciaTrie.from_rib(bgp_rib)
        trace = AccessTrace()
        for key in random_keys(300, seed=2):
            trace.reset()
            assert trie.lookup_traced(key, trace) == trie.lookup(key)
            assert trace.accesses

    def test_ipv6(self):
        rib = make_random_rib(120, seed=3, width=128, lengths=[32, 48, 64])
        trie = PatriciaTrie.from_rib(rib)
        for key in boundary_keys(rib):
            assert trie.lookup(key) == rib.lookup(key)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_exhaustive_small(self, seed):
        rib = make_random_rib(35, seed=seed, width=8)
        trie = PatriciaTrie.from_rib(rib)
        for address in range(256):
            assert trie.lookup(address) == rib.lookup(address)


class TestBinarySearchLengths:
    def test_simple_lookup(self):
        s = BinarySearchLengths.from_rib(
            rib_of(("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("10.1.2.0/24", 3))
        )
        assert s.lookup(Prefix.parse("10.1.2.9/32").value) == 3
        assert s.lookup(Prefix.parse("10.1.9.9/32").value) == 2
        assert s.lookup(Prefix.parse("10.9.9.9/32").value) == 1
        assert s.lookup(Prefix.parse("11.0.0.0/32").value) == NO_ROUTE

    def test_default_route(self):
        s = BinarySearchLengths.from_rib(rib_of(("0.0.0.0/0", 7)))
        assert s.lookup(123456) == 7

    def test_markers_exist_for_deep_prefixes(self):
        # The /32's search path probes lengths 16 and 24, where no real
        # prefix of 10.5.* exists — markers must be deposited there.
        s = BinarySearchLengths.from_rib(
            rib_of(
                ("10.0.0.0/8", 1),
                ("10.1.0.0/16", 2),
                ("10.1.2.0/24", 3),
                ("10.5.6.7/32", 4),
            )
        )
        assert s.marker_count >= 2
        assert s.lookup(Prefix.parse("10.5.6.7/32").value) == 4
        # The markers themselves resolve to the covering /8.
        assert s.lookup(Prefix.parse("10.5.6.0/32").value) == 1

    def test_marker_miss_never_loses_match(self):
        """The classic Waldvogel trap: a marker leads the search longer,
        the longer side misses, and the answer must come from the
        marker's precomputed BMP — not from backtracking."""
        s = BinarySearchLengths.from_rib(
            rib_of(
                ("10.0.0.0/8", 1),
                ("10.128.0.0/9", 2),
                ("10.128.0.0/30", 3),
            )
        )
        # Key inside the /9 but far from the /30: the /30's marker chain
        # pulls the search deep, which must still resolve to the /9.
        assert s.lookup(Prefix.parse("10.200.0.0/32").value) == 2

    def test_probe_count_is_logarithmic(self, bgp_rib):
        s = BinarySearchLengths.from_rib(bgp_rib)
        trace = AccessTrace()
        distinct = len(s.lengths)
        bound = distinct.bit_length() + 1
        for key in random_keys(200, seed=4):
            trace.reset()
            s.lookup_traced(key, trace)
            assert len(trace.accesses) <= bound

    def test_against_rib(self, bgp_rib):
        s = BinarySearchLengths.from_rib(bgp_rib)
        for key in boundary_keys(bgp_rib)[:3000] + random_keys(2000, seed=5):
            assert s.lookup(key) == bgp_rib.lookup(key)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_exhaustive_small(self, seed):
        rib = make_random_rib(35, seed=seed, width=8)
        s = BinarySearchLengths.from_rib(rib)
        for address in range(256):
            assert s.lookup(address) == rib.lookup(address)


class TestBloomFilter:
    def test_no_false_negatives(self):
        f = BloomFilter(bits=256, hashes=3)
        for item in range(40):
            f.add(item)
        assert all(f.may_contain(item) for item in range(40))

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=0, hashes=1)

    def test_false_positive_rate_tracks_sizing(self):
        generous = BloomFilter(bits=4096, hashes=4)
        tight = BloomFilter(bits=128, hashes=4)
        for item in range(100):
            generous.add(item)
            tight.add(item)
        probes = range(10_000, 12_000)
        fp_generous = sum(generous.may_contain(i) for i in probes)
        fp_tight = sum(tight.may_contain(i) for i in probes)
        assert fp_generous < fp_tight


class TestBloomLpm:
    def test_simple_lookup(self):
        s = BloomLpm.from_rib(
            rib_of(("10.0.0.0/8", 1), ("10.1.0.0/16", 2))
        )
        assert s.lookup(Prefix.parse("10.1.2.3/32").value) == 2
        assert s.lookup(Prefix.parse("10.9.9.9/32").value) == 1
        assert s.lookup(Prefix.parse("11.0.0.0/32").value) == NO_ROUTE

    def test_default_route(self):
        s = BloomLpm.from_rib(rib_of(("0.0.0.0/0", 3)))
        assert s.lookup(99) == 3

    def test_against_rib(self, bgp_rib):
        s = BloomLpm.from_rib(bgp_rib)
        for key in boundary_keys(bgp_rib)[:2000] + random_keys(1500, seed=6):
            assert s.lookup(key) == bgp_rib.lookup(key)

    def test_false_positives_are_harmless_and_track_sizing(self, bgp_rib):
        tight = BloomLpm.from_rib(bgp_rib, bits_per_entry=6, hashes=3)
        generous = BloomLpm.from_rib(bgp_rib, bits_per_entry=24, hashes=5)
        for key in random_keys(3000, seed=7):
            expected = bgp_rib.lookup(key)
            # Correct regardless of any false positives.
            assert tight.lookup(key) == expected
            assert generous.lookup(key) == expected
        # Larger filters waste fewer off-chip probes — the Dharmapurikar
        # trade-off the structure exists to expose.  Per-lookup wasted
        # probes is the metric the sizing controls.
        assert (
            generous.false_positives_per_lookup()
            <= tight.false_positives_per_lookup()
        )
        assert generous.false_positives_per_lookup() < 0.05

    def test_traced_matches_plain(self, bgp_rib):
        s = BloomLpm.from_rib(bgp_rib)
        trace = AccessTrace()
        for key in random_keys(300, seed=8):
            trace.reset()
            assert s.lookup_traced(key, trace) == s.lookup(key)

    def test_memory_includes_filters(self, bgp_rib):
        s = BloomLpm.from_rib(bgp_rib)
        filters = sum(f.size_bytes() for f in s.filters.values())
        assert s.memory_bytes() > filters > 0
