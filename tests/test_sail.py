"""Tests for the SAIL_L baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import boundary_keys, make_random_rib, random_keys

from repro.errors import StructuralLimitError
from repro.lookup.sail import _CHUNK_FLAG, Sail
from repro.mem.layout import AccessTrace
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib


def rib_of(*routes):
    rib = Rib()
    for text, hop in routes:
        rib.insert(Prefix.parse(text), hop)
    return rib


class TestBasics:
    def test_level16_hit(self):
        sail = Sail.from_rib(rib_of(("10.0.0.0/8", 1)))
        assert sail.lookup(Prefix.parse("10.1.1.1/32").value) == 1
        assert len(sail.bcn24) == 0  # no deeper prefixes, no chunks

    def test_level24_hit(self):
        sail = Sail.from_rib(rib_of(("10.0.0.0/8", 1), ("10.0.1.0/24", 2)))
        assert sail.lookup(Prefix.parse("10.0.1.7/32").value) == 2
        assert sail.lookup(Prefix.parse("10.0.2.7/32").value) == 1

    def test_level32_hit(self):
        sail = Sail.from_rib(rib_of(("10.0.0.0/24", 1), ("10.0.0.128/25", 2)))
        assert sail.lookup(Prefix.parse("10.0.0.200/32").value) == 2
        assert sail.lookup(Prefix.parse("10.0.0.100/32").value) == 1
        assert len(sail.n32) == 256

    def test_miss(self):
        sail = Sail.from_rib(rib_of(("10.0.0.0/8", 1)))
        assert sail.lookup(Prefix.parse("11.0.0.0/32").value) == NO_ROUTE

    def test_chunk_ids_are_one_based(self):
        sail = Sail.from_rib(rib_of(("10.0.1.0/24", 2)))
        entry = sail.bcn16[0x0A00]
        assert entry & _CHUNK_FLAG
        assert (entry & (_CHUNK_FLAG - 1)) == 1

    def test_rejects_ipv6(self):
        rib = Rib(width=128)
        rib.insert(Prefix.parse("2001:db8::/32"), 1)
        with pytest.raises(ValueError):
            Sail.from_rib(rib)


class TestEquivalence:
    def test_against_rib(self, bgp_rib):
        sail = Sail.from_rib(bgp_rib)
        for key in boundary_keys(bgp_rib)[:4000] + random_keys(3000, seed=6):
            assert sail.lookup(key) == bgp_rib.lookup(key)

    def test_batch_matches_scalar(self, bgp_rib):
        sail = Sail.from_rib(bgp_rib)
        keys = np.array(random_keys(20_000, seed=7), dtype=np.uint64)
        batch = sail.lookup_batch(keys)
        for i in range(0, len(keys), 113):
            assert batch[i] == sail.lookup(int(keys[i]))

    def test_traced_matches_plain(self, bgp_rib):
        sail = Sail.from_rib(bgp_rib)
        trace = AccessTrace()
        for key in random_keys(400, seed=8):
            trace.reset()
            assert sail.lookup_traced(key, trace) == sail.lookup(key)

    def test_trace_access_count_tracks_level(self):
        sail = Sail.from_rib(rib_of(("10.0.0.0/24", 1), ("10.0.0.128/25", 2)))
        trace = AccessTrace()
        sail.lookup_traced(Prefix.parse("10.0.0.200/32").value, trace)
        assert len(trace.accesses) == 3  # levels 16, 24, 32
        trace.reset()
        sail.lookup_traced(Prefix.parse("11.0.0.0/32").value, trace)
        assert len(trace.accesses) == 1

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_tables(self, seed):
        rib = make_random_rib(80, seed=seed, width=32, max_nexthop=12)
        sail = Sail.from_rib(rib)
        for key in boundary_keys(rib):
            assert sail.lookup(key) == rib.lookup(key)


class TestStructuralLimits:
    def test_chunk_identifier_limit(self, monkeypatch):
        import repro.lookup.sail as sail_module

        monkeypatch.setattr(sail_module, "MAX_CHUNKS", 3)
        rib = rib_of(
            ("10.0.1.0/24", 1), ("10.1.1.0/24", 2), ("10.2.1.0/24", 3)
        )
        with pytest.raises(StructuralLimitError):
            Sail.from_rib(rib)

    def test_nexthop_width_limit(self):
        rib = rib_of(("10.0.0.0/8", 40_000))
        with pytest.raises(StructuralLimitError):
            Sail.from_rib(rib)


class TestMemory:
    def test_footprint_formula(self, bgp_rib):
        sail = Sail.from_rib(bgp_rib)
        expected = 2 * (len(sail.bcn16) + len(sail.bcn24) + len(sail.n32))
        assert sail.memory_bytes() == expected

    def test_chunked_levels_scale_with_deep_prefixes(self):
        shallow = Sail.from_rib(rib_of(("10.0.0.0/8", 1)))
        deep = Sail.from_rib(
            rib_of(("10.0.0.0/8", 1), ("10.0.1.0/24", 2), ("11.0.1.0/24", 3))
        )
        assert deep.memory_bytes() > shallow.memory_bytes()
