"""Tests for the uncompressed multibit-trie baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import boundary_keys, make_random_rib, random_keys

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.lookup.multibit import MultibitTrie
from repro.mem.layout import AccessTrace
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib


class TestBasics:
    def test_simple_lookups(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        rib.insert(Prefix.parse("10.1.0.0/16"), 2)
        trie = MultibitTrie.from_rib(rib, k=6)
        assert trie.lookup(Prefix.parse("10.1.2.3/32").value) == 2
        assert trie.lookup(Prefix.parse("10.2.2.3/32").value) == 1
        assert trie.lookup(Prefix.parse("11.0.0.0/32").value) == NO_ROUTE

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            MultibitTrie(k=0, width=32)

    def test_name(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert MultibitTrie.from_rib(rib, k=4).name == "Multibit (k=4)"


class TestEquivalence:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_against_rib(self, bgp_rib, k):
        trie = MultibitTrie.from_rib(bgp_rib, k=k)
        for key in boundary_keys(bgp_rib)[:3000] + random_keys(2000, seed=k):
            assert trie.lookup(key) == bgp_rib.lookup(key)

    def test_ipv6(self):
        rib = make_random_rib(120, seed=7, width=128, lengths=[32, 48, 64])
        trie = MultibitTrie.from_rib(rib, k=6)
        for key in boundary_keys(rib):
            assert trie.lookup(key) == rib.lookup(key)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_exhaustive_small(self, seed):
        rib = make_random_rib(30, seed=seed, width=8)
        trie = MultibitTrie.from_rib(rib, k=4)
        for address in range(256):
            assert trie.lookup(address) == rib.lookup(address)

    def test_traced_matches_plain(self, bgp_rib):
        trie = MultibitTrie.from_rib(bgp_rib, k=6)
        trace = AccessTrace()
        for key in random_keys(300, seed=8):
            trace.reset()
            assert trie.lookup_traced(key, trace) == trie.lookup(key)
            assert trace.accesses


class TestCompressionStory:
    def test_poptrie_is_much_smaller_on_same_table(self, bgp_rib):
        """The ablation the baseline exists for: the identical logical trie,
        with and without Poptrie's compression."""
        multibit = MultibitTrie.from_rib(bgp_rib, k=6)
        poptrie = Poptrie.from_rib(bgp_rib, PoptrieConfig(k=6, s=0))
        assert poptrie.memory_bytes() < multibit.memory_bytes() / 3
        # Same number of trie levels, though: compression is free of depth.
        key = Prefix.parse("10.0.0.1/32").value
        assert poptrie.depth_of(key) >= 1

    def test_node_counts_match_poptrie_inodes(self, bgp_rib):
        """Both expand the same radix tree with the same stride, so the
        internal-node counts agree exactly."""
        multibit = MultibitTrie.from_rib(bgp_rib, k=6)
        poptrie = Poptrie.from_rib(bgp_rib, PoptrieConfig(k=6, s=0))
        assert multibit.node_count == poptrie.inode_count
