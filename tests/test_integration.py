"""Integration tests: cross-algorithm agreement and end-to-end flows.

The paper validated its implementations "by comparing all lookup results
of all algorithms for each address of the whole IPv4 space" (Section 4).
At Python speed we do the same on scaled datasets with exhaustive checks
over small universes plus boundary/random sampling at realistic sizes.
"""

import numpy as np
import pytest

from tests.conftest import boundary_keys, random_keys

from repro.lookup.registry import standard_roster
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.core.update import UpdatablePoptrie
from repro.data.datasets import load_dataset, load_dataset_v6
from repro.data.traffic import random_addresses, real_trace, repeated_addresses
from repro.data.updates import replay_updates, generate_update_stream
from repro.lookup.dxr import Dxr
from repro.net.rib import Rib


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("REAL-RENET", scale=0.01)


class TestCrossAlgorithmAgreement:
    def test_all_structures_agree_on_dataset(self, dataset):
        roster = standard_roster(dataset.rib)
        keys = boundary_keys(dataset.rib)[:8000] + random_keys(4000, seed=41)
        reference = dataset.rib
        for name, structure in roster.items():
            assert structure is not None, name
            mismatches = structure.verify_against(reference, keys)
            assert mismatches == [], f"{name}: {len(mismatches)} mismatches"

    def test_batch_engines_agree_with_rib(self, dataset):
        roster = standard_roster(dataset.rib)
        keys = random_addresses(5000, seed=7)
        expected = np.array(
            [dataset.rib.lookup(int(k)) for k in keys], dtype=np.uint32
        )
        for name, structure in roster.items():
            got = structure.lookup_batch(keys)
            assert (got == expected).all(), name

    @pytest.mark.parametrize(
        "name", ["RV-linx-p46", "RV-saopaulo-p2", "REAL-Tier1-B"]
    )
    def test_multiple_datasets(self, name):
        ds = load_dataset(name, scale=0.005)
        roster = standard_roster(ds.rib, names=("SAIL", "D18R", "Poptrie18"))
        keys = random_keys(2500, seed=hash(name) % 1000)
        for structure_name, structure in roster.items():
            assert structure is not None
            assert structure.verify_against(ds.rib, keys) == [], structure_name


class TestTrafficPatternsEndToEnd:
    def test_repeated_and_trace_patterns(self, dataset):
        trie = Poptrie.from_rib(dataset.rib, PoptrieConfig(s=16))
        for keys in (
            repeated_addresses(2000, seed=3),
            real_trace(dataset.rib, 2000, seed=4),
        ):
            for key in keys[:500]:
                assert trie.lookup(int(key)) == dataset.rib.lookup(int(key))


class TestIPv6EndToEnd:
    def test_poptrie_and_dxr_agree(self):
        ds = load_dataset_v6(scale=0.05)
        trie = Poptrie.from_rib(ds.rib, PoptrieConfig(s=16))
        dxr = Dxr.from_rib(ds.rib, s=16, modified=True)
        from repro.data.traffic import random_addresses_v6

        for key in random_addresses_v6(1500, seed=5):
            expected = ds.rib.lookup(key)
            assert trie.lookup(key) == expected
            assert dxr.lookup(key) == expected


class TestUpdateFlowEndToEnd:
    def test_stream_replay_keeps_all_structures_consistent(self, dataset):
        rib = Rib()
        for prefix, hop in dataset.rib.routes():
            rib.insert(prefix, hop)
        up = UpdatablePoptrie(PoptrieConfig(s=16), rib=rib)
        stream = generate_update_stream(dataset.rib, 300, seed=6)
        replay_updates(up, stream)
        # After the churn, the incremental structure equals a rebuild.
        rebuilt = Poptrie.from_rib(up.rib, up.trie.config)
        for key in random_keys(3000, seed=7):
            assert up.lookup(key) == rebuilt.lookup(key) == up.rib.lookup(key)


class TestCycleModelEndToEnd:
    def test_traced_cycles_for_whole_roster(self, dataset):
        from repro.cachesim import CycleModel, HASWELL_I7_4770K

        roster = standard_roster(dataset.rib, names=("SAIL", "D18R", "Poptrie18"))
        keys = random_keys(3000, seed=8)
        means = {}
        for name, structure in roster.items():
            model = CycleModel(HASWELL_I7_4770K)
            cycles = model.measure(structure, keys, warmup=1000)
            means[name] = cycles.mean()
        # All means are plausible CPU-cycle magnitudes.
        assert all(5 < mean < 500 for mean in means.values()), means
