"""Registry-wide conformance of the ``apply_updates`` surface.

Every registry engine — incremental Poptrie surgery and rebuild
fallbacks alike — must converge to the same table after the same update
stream: fingerprint-identical lookup results against a structure built
fresh from the mutated RIB.  The suite also pins the capability
accounting (``engine`` report field, ``stats()["update_engine"]``,
rejected-update counting) that the churn harness and the CLI rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.poptrie import Poptrie
from repro.data.synth import generate_table
from repro.data.traffic import random_addresses
from repro.data.updates import Update, generate_stream
from repro.errors import UpdateRejectedError
from repro.lookup import registry
from repro.net.prefix import Prefix

N_ROUTES = 300
N_UPDATES = 500
SEED = 31


@pytest.fixture(scope="module")
def probe_keys():
    return [int(k) for k in random_addresses(4096, seed=SEED)]


def _fresh_rib():
    rib, _ = generate_table(n_prefixes=N_ROUTES, n_nexthops=8, seed=SEED)
    return rib


@pytest.mark.parametrize("name", sorted(registry.available()))
def test_apply_updates_converges_to_rebuilt_table(name, probe_keys):
    """After a 500-update stream the updated structure answers exactly
    like a structure compiled from scratch off the mutated RIB."""
    entry = registry.get(name)
    rib = _fresh_rib()
    structure = entry.from_rib(rib)
    updates = generate_stream(rib, count=N_UPDATES, seed=SEED)

    report = structure.apply_updates(updates)
    assert report["applied"] + report["rejected"] == N_UPDATES
    assert report["applied"] > 0
    expected_engine = (
        "incremental" if entry.supports_incremental else "rebuild"
    )
    assert report["engine"] == expected_engine
    assert structure.stats()["update_engine"] == expected_engine
    assert structure.stats()["updates_applied"] == report["applied"]

    reference = entry.from_rib(structure.update_rib)
    got = structure.lookup_batch(probe_keys)
    want = reference.lookup_batch(probe_keys)
    mismatches = int((np.asarray(got) != np.asarray(want)).sum())
    assert mismatches == 0, (
        f"{name}: {mismatches}/{len(probe_keys)} lookups diverge from a "
        "fresh build of the updated RIB"
    )


@pytest.mark.parametrize("name", sorted(registry.available()))
def test_apply_updates_counts_rejections(name):
    """Withdrawing an absent prefix is rejected and counted, and the
    rest of the batch still lands."""
    entry = registry.get(name)
    rib = _fresh_rib()
    structure = entry.from_rib(rib)
    from repro.net.values import NO_ROUTE

    absent = Prefix.parse("203.0.113.0/27")
    assert rib.get(absent) == NO_ROUTE
    live = Prefix.parse("198.51.100.0/24")
    report = structure.apply_updates(
        [Update("W", absent), Update("A", live, 3)]
    )
    assert report["rejected"] == 1
    assert report["applied"] == 1
    assert structure.lookup(live.value) == structure.update_rib.lookup(
        live.value
    )


def test_apply_updates_requires_a_bound_rib():
    """A structure built outside the registry has no RIB binding and
    must refuse updates instead of silently dropping them."""
    rib = _fresh_rib()
    trie = Poptrie.from_rib(rib)
    with pytest.raises(UpdateRejectedError):
        trie.apply_updates([Update("A", Prefix.parse("10.0.0.0/8"), 1)])
    assert trie.bind_rib(rib) is trie
    report = trie.apply_updates(
        [Update("A", Prefix.parse("10.128.0.0/9"), 2)]
    )
    assert report["applied"] == 1
    assert trie.lookup(Prefix.parse("10.128.0.1/32").value) == 2


def test_incremental_engines_keep_identity_across_updates():
    """Incremental engines mutate in place: the object served behind a
    TableHandle keeps answering with fresh routes without a swap."""
    entry = registry.get("Poptrie18")
    assert entry.supports_incremental
    rib = _fresh_rib()
    structure = entry.from_rib(rib)
    before = id(structure)
    structure.apply_updates(generate_stream(rib, count=64, seed=SEED))
    assert id(structure) == before
    keys = [int(k) for k in random_addresses(300, seed=SEED)]
    assert structure.verify_against(rib, keys) == []
