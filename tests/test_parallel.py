"""Tests for the fork-based parallel measurement rig (Figure 8's tool)."""

import os

import numpy as np
import pytest

from repro.bench.parallel import measure_parallel_rate, scaling_curve
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.net.prefix import Prefix
from repro.net.rib import Rib


@pytest.fixture(scope="module")
def trie():
    rib = Rib()
    rib.insert(Prefix.parse("10.0.0.0/8"), 1)
    rib.insert(Prefix.parse("192.0.2.0/24"), 2)
    return Poptrie.from_rib(rib, PoptrieConfig(s=16))


@pytest.fixture(scope="module")
def keys():
    return np.arange(30_000, dtype=np.uint64) & np.uint64(0xFFFFFFFF)


class TestSingleWorker:
    def test_counts_and_positive_rate(self, trie, keys):
        result = measure_parallel_rate(trie, keys, workers=1, rounds=2)
        assert result.lookups == len(keys) * 2
        assert result.mlps > 0


@pytest.mark.skipif(not hasattr(os, "fork"), reason="requires POSIX fork")
class TestForkWorkers:
    def test_two_workers_complete(self, trie, keys):
        result = measure_parallel_rate(trie, keys, workers=2, rounds=1)
        assert result.lookups == len(keys)
        assert result.seconds > 0
        assert "x2" in result.name

    def test_scaling_curve_shape(self, trie, keys):
        curve = scaling_curve(trie, keys[:8000], max_workers=2)
        assert len(curve) == 2
        assert all(point.mlps > 0 for point in curve)
