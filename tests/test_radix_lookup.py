"""Tests for the Radix lookup adapter."""

from tests.conftest import random_keys

from repro.lookup.radix import RadixLookup
from repro.mem.layout import AccessTrace
from repro.net.prefix import Prefix
from repro.net.rib import Rib


class TestRadixLookup:
    def test_matches_rib(self, bgp_rib):
        radix = RadixLookup.from_rib(bgp_rib)
        for key in random_keys(3000, seed=1):
            assert radix.lookup(key) == bgp_rib.lookup(key)

    def test_traced_matches_plain(self, bgp_rib):
        radix = RadixLookup.from_rib(bgp_rib)
        trace = AccessTrace()
        for key in random_keys(500, seed=2):
            trace.reset()
            assert radix.lookup_traced(key, trace) == radix.lookup(key)

    def test_trace_depth_matches_radix_depth(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        radix = RadixLookup.from_rib(rib)
        trace = AccessTrace()
        radix.lookup_traced(Prefix.parse("10.1.1.1/32").value, trace)
        # root + 8 levels before the walk bottoms out
        assert len(trace.accesses) == 9

    def test_memory_tracks_rib(self, bgp_rib):
        radix = RadixLookup.from_rib(bgp_rib)
        assert radix.memory_bytes() == bgp_rib.memory_bytes()

    def test_live_structure_sees_updates(self):
        rib = Rib()
        radix = RadixLookup.from_rib(rib)
        rib.insert(Prefix.parse("10.0.0.0/8"), 5)
        key = Prefix.parse("10.0.0.1/32").value
        assert radix.lookup(key) == 5
        trace = AccessTrace()
        assert radix.lookup_traced(key, trace) == 5  # new nodes get numbered

    def test_default_batch_engine(self, bgp_rib):
        import numpy as np

        radix = RadixLookup.from_rib(bgp_rib)
        assert not radix.supports_batch()
        keys = np.array(random_keys(64, seed=3), dtype=np.uint64)
        out = radix.lookup_batch(keys)
        assert out.tolist() == [bgp_rib.lookup(int(k)) for k in keys]

    def test_verify_against_hook(self, bgp_rib):
        radix = RadixLookup.from_rib(bgp_rib)
        assert radix.verify_against(bgp_rib, random_keys(200, seed=4)) == []
