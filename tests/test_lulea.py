"""Tests for the Lulea compressed trie."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import boundary_keys, make_random_rib, random_keys

from repro.errors import StructuralLimitError
from repro.lookup.lulea import Lulea, _Level
from repro.mem.layout import AccessTrace
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib


def rib_of(*routes):
    rib = Rib()
    for text, hop in routes:
        rib.insert(Prefix.parse(text), hop)
    return rib


class TestLevelCompression:
    def test_constant_chunk_stores_one_item(self):
        level = _Level(256)
        level.append_chunk([7] * 256)
        assert len(level.items) == 1
        assert all(level.get(0, v) == 7 for v in (0, 100, 255))

    def test_runs_collapse(self):
        level = _Level(256)
        level.append_chunk([1] * 100 + [2] * 100 + [1] * 56)
        assert len(level.items) == 3
        assert level.get(0, 0) == 1
        assert level.get(0, 99) == 1
        assert level.get(0, 100) == 2
        assert level.get(0, 200) == 1

    def test_run_crossing_word_boundary(self):
        level = _Level(256)
        values = [5] * 60 + [9] * 70 + [5] * 126
        level.append_chunk(values)
        for v in (59, 60, 63, 64, 129, 130, 255):
            assert level.get(0, v) == values[v]

    def test_multiple_chunks_isolated(self):
        level = _Level(256)
        level.append_chunk([1] * 256)
        level.append_chunk([2] * 256)
        assert level.get(0, 50) == 1
        assert level.get(1, 50) == 2

    def test_worst_case_alternating(self):
        level = _Level(256)
        values = [i % 2 for i in range(256)]
        # Replace 0s (NO_ROUTE is a legal value) with distinct markers.
        values = [(i % 7) + 1 for i in range(256)]
        level.append_chunk(values)
        for v in range(256):
            assert level.get(0, v) == values[v]


class TestLulea:
    def test_simple_lookups(self):
        s = Lulea.from_rib(
            rib_of(("10.0.0.0/8", 1), ("10.1.2.0/24", 2), ("10.1.2.128/25", 3))
        )
        assert s.lookup(Prefix.parse("10.1.2.200/32").value) == 3
        assert s.lookup(Prefix.parse("10.1.2.4/32").value) == 2
        assert s.lookup(Prefix.parse("10.7.7.7/32").value) == 1
        assert s.lookup(Prefix.parse("11.0.0.0/32").value) == NO_ROUTE

    def test_rejects_ipv6(self):
        rib = Rib(width=128)
        rib.insert(Prefix.parse("2001:db8::/32"), 1)
        with pytest.raises(ValueError):
            Lulea.from_rib(rib)

    def test_nexthop_width_limit(self):
        with pytest.raises(StructuralLimitError):
            Lulea.from_rib(rib_of(("10.0.0.0/8", 40_000)))

    def test_against_rib(self, bgp_rib):
        s = Lulea.from_rib(bgp_rib)
        for key in boundary_keys(bgp_rib)[:4000] + random_keys(2500, seed=9):
            assert s.lookup(key) == bgp_rib.lookup(key)

    def test_traced_matches_plain(self, bgp_rib):
        s = Lulea.from_rib(bgp_rib)
        trace = AccessTrace()
        for key in random_keys(400, seed=10):
            trace.reset()
            assert s.lookup_traced(key, trace) == s.lookup(key)
            assert 1 <= len(trace.accesses) <= 3

    def test_compression_beats_expansion(self, bgp_rib):
        """Lulea's raison d'être: far smaller than the expanded arrays
        (2 bytes × 2^16 for level 1 alone)."""
        s = Lulea.from_rib(bgp_rib)
        assert s.memory_bytes() < 2 * (1 << 16)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_tables(self, seed):
        rib = make_random_rib(60, seed=seed, width=32, max_nexthop=12)
        s = Lulea.from_rib(rib)
        for key in boundary_keys(rib):
            assert s.lookup(key) == rib.lookup(key)
