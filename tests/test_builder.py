"""Unit tests for the Poptrie builder (expansion + serialization)."""

from repro.core import builder
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib


def rib_of(*routes, width=8):
    rib = Rib(width=width)
    for bits, hop in routes:
        rib.insert(Prefix.from_bits(bits, width), hop)
    return rib


class TestExpandChunk:
    def test_empty_tree_is_all_inherited(self):
        rib = Rib(width=8)
        slots = builder.expand_chunk(rib.root, 7, k=2)
        assert slots == [7, 7, 7, 7]

    def test_route_at_chunk_boundary_covers_all(self):
        rib = rib_of(("", 5))
        slots = builder.expand_chunk(rib.root, NO_ROUTE, k=2)
        assert slots == [5, 5, 5, 5]

    def test_one_bit_route_covers_half(self):
        rib = rib_of(("1", 3))
        slots = builder.expand_chunk(rib.root, 9, k=2)
        assert slots == [9, 9, 3, 3]

    def test_exact_length_route(self):
        rib = rib_of(("01", 4))
        slots = builder.expand_chunk(rib.root, NO_ROUTE, k=2)
        assert slots == [NO_ROUTE, 4, NO_ROUTE, NO_ROUTE]

    def test_deeper_route_creates_internal_slot(self):
        rib = rib_of(("011", 4))
        slots = builder.expand_chunk(rib.root, NO_ROUTE, k=2)
        assert isinstance(slots[1], tuple)  # slot 01 has a subtree
        node, inherited = slots[1]
        assert inherited == NO_ROUTE

    def test_internal_slot_inherits_path_route(self):
        rib = rib_of(("0", 8), ("011", 4))
        slots = builder.expand_chunk(rib.root, NO_ROUTE, k=2)
        node, inherited = slots[1]
        assert inherited == 8  # the /1 route covers the subtree

    def test_chunk_boundary_route_inherits_into_child(self):
        rib = rib_of(("01", 6), ("0111", 4))
        slots = builder.expand_chunk(rib.root, NO_ROUTE, k=2)
        node, inherited = slots[1]
        assert inherited == 6  # the route exactly at the boundary


class TestMakeShallow:
    def test_vector_bits(self):
        rib = rib_of(("011", 4), ("111", 5))
        slots = builder.expand_chunk(rib.root, NO_ROUTE, k=2)
        tmp = builder.make_shallow(slots, use_leafvec=True)
        assert tmp.vector == 0b1010  # slots 1 and 3 internal

    def test_leafvec_first_leaf_always_marked(self):
        slots = [7, 7, 7, 7]
        tmp = builder.make_shallow(slots, use_leafvec=True)
        assert tmp.leafvec == 0b0001
        assert tmp.leaves == [7]

    def test_leafvec_marks_value_changes(self):
        slots = [7, 7, 9, 9]
        tmp = builder.make_shallow(slots, use_leafvec=True)
        assert tmp.leafvec == 0b0101
        assert tmp.leaves == [7, 9]

    def test_leafvec_hole_punching_continues_run(self):
        """Section 3.3: a leaf slot shadowed by an internal node is
        irrelevant; an identical-value run continues across it."""
        slots = [7, ("fake-node", NO_ROUTE), 7, 7]
        tmp = builder.make_shallow(slots, use_leafvec=True)
        assert tmp.leafvec == 0b0001  # single run despite the hole
        assert tmp.leaves == [7]

    def test_leafvec_first_leaf_after_internal_slots(self):
        slots = [("n", 0), ("n", 0), 5, 5]
        tmp = builder.make_shallow(slots, use_leafvec=True)
        assert tmp.leafvec == 0b0100
        assert tmp.leaves == [5]

    def test_basic_mode_materialises_every_leaf(self):
        slots = [7, 7, 9, 9]
        tmp = builder.make_shallow(slots, use_leafvec=False)
        assert tmp.leaves == [7, 7, 9, 9]
        assert tmp.leafvec == 0

    def test_all_internal_has_no_leaves(self):
        slots = [("n", 0)] * 4
        tmp = builder.make_shallow(slots, use_leafvec=True)
        assert tmp.vector == 0b1111
        assert tmp.leaves == []


class TestExpandNode:
    def test_counts(self):
        rib = rib_of(("01", 1), ("0111", 2), ("10", 3))
        tmp = builder.expand_node(rib.root, NO_ROUTE, k=2, use_leafvec=True)
        inodes, leaves = tmp.count_nodes()
        assert inodes == 2  # root + the subtree under slot 01
        assert leaves >= 3

    def test_shallow_signature_changes_with_structure(self):
        rib1 = rib_of(("01", 1))
        rib2 = rib_of(("011", 1))
        t1 = builder.expand_node(rib1.root, NO_ROUTE, 2, True)
        t2 = builder.expand_node(rib2.root, NO_ROUTE, 2, True)
        assert t1.shallow_signature() != t2.shallow_signature()


class _ArrayTarget:
    """Minimal serialization target standing in for a Poptrie."""

    def __init__(self):
        self.nodes = {}
        self.leaves = {}
        self._next_node = 0
        self._next_leaf = 0

    def alloc_nodes(self, count):
        base = self._next_node
        self._next_node += count
        return base

    def alloc_leaves(self, count):
        base = self._next_leaf
        self._next_leaf += count
        return base

    def write_node(self, index, vector, leafvec, base0, base1):
        self.nodes[index] = (vector, leafvec, base0, base1)

    def write_leaf(self, index, value):
        self.leaves[index] = value


class TestSerializer:
    def test_children_are_contiguous(self):
        rib = rib_of(("000001", 1), ("010001", 2), ("100001", 3), ("110001", 4))
        tmp = builder.expand_node(rib.root, NO_ROUTE, k=2, use_leafvec=True)
        target = _ArrayTarget()
        root = builder.Serializer(target).serialize(tmp)
        vector, _, _, base1 = target.nodes[root]
        count = bin(vector).count("1")
        assert count == 4
        for i in range(count):
            assert base1 + i in target.nodes

    def test_leaves_are_contiguous_and_written(self):
        rib = rib_of(("00", 1), ("01", 2))
        tmp = builder.expand_node(rib.root, NO_ROUTE, k=2, use_leafvec=True)
        target = _ArrayTarget()
        root = builder.Serializer(target).serialize(tmp)
        _, leafvec, base0, _ = target.nodes[root]
        count = bin(leafvec).count("1")
        values = [target.leaves[base0 + i] for i in range(count)]
        assert values[0] == 1 and 2 in values

    def test_written_counters(self):
        rib = rib_of(("0101", 1),)
        tmp = builder.expand_node(rib.root, NO_ROUTE, k=2, use_leafvec=True)
        target = _ArrayTarget()
        serializer = builder.Serializer(target)
        serializer.serialize(tmp)
        inodes, leaves = tmp.count_nodes()
        assert serializer.nodes_written == inodes
        assert serializer.leaves_written == leaves
