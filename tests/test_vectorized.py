"""Tests for the numpy batch-lookup engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import make_random_rib, random_keys

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.core.vectorized import low_bits_mask, popcount64, poptrie_lookup_batch
from repro.net.prefix import Prefix
from repro.net.rib import Rib


class TestPopcount64:
    def test_zeros(self):
        assert popcount64(np.zeros(4, dtype=np.uint64)).tolist() == [0, 0, 0, 0]

    def test_all_ones(self):
        full = np.full(3, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        assert popcount64(full).tolist() == [64, 64, 64]

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=32))
    def test_matches_bit_count(self, values):
        array = np.array(values, dtype=np.uint64)
        expected = [v.bit_count() for v in values]
        assert popcount64(array).tolist() == expected


class TestLowBitsMask:
    def test_v_zero(self):
        assert low_bits_mask(np.array([0], dtype=np.uint64))[0] == 1

    def test_v_63_no_overflow(self):
        mask = low_bits_mask(np.array([63], dtype=np.uint64))[0]
        assert int(mask) == (1 << 64) - 1

    @given(st.integers(min_value=0, max_value=63))
    def test_matches_scalar_formula(self, v):
        mask = int(low_bits_mask(np.array([v], dtype=np.uint64))[0])
        assert mask == (2 << v) - 1


class TestBatchLookup:
    @pytest.mark.parametrize(
        "config",
        [
            PoptrieConfig(s=0),
            PoptrieConfig(s=16),
            PoptrieConfig(s=18),
            PoptrieConfig(s=16, use_leafvec=False),
            PoptrieConfig(k=4, s=10),
            PoptrieConfig(s=16, leaf_bits=32),
        ],
    )
    def test_matches_scalar(self, bgp_rib, config):
        trie = Poptrie.from_rib(bgp_rib, config)
        keys = np.array(random_keys(20_000, seed=11), dtype=np.uint64)
        batch = poptrie_lookup_batch(trie, keys)
        for i in range(0, len(keys), 97):
            assert batch[i] == trie.lookup(int(keys[i]))

    def test_empty_batch(self, bgp_rib):
        trie = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
        assert len(poptrie_lookup_batch(trie, np.array([], dtype=np.uint64))) == 0

    def test_all_direct_leaves(self):
        rib = Rib()
        rib.insert(Prefix.parse("0.0.0.0/0"), 3)
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        keys = np.array(random_keys(100, seed=1), dtype=np.uint64)
        assert (poptrie_lookup_batch(trie, keys) == 3).all()

    def test_chunk_value_63_lane(self):
        # Exercise v == 63 (the (2 << v) - 1 overflow corner) via a route
        # whose chunk bits are all ones at the first level below s.
        rib = Rib()
        rib.insert(Prefix.parse("255.255.0.0/16", ), 1)
        rib.insert(Prefix.parse("255.255.252.0/22"), 2)
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        keys = np.array(
            [Prefix.parse("255.255.255.255/32").value,
             Prefix.parse("255.255.252.1/32").value],
            dtype=np.uint64,
        )
        out = poptrie_lookup_batch(trie, keys)
        assert out.tolist() == [2, 2]

    def test_rejects_ipv6(self):
        rib = Rib(width=128)
        rib.insert(Prefix.parse("2001:db8::/32"), 1)
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        with pytest.raises(ValueError):
            poptrie_lookup_batch(trie, np.array([1], dtype=np.uint64))

    def test_method_on_structure(self, bgp_rib):
        trie = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
        keys = np.array(random_keys(256, seed=4), dtype=np.uint64)
        assert (trie.lookup_batch(keys) == poptrie_lookup_batch(trie, keys)).all()

    def test_structure_reports_batch_support(self, bgp_rib):
        trie = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
        assert trie.supports_batch()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_batch_equals_scalar(seed):
    rib = make_random_rib(60, seed=seed, width=32, max_nexthop=30)
    trie = Poptrie.from_rib(rib, PoptrieConfig(s=12))
    keys = np.array(random_keys(512, seed=seed + 1), dtype=np.uint64)
    batch = poptrie_lookup_batch(trie, keys)
    scalar = [trie.lookup(int(k)) for k in keys]
    assert batch.tolist() == scalar


class TestBatchLookupV6:
    def _table(self):
        from repro.data.synth import generate_table_v6

        rib, _ = generate_table_v6(600, 13, seed=4)
        return rib

    @pytest.mark.parametrize("s", [0, 16, 18])
    def test_matches_scalar(self, s):
        from repro.core.vectorized import poptrie_lookup_batch_v6
        from repro.data.traffic import random_addresses_v6

        rib = self._table()
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=s))
        keys = random_addresses_v6(2000, seed=9)
        # Mix in covered addresses so deep paths are exercised.
        keys += [p.value for p, _ in list(rib.routes())[:300]]
        got = poptrie_lookup_batch_v6(trie, keys)
        for key, value in zip(keys, got):
            assert value == trie.lookup(key)

    def test_method_dispatches_v6(self):
        rib = self._table()
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        keys = [p.value for p, _ in list(rib.routes())[:64]]
        assert (trie.lookup_batch(keys) == [trie.lookup(k) for k in keys]).all()

    def test_rejects_ipv4_trie(self, bgp_rib):
        from repro.core.vectorized import poptrie_lookup_batch_v6

        trie = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
        with pytest.raises(ValueError):
            poptrie_lookup_batch_v6(trie, [1])

    def test_empty_batch(self):
        from repro.core.vectorized import poptrie_lookup_batch_v6

        rib = self._table()
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        assert len(poptrie_lookup_batch_v6(trie, [])) == 0

    def test_split_v6(self):
        from repro.core.vectorized import split_v6

        hi, lo = split_v6([(0xABCD << 64) | 0x1234])
        assert hi[0] == 0xABCD and lo[0] == 0x1234
