"""Unit tests for the radix-tree RIB."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import make_random_rib, naive_lpm, random_keys

from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib


def addr(text: str) -> int:
    return Prefix.parse(text + "/32").value


class TestInsertLookup:
    def test_empty_lookup_misses(self):
        assert Rib().lookup(addr("10.0.0.1")) == NO_ROUTE

    def test_single_route(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert rib.lookup(addr("10.255.255.255")) == 1
        assert rib.lookup(addr("11.0.0.0")) == NO_ROUTE

    def test_longest_match_wins(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        rib.insert(Prefix.parse("10.1.0.0/16"), 2)
        assert rib.lookup(addr("10.1.2.3")) == 2
        assert rib.lookup(addr("10.2.2.3")) == 1

    def test_default_route(self):
        rib = Rib()
        rib.insert(Prefix.parse("0.0.0.0/0"), 9)
        assert rib.lookup(addr("203.0.113.1")) == 9

    def test_host_route(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.1/32"), 4)
        assert rib.lookup(addr("10.0.0.1")) == 4
        assert rib.lookup(addr("10.0.0.2")) == NO_ROUTE

    def test_insert_replaces_and_returns_previous(self):
        rib = Rib()
        p = Prefix.parse("10.0.0.0/8")
        assert rib.insert(p, 1) == NO_ROUTE
        assert rib.insert(p, 2) == 1
        assert len(rib) == 1
        assert rib.lookup(addr("10.0.0.1")) == 2

    def test_insert_rejects_sentinel(self):
        with pytest.raises(ValueError):
            Rib().insert(Prefix.parse("10.0.0.0/8"), NO_ROUTE)

    def test_insert_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            Rib(width=32).insert(Prefix.parse("2001:db8::/32"), 1)


class TestDelete:
    def test_delete_restores_shorter_match(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        rib.insert(Prefix.parse("10.1.0.0/16"), 2)
        rib.delete(Prefix.parse("10.1.0.0/16"))
        assert rib.lookup(addr("10.1.2.3")) == 1

    def test_delete_returns_previous(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 7)
        assert rib.delete(Prefix.parse("10.0.0.0/8")) == 7

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            Rib().delete(Prefix.parse("10.0.0.0/8"))

    def test_delete_interior_keeps_descendants(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        rib.insert(Prefix.parse("10.1.0.0/16"), 2)
        rib.delete(Prefix.parse("10.0.0.0/8"))
        assert rib.lookup(addr("10.1.2.3")) == 2
        assert rib.lookup(addr("10.2.0.0")) == NO_ROUTE

    def test_delete_prunes_nodes(self):
        rib = Rib()
        baseline = rib.node_count
        rib.insert(Prefix.parse("10.1.2.3/32"), 1)
        rib.delete(Prefix.parse("10.1.2.3/32"))
        assert rib.node_count == baseline

    def test_route_count_tracks(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        rib.insert(Prefix.parse("10.1.0.0/16"), 2)
        rib.delete(Prefix.parse("10.0.0.0/8"))
        assert len(rib) == 1


class TestExactGet:
    def test_get_hits_exact_only(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert rib.get(Prefix.parse("10.0.0.0/8")) == 1
        assert rib.get(Prefix.parse("10.0.0.0/9")) == NO_ROUTE
        assert rib.get(Prefix.parse("0.0.0.0/0")) == NO_ROUTE


class TestDepth:
    def test_depth_equals_length_without_holes(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        fib, matched, depth = rib.lookup_with_depth(addr("10.9.9.9"))
        assert (fib, matched, depth) == (1, 8, 8)

    def test_hole_punching_deepens_search(self):
        # Figure 7's phenomenon: deciding that only the /8 matches requires
        # walking to where the /24 hole diverges.
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        rib.insert(Prefix.parse("10.0.0.0/24"), 2)
        fib, matched, depth = rib.lookup_with_depth(addr("10.0.1.1"))
        assert fib == 1 and matched == 8
        assert depth > 8  # had to look past /8 to rule the /24 out

    def test_depth_zero_on_miss_at_root(self):
        fib, matched, depth = Rib().lookup_with_depth(addr("10.0.0.1"))
        assert (fib, matched, depth) == (NO_ROUTE, 0, 0)


class TestWalking:
    def test_routes_yields_lexicographic(self, small_rib):
        routes = [p.text for p, _ in small_rib.routes()]
        assert routes == sorted(
            routes, key=lambda t: Prefix.parse(t).sort_key()
        )

    def test_routes_roundtrip(self, small_rib):
        rebuilt = Rib()
        for prefix, hop in small_rib.routes():
            rebuilt.insert(prefix, hop)
        for key in random_keys(2000, seed=3):
            assert rebuilt.lookup(key) == small_rib.lookup(key)

    def test_node_at(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert rib.node_at(Prefix.parse("10.0.0.0/8")) is not None
        assert rib.node_at(Prefix.parse("11.0.0.0/8")) is None

    def test_best_route_on_path(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        rib.insert(Prefix.parse("10.0.0.0/16"), 2)
        assert rib.best_route_on_path(Prefix.parse("10.0.0.0/24")) == 2
        assert rib.best_route_on_path(Prefix.parse("10.1.0.0/16")) == 1


class TestMarking:
    def test_mark_and_clear(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        rib.insert(Prefix.parse("10.1.0.0/16"), 2)
        count = rib.mark_subtree(Prefix.parse("10.0.0.0/8"))
        assert count > 0
        node = rib.node_at(Prefix.parse("10.0.0.0/8"))
        assert node is not None and node.marked
        rib.clear_marks()
        assert not node.marked

    def test_mark_missing_subtree(self):
        assert Rib().mark_subtree(Prefix.parse("10.0.0.0/8")) == 0


class TestMemory:
    def test_memory_grows_with_routes(self):
        rib = Rib()
        before = rib.memory_bytes()
        rib.insert(Prefix.parse("10.1.2.3/32"), 1)
        assert rib.memory_bytes() > before


class TestAgainstNaive:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_tables_match_linear_scan(self, seed):
        rib = make_random_rib(60, seed=seed, width=16)
        routes = list(rib.routes())
        for address in range(0, 1 << 16, 257):
            assert rib.lookup(address) == naive_lpm(routes, address)

    def test_exhaustive_small_width(self):
        rib = make_random_rib(40, seed=9, width=8)
        routes = list(rib.routes())
        for address in range(256):
            assert rib.lookup(address) == naive_lpm(routes, address)
