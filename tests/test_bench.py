"""Tests for the benchmark harness (measurement + roster + reporting)."""

import numpy as np
import pytest

from repro.bench.harness import (
    RateResult,
    measure_compile_time,
    measure_rate_batch,
    measure_rate_scalar,
    measure_rate_scalar_keys,
)
from repro.bench.report import Table
from repro.data.synth import generate_table
from repro.lookup.radix import RadixLookup
from repro.lookup.registry import (
    STANDARD_ALGORITHMS,
    build_structures,
    standard_roster,
)


@pytest.fixture(scope="module")
def rib():
    table, _ = generate_table(800, 16, seed=55)
    return table


class TestRateResult:
    def test_mlps(self):
        result = RateResult("x", lookups=2_000_000, seconds=1.0)
        assert result.mlps == 2.0

    def test_zero_time_guard(self):
        assert RateResult("x", 10, 0.0).mlps == 0.0

    def test_memory_mib(self):
        assert RateResult("x", 1, 1.0, memory_bytes=1 << 20).memory_mib == 1.0


class TestMeasurement:
    def test_scalar_rate(self, rib):
        structure = RadixLookup.from_rib(rib)
        result = measure_rate_scalar(structure, count=2000)
        assert result.lookups == 2000 and result.seconds > 0

    def test_scalar_keys_rate(self, rib):
        structure = RadixLookup.from_rib(rib)
        result = measure_rate_scalar_keys(structure, list(range(1000)))
        assert result.lookups == 1000

    def test_batch_rate(self, rib):
        structure = RadixLookup.from_rib(rib)
        keys = np.arange(4000, dtype=np.uint64)
        result = measure_rate_batch(structure, keys, repeats=1)
        assert result.lookups == 4000

    def test_compile_time(self, rib):
        structure, seconds = measure_compile_time(
            lambda: RadixLookup.from_rib(rib), repeats=2
        )
        assert isinstance(structure, RadixLookup) and seconds > 0


class TestRoster:
    def test_builds_standard_set(self, rib):
        roster = standard_roster(rib)
        assert set(roster) == set(STANDARD_ALGORITHMS)
        assert all(s is not None for s in roster.values())

    def test_roster_structures_agree(self, rib):
        import random

        roster = standard_roster(rib)
        rng = random.Random(1)
        keys = [rng.getrandbits(32) for _ in range(1500)]
        reference = roster["Radix"]
        for name, structure in roster.items():
            for key in keys:
                assert structure.lookup(key) == reference.lookup(key), name

    def test_structural_limit_maps_to_none(self, rib, monkeypatch):
        import repro.lookup.sail as sail_module

        monkeypatch.setattr(sail_module, "MAX_CHUNKS", 1)
        roster = standard_roster(rib, names=("SAIL", "Radix"))
        assert roster["SAIL"] is None
        assert roster["Radix"] is not None

    def test_build_structures_drops_na(self, rib, monkeypatch):
        import repro.lookup.sail as sail_module

        monkeypatch.setattr(sail_module, "MAX_CHUNKS", 1)
        structures = build_structures(rib, names=("SAIL", "Radix"))
        assert [s.name for s in structures] == ["Radix"]

    def test_poptrie_compiles_from_aggregated_table(self, rib):
        roster = standard_roster(rib, names=("Poptrie18",))
        raw = standard_roster(
            rib, names=("Poptrie18",), aggregate_for_poptrie=False
        )
        assert (
            roster["Poptrie18"].memory_bytes()
            <= raw["Poptrie18"].memory_bytes()
        )


class TestDeprecationShims:
    def test_harness_still_exports_roster_with_warning(self):
        import repro.bench.harness as harness
        import repro.lookup as lookup
        from repro.lookup import registry

        for module in (harness, lookup):
            with pytest.warns(DeprecationWarning):
                assert module.standard_roster is registry.standard_roster
            with pytest.warns(DeprecationWarning):
                assert module.STANDARD_ALGORITHMS is registry.STANDARD_ALGORITHMS

    def test_unknown_attribute_still_raises(self):
        import repro.bench.harness as harness

        with pytest.raises(AttributeError):
            harness.does_not_exist


class TestReportTable:
    def test_renders_aligned(self):
        table = Table(["algo", "Mlps"], title="demo")
        table.add_row(["Poptrie18", 240.52])
        table.add_row(["SAIL", None])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "Poptrie18" in text and "240.52" in text
        assert "N/A" in text

    def test_formats_ints_and_floats(self):
        table = Table(["a"])
        table.add_row([3])
        table.add_row([3.14159])
        assert "3" in table.render() and "3.14" in table.render()
