"""Tests for BGP update-stream synthesis and replay (Section 4.9)."""

import pytest

from repro.core.poptrie import PoptrieConfig
from repro.core.update import UpdatablePoptrie
from repro.data.synth import generate_table
from repro.data.updates import (
    PAPER_ANNOUNCE_FRACTION,
    PAPER_UPDATE_COUNT,
    Update,
    replay_updates,
    generate_update_stream,
)
from repro.net.rib import Rib


@pytest.fixture(scope="module")
def table():
    rib, _ = generate_table(1500, 30, seed=11)
    return rib


class TestGeneration:
    def test_count(self, table):
        stream = generate_update_stream(table, 500, seed=1)
        assert len(stream) == 500

    def test_paper_constants(self):
        assert PAPER_UPDATE_COUNT == 23446
        assert PAPER_ANNOUNCE_FRACTION == pytest.approx(18141 / 23446)

    def test_announce_fraction(self, table):
        stream = generate_update_stream(table, 4000, seed=2)
        announces = sum(1 for update in stream if update.kind == "A")
        assert abs(announces / len(stream) - PAPER_ANNOUNCE_FRACTION) < 0.05

    def test_withdrawals_target_live_prefixes(self, table):
        """Replaying the stream against the table must never fail — every
        withdrawal targets a prefix that is live at that point."""
        stream = generate_update_stream(table, 2000, seed=3)
        shadow = Rib()
        for prefix, hop in table.routes():
            shadow.insert(prefix, hop)
        for update in stream:
            if update.kind == "A":
                shadow.insert(update.prefix, update.nexthop)
            else:
                shadow.delete(update.prefix)  # raises KeyError if not live

    def test_deterministic(self, table):
        a = generate_update_stream(table, 300, seed=4)
        b = generate_update_stream(table, 300, seed=4)
        assert a == b

    def test_announce_hops_in_range(self, table):
        stream = generate_update_stream(table, 1000, seed=5, max_nexthop=30)
        assert all(
            1 <= update.nexthop <= 30
            for update in stream
            if update.kind == "A"
        )

    def test_works_on_empty_table(self):
        stream = generate_update_stream(Rib(), 100, seed=6)
        assert len(stream) == 100
        assert stream[0].kind == "A"


class TestReplay:
    def test_apply_updates_keeps_fib_consistent(self, table):
        up = UpdatablePoptrie(PoptrieConfig(s=16), rib=_copy(table))
        stream = generate_update_stream(table, 400, seed=7)
        count = replay_updates(up, stream)
        assert count == 400
        import random

        rng = random.Random(8)
        for _ in range(2000):
            key = rng.getrandbits(32)
            assert up.lookup(key) == up.rib.lookup(key)

    def test_stats_accumulate(self, table):
        up = UpdatablePoptrie(PoptrieConfig(s=16), rib=_copy(table))
        replay_updates(up, generate_update_stream(table, 200, seed=9))
        assert up.stats.updates >= 190  # same-hop re-announces are no-ops


def _copy(rib: Rib) -> Rib:
    out = Rib(width=rib.width)
    for prefix, hop in rib.routes():
        out.insert(prefix, hop)
    return out
